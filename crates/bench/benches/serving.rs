//! Serving-throughput benchmark, three layers:
//!
//! * **oracle** — raw sequential queries/second through
//!   `SharedOracle::distance_with` with one caller-held context: the query
//!   fast path alone (label merge + bounded search on the precomputed
//!   sparsified CSR), no executor, cache, or transport.
//! * **executor** — batched queries/second through the `hcl-server`
//!   [`BatchExecutor`] at 1/2/4/8 worker threads, with a cold cache
//!   (cleared before every pass), a warm cache (pre-warmed, all hits),
//!   and no cache at all. Queries share nothing but the read-only index,
//!   so the no-cache configuration should scale near-linearly with
//!   threads; the warm configuration measures pure cache + fan-out
//!   overhead.
//! * **wire** — end-to-end round trips through the epoll reactor over a
//!   real loopback TCP connection: one `BATCH` per pass versus the same
//!   pairs as pipelined single `QUERY`s. The gap between the two is the
//!   per-request framing + completion-queue overhead; the gap between
//!   wire and executor is the whole transport.
//! * **router** — the same wire workload through a 2-shard `hcl-router`
//!   deployment (range partition, shard servers + router all on
//!   loopback) next to a direct single-server baseline on the same
//!   pairs. The gap is the router overhead: one extra hop, batch
//!   splitting, and cross-shard scatter-gather.
//!
//! Note: on a single-core host every thread count reports the same rate —
//! compare thread counts only where `nproc` exceeds the largest count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hcl_core::HighwayCoverLabelling;
use hcl_graph::generate;
use hcl_server::{BatchExecutor, Client, QueryService, Server, ServerConfig};
use hcl_workloads::queries::sample_pairs;
use std::hint::black_box;
use std::sync::Arc;

const QUERIES: usize = 4_096;
/// Round trips per wire-level pass (smaller: each pass is full TCP I/O).
const WIRE_QUERIES: usize = 1_024;

fn bench_oracle(c: &mut Criterion) {
    let g = Arc::new(generate::barabasi_albert(20_000, 8, 42));
    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let oracle = hcl_core::SharedOracle::new(Arc::clone(&g), Arc::new(labelling));
    let pairs = sample_pairs(g.num_vertices(), QUERIES, 7);

    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));
    group.bench_function("sequential", |b| {
        let mut ctx = oracle.context_pool().checkout();
        b.iter(|| {
            for &(s, t) in &pairs {
                black_box(oracle.distance_with(&mut ctx, s, t));
            }
        })
    });
    group.finish();
}

fn bench_serving(c: &mut Criterion) {
    let g = Arc::new(generate::barabasi_albert(20_000, 8, 42));
    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let labelling = Arc::new(labelling);
    let pairs = sample_pairs(g.num_vertices(), QUERIES, 7);

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    group.throughput(Throughput::Elements(QUERIES as u64));

    for threads in [1usize, 2, 4, 8] {
        let no_cache = BatchExecutor::new(
            Arc::new(QueryService::from_parts(Arc::clone(&g), Arc::clone(&labelling), 0)),
            threads,
        );
        group.bench_with_input(BenchmarkId::new("no-cache", threads), &threads, |b, _| {
            b.iter(|| black_box(no_cache.execute(&pairs).unwrap()))
        });

        let cached_service =
            Arc::new(QueryService::from_parts(Arc::clone(&g), Arc::clone(&labelling), 1 << 16));
        let cached = BatchExecutor::new(Arc::clone(&cached_service), threads);

        group.bench_with_input(BenchmarkId::new("cold-cache", threads), &threads, |b, _| {
            b.iter(|| {
                cached_service.cache().unwrap().clear();
                black_box(cached.execute(&pairs).unwrap())
            })
        });

        cached.execute(&pairs).unwrap(); // pre-warm: every pair resident
        group.bench_with_input(BenchmarkId::new("warm-cache", threads), &threads, |b, _| {
            b.iter(|| black_box(cached.execute(&pairs).unwrap()))
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let g = Arc::new(generate::barabasi_albert(20_000, 8, 42));
    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let pairs = sample_pairs(g.num_vertices(), WIRE_QUERIES, 11);

    let service = Arc::new(QueryService::from_parts(Arc::clone(&g), Arc::new(labelling), 1 << 16));
    let handle = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let mut group = c.benchmark_group("wire");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WIRE_QUERIES as u64));
    group.bench_function("batch", |b| b.iter(|| black_box(client.batch(&pairs).unwrap())));
    group.bench_function("pipelined-query", |b| {
        b.iter(|| black_box(client.pipelined_queries(&pairs).unwrap()))
    });
    group.finish();
    handle.shutdown();
}

fn bench_router(c: &mut Criterion) {
    let g = Arc::new(generate::barabasi_albert(20_000, 8, 42));
    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let labelling = Arc::new(labelling);
    let pairs = sample_pairs(g.num_vertices(), WIRE_QUERIES, 11);

    // Direct baseline: one server over the whole graph.
    let direct = Server::bind(
        Arc::new(QueryService::from_parts(Arc::clone(&g), Arc::clone(&labelling), 0)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .unwrap();
    let mut direct_client = Client::connect(direct.local_addr()).unwrap();

    // 2-shard deployment behind a router, same index replicated.
    let map = hcl_core::PartitionMap::range(g.num_vertices(), 2, &landmarks);
    let shards: Vec<_> = (0..2)
        .map(|shard| {
            let shard_graph = Arc::new(map.shard_graph(&g, shard));
            let service =
                Arc::new(QueryService::from_parts(shard_graph, Arc::clone(&labelling), 0));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
    let router =
        hcl_router::Router::bind(map, &addrs, "127.0.0.1:0", hcl_router::RouterConfig::default())
            .unwrap();
    let mut routed_client = Client::connect(router.local_addr()).unwrap();

    let mut group = c.benchmark_group("router");
    group.sample_size(10);
    group.throughput(Throughput::Elements(WIRE_QUERIES as u64));
    group.bench_function("direct-batch", |b| {
        b.iter(|| black_box(direct_client.batch(&pairs).unwrap()))
    });
    group.bench_function("routed-batch", |b| {
        b.iter(|| black_box(routed_client.batch(&pairs).unwrap()))
    });
    group.bench_function("routed-pipelined-query", |b| {
        b.iter(|| black_box(routed_client.pipelined_queries(&pairs).unwrap()))
    });
    group.finish();
    router.shutdown();
    for shard in &shards {
        shard.shutdown();
    }
    direct.shutdown();
}

criterion_group!(benches, bench_oracle, bench_serving, bench_wire, bench_router);
criterion_main!(benches);
