//! Criterion micro-benchmarks: graph substrate operations underpinning
//! every method (CSR construction, full BFS, neighbour scans).

use criterion::{criterion_group, criterion_main, Criterion};
use hcl_graph::{generate, traversal, CsrGraph};
use std::hint::black_box;

fn bench_graph_ops(c: &mut Criterion) {
    let g = generate::barabasi_albert(20_000, 8, 42);
    let edges: Vec<(u32, u32)> = g.edges().collect();
    let mut group = c.benchmark_group("graph");
    group.sample_size(20);

    group.bench_function("csr-build-160k-edges", |b| {
        b.iter(|| black_box(CsrGraph::from_edges(g.num_vertices(), &edges)))
    });

    let mut dist = Vec::new();
    group.bench_function("full-bfs", |b| {
        b.iter(|| {
            traversal::bfs_distances_into(&g, 0, &mut dist);
            black_box(dist[19_999])
        })
    });

    group.bench_function("neighbor-scan", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in g.vertices() {
                for &u in g.neighbors(v) {
                    acc = acc.wrapping_add(u as u64);
                }
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_graph_ops);
criterion_main!(benches);
