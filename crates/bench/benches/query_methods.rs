//! Criterion micro-benchmarks: per-method query latency (the Table 2 "QT"
//! columns as statistically robust measurements on one mid-size stand-in).

use criterion::{criterion_group, criterion_main, Criterion};
use hcl_baselines::pll::PllOracle;
use hcl_baselines::{BiBfsOracle, FdConfig, FdIndex, FdOracle, PllConfig, PllIndex};
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::{generate, DistanceOracle};
use hcl_workloads::queries::sample_pairs;
use std::hint::black_box;

fn bench_queries(c: &mut Criterion) {
    let g = generate::barabasi_albert(20_000, 8, 42);
    let pairs = sample_pairs(g.num_vertices(), 4_096, 7);
    let mut group = c.benchmark_group("query");

    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let mut hl = HlOracle::new(&g, labelling);
    let mut i = 0usize;
    group.bench_function("HL", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(hl.distance(s, t))
        })
    });

    let (fd_index, _) = FdIndex::build(&g, FdConfig::default()).unwrap();
    let mut fd = FdOracle::new(&g, fd_index);
    let mut i = 0usize;
    group.bench_function("FD", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(fd.distance(s, t))
        })
    });

    let (pll_index, _) =
        PllIndex::build(&g, PllConfig { num_bp_roots: 16, bp_neighbors: 64 }).unwrap();
    let mut pll = PllOracle::new(pll_index);
    let mut i = 0usize;
    group.bench_function("PLL", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(pll.distance(s, t))
        })
    });

    let mut bibfs = BiBfsOracle::new(&g);
    let mut i = 0usize;
    group.bench_function("Bi-BFS", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(bibfs.distance(s, t))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
