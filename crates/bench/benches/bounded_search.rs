//! Criterion micro-benchmarks: the distance-bounded bidirectional BFS
//! (Algorithm 2) against the unbounded search it replaces — the paper's
//! core query-time argument in miniature.

use criterion::{criterion_group, criterion_main, Criterion};
use hcl_core::HighwayCoverLabelling;
use hcl_graph::{generate, SearchSpace};
use hcl_workloads::queries::sample_pairs;
use std::hint::black_box;

fn bench_bounded_search(c: &mut Criterion) {
    let g = generate::barabasi_albert(20_000, 8, 42);
    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    // Algorithm 2 runs on the sparsified graph, so endpoints are never
    // landmarks; filter the workload accordingly.
    let pairs: Vec<(u32, u32)> = sample_pairs(g.num_vertices(), 2_048, 3)
        .into_iter()
        .filter(|&(s, t)| {
            !labelling.highway().is_landmark(s) && !labelling.highway().is_landmark(t)
        })
        .take(1_024)
        .collect();
    // Pre-compute upper bounds so only the searches are measured.
    let bounds: Vec<u32> = pairs.iter().map(|&(s, t)| labelling.upper_bound(s, t)).collect();
    let highway = labelling.highway();

    let mut group = c.benchmark_group("bounded_search");
    let mut space = SearchSpace::new(g.num_vertices());

    let mut i = 0usize;
    group.bench_function("unbounded-bibfs", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(space.bibfs_distance(&g, s, t))
        })
    });

    let mut i = 0usize;
    group.bench_function("bounded-on-sparsified", |b| {
        b.iter(|| {
            let idx = i % pairs.len();
            let (s, t) = pairs[idx];
            i += 1;
            black_box(space.bounded_bibfs(&g, s, t, bounds[idx], |v| highway.is_landmark(v)))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_bounded_search);
criterion_main!(benches);
