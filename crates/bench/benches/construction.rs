//! Criterion micro-benchmarks: index construction (Table 2 "CT" columns),
//! including HL vs HL-P parallel speed-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hcl_baselines::{FdConfig, FdIndex};
use hcl_core::HighwayCoverLabelling;
use hcl_graph::generate;
use std::hint::black_box;

fn bench_construction(c: &mut Criterion) {
    let g = generate::barabasi_albert(20_000, 8, 42);
    let landmarks = hcl_graph::order::top_degree(&g, 20);
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);

    group.bench_function("HL-sequential", |b| {
        b.iter(|| black_box(HighwayCoverLabelling::build(&g, &landmarks).unwrap()))
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("HL-parallel", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    black_box(
                        HighwayCoverLabelling::build_parallel(&g, &landmarks, threads).unwrap(),
                    )
                })
            },
        );
    }
    group.bench_function("FD", |b| {
        b.iter(|| black_box(FdIndex::build(&g, FdConfig::default()).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_construction);
criterion_main!(benches);
