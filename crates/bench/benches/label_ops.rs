//! Criterion micro-benchmarks: label-level operations — the Equation 4
//! upper bound with and without the Lemma 5.1 merge (§5.3).

use criterion::{criterion_group, criterion_main, Criterion};
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::generate;
use hcl_workloads::queries::sample_pairs;
use std::hint::black_box;

fn bench_label_ops(c: &mut Criterion) {
    let g = generate::barabasi_albert(20_000, 8, 42);
    let landmarks = hcl_graph::order::top_degree(&g, 50);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let pairs = sample_pairs(g.num_vertices(), 4_096, 11);
    let reference = labelling.clone();
    let mut oracle = HlOracle::new(&g, labelling);

    let mut group = c.benchmark_group("upper_bound");
    let mut i = 0usize;
    group.bench_function("eq4-cross-product", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(reference.upper_bound(s, t))
        })
    });
    let mut i = 0usize;
    group.bench_function("lemma-5.1-merge", |b| {
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(oracle.upper_bound(s, t))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_label_ops);
criterion_main!(benches);
