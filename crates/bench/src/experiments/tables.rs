//! Tables 1–3 of the paper (§6.1, §6.3).

use crate::harness::*;
use hcl_baselines::pll::PllOracle;
use hcl_baselines::{
    BiBfsOracle, FdConfig, FdIndex, FdOracle, IslConfig, IslIndex, IslOracle, PllConfig, PllIndex,
};
use hcl_core::labels::LabelEncoding;
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::stats::{format_bytes, format_count, GraphStats};
use hcl_graph::DistanceOracle;
use hcl_workloads::queries::sample_pairs;
use std::time::Duration;

/// Table 1: dataset statistics. Paper columns plus the stand-in's actual
/// numbers, so the scaling substitution is visible.
pub fn run_table1() {
    println!("== Table 1: datasets (synthetic stand-ins; paper sizes for reference) ==\n");
    let mut rows = Vec::new();
    for prepared in prepare_datasets() {
        let s = GraphStats::compute(&prepared.graph);
        let d = &prepared.spec;
        rows.push(vec![
            d.name.to_string(),
            d.network_type.as_str().to_string(),
            format_count(d.paper_n as usize),
            format_count(d.paper_m as usize),
            s.n.to_string(),
            s.m.to_string(),
            format!("{:.1}", s.m_over_n),
            format!("{:.3}", s.avg_degree),
            s.max_degree.to_string(),
            format_bytes(s.memory_bytes),
        ]);
    }
    print_table(
        &["Dataset", "Type", "paper n", "paper m", "n", "m", "m/n", "avg.deg", "max.deg", "|G|"],
        &rows,
    );
}

/// Everything Table 2 measures for one dataset.
pub struct Table2Row {
    pub name: String,
    pub ct_hlp: Option<Duration>,
    pub ct_hl: Option<Duration>,
    pub ct_fd: Option<Duration>,
    pub ct_pll: Option<Duration>,
    pub ct_isl: Option<Duration>,
    pub qt_hl: Option<f64>,
    pub qt_fd: Option<f64>,
    pub qt_pll: Option<f64>,
    pub qt_isl: Option<f64>,
    pub qt_bibfs: Option<f64>,
    pub als_hl: Option<f64>,
    pub als_fd: Option<String>,
    pub als_pll: Option<String>,
    pub als_isl: Option<f64>,
    /// Methods that disagreed with HL on the verification sample.
    pub mismatches: Vec<&'static str>,
}

/// Measures one dataset for Table 2 (and reusably for Figure 1(a)).
pub fn measure_table2(prepared: &PreparedDataset, queries: usize) -> Table2Row {
    let g = &prepared.graph;
    let n = g.num_vertices();
    let pairs = sample_pairs(n, queries, 0xE0 + g.num_edges() as u64);
    let bibfs_pairs = &pairs[..pairs.len().min(1_000)];
    let isl_pairs = &pairs[..pairs.len().min(200)];
    let check_pairs = &pairs[..pairs.len().min(200)];

    let landmarks = default_landmarks(g, 20);

    // HL-P and HL build the identical labelling; both times are reported.
    let (_, stats_p) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
    let (labelling, stats_s) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
    let als_hl = labelling.labels().avg_label_size();
    let mut hl = HlOracle::new(g, labelling);
    let (qt_hl, _) = time_queries(&mut hl, &pairs);
    let reference: Vec<Option<u32>> = check_pairs.iter().map(|&(s, t)| hl.query(s, t)).collect();
    let mut mismatches = Vec::new();

    // FD.
    let (fd_index, ct_fd) = FdIndex::build(g, FdConfig::default()).unwrap();
    let als_fd = format!("{}+64", fd_index.landmarks().len());
    let mut fd = FdOracle::new(g, fd_index);
    let (qt_fd, _) = time_queries(&mut fd, &pairs);
    if check_pairs.iter().zip(&reference).any(|(&(s, t), r)| fd.query(s, t) != *r) {
        mismatches.push("FD");
    }

    // PLL (gated — the paper's DNFs at 1000× scale).
    let (ct_pll, qt_pll, als_pll) = if pll_feasible(g) {
        let bp = std::env::var("HCL_PLL_BP").ok().and_then(|s| s.parse().ok()).unwrap_or(16);
        let (idx, stats) =
            PllIndex::build(g, PllConfig { num_bp_roots: bp, bp_neighbors: 64 }).unwrap();
        let als = format!("{:.0}+{}", idx.avg_label_size(), idx.num_bp_trees());
        let mut pll = PllOracle::new(idx);
        let (qt, _) = time_queries(&mut pll, &pairs);
        if check_pairs.iter().zip(&reference).any(|(&(s, t), r)| pll.distance(s, t) != *r) {
            mismatches.push("PLL");
        }
        (Some(stats.duration), Some(qt), Some(als))
    } else {
        (None, None, None)
    };

    // IS-L (gated).
    let (ct_isl, qt_isl, als_isl) = if isl_feasible(g) {
        let (idx, ct) = IslIndex::build(g, IslConfig::default()).unwrap();
        let als = idx.avg_label_entries();
        let mut isl = IslOracle::new(idx);
        let (qt, _) = time_queries(&mut isl, isl_pairs);
        if check_pairs.iter().zip(&reference).take(50).any(|(&(s, t), r)| isl.query(s, t) != *r) {
            mismatches.push("IS-L");
        }
        (Some(ct), Some(qt), Some(als))
    } else {
        (None, None, None)
    };

    // Bi-BFS (the paper times 1,000 random pairs for it).
    let mut bibfs = BiBfsOracle::new(g);
    let (qt_bibfs, _) = time_queries(&mut bibfs, bibfs_pairs);

    Table2Row {
        name: prepared.spec.name.to_string(),
        ct_hlp: Some(stats_p.duration),
        ct_hl: Some(stats_s.duration),
        ct_fd: Some(ct_fd),
        ct_pll,
        ct_isl,
        qt_hl: Some(qt_hl),
        qt_fd: Some(qt_fd),
        qt_pll,
        qt_isl,
        qt_bibfs: Some(qt_bibfs),
        als_hl: Some(als_hl),
        als_fd: Some(als_fd),
        als_pll,
        als_isl,
        mismatches,
    }
}

/// Table 2: construction time, query time and average label size for every
/// method on every dataset.
pub fn run_table2() {
    let queries = num_queries();
    println!("== Table 2: construction time CT[s], avg query time QT[ms], avg label size ALS ==");
    println!("   ({queries} query pairs; 1,000 for Bi-BFS, 200 for IS-L — as in the paper)\n");
    let mut rows = Vec::new();
    for prepared in prepare_datasets() {
        let r = measure_table2(&prepared, queries);
        if !r.mismatches.is_empty() {
            eprintln!("!! {}: methods disagreeing with HL: {:?}", r.name, r.mismatches);
        }
        rows.push(vec![
            r.name,
            fmt_ct(r.ct_hlp),
            fmt_ct(r.ct_hl),
            fmt_ct(r.ct_fd),
            fmt_ct(r.ct_pll),
            fmt_ct(r.ct_isl),
            fmt_qt(r.qt_hl),
            fmt_qt(r.qt_fd),
            fmt_qt(r.qt_pll),
            fmt_qt(r.qt_isl),
            fmt_qt(r.qt_bibfs),
            fmt_als(r.als_hl),
            r.als_fd.unwrap_or_else(|| "-".into()),
            r.als_pll.unwrap_or_else(|| "-".into()),
            fmt_als(r.als_isl),
        ]);
    }
    print_table(
        &[
            "Dataset",
            "CT HL-P",
            "CT HL",
            "CT FD",
            "CT PLL",
            "CT IS-L",
            "QT HL",
            "QT FD",
            "QT PLL",
            "QT IS-L",
            "QT Bi-BFS",
            "ALS HL",
            "ALS FD",
            "ALS PLL",
            "ALS IS-L",
        ],
        &rows,
    );
}

/// Table 3: labelling sizes — HL(8) (8-bit encoding), HL (32-bit encoding,
/// matching the baselines' representation), FD, PLL and IS-L.
pub fn run_table3() {
    println!("== Table 3: labelling sizes ==\n");
    let mut rows = Vec::new();
    for prepared in prepare_datasets() {
        let g = &prepared.graph;
        let landmarks = default_landmarks(g, 20);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
        let hw = labelling.highway().matrix_bytes();
        let hl8 = labelling.labels().encoded_bytes(LabelEncoding::Compact8).map(|b| b + hw);
        let hl32 = labelling.labels().encoded_bytes(LabelEncoding::Wide32).map(|b| b + hw);

        let (fd_index, _) = FdIndex::build(g, FdConfig::default()).unwrap();
        let fd_bytes = Some(fd_index.index_bytes());

        let pll_bytes = if pll_feasible(g) {
            let bp = std::env::var("HCL_PLL_BP").ok().and_then(|s| s.parse().ok()).unwrap_or(16);
            let (idx, _) =
                PllIndex::build(g, PllConfig { num_bp_roots: bp, bp_neighbors: 64 }).unwrap();
            Some(idx.index_bytes())
        } else {
            None
        };
        let isl_bytes = if isl_feasible(g) {
            let (idx, _) = IslIndex::build(g, IslConfig::default()).unwrap();
            Some(idx.index_bytes())
        } else {
            None
        };

        rows.push(vec![
            prepared.spec.name.to_string(),
            fmt_bytes(hl8),
            fmt_bytes(hl32),
            fmt_bytes(fd_bytes),
            fmt_bytes(pll_bytes),
            fmt_bytes(isl_bytes),
            format_bytes(g.memory_bytes()),
        ]);
    }
    print_table(&["Dataset", "HL(8)", "HL", "FD", "PLL", "IS-L", "|G|"], &rows);
    println!("\n(HL(8): 8-bit landmark ids — valid since |R| = 20 <= 256; HL: the 32-bit");
    println!(" vertex-id encoding the baselines use, for a like-for-like comparison.)");
}
