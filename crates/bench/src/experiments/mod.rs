//! Implementations of every experiment, one public `run_*` function per
//! paper artefact. The `src/bin/*` binaries are thin wrappers.

pub mod ablation;
pub mod example;
pub mod figures;
pub mod tables;

pub use ablation::run_ablation;
pub use example::run_paper_example;
pub use figures::{run_fig1, run_fig6, run_fig7, run_fig8, run_fig9};
pub use tables::{run_table1, run_table2, run_table3};
