//! The paper's worked example (Figures 2–5, Examples 3.3–4.3), executed on
//! the reconstructed 14-vertex graph. Every printed number can be checked
//! against the paper directly.

use hcl_baselines::{PllConfig, PllIndex};
use hcl_core::{fixture, HighwayCoverLabelling, HlOracle};

/// Prints the full worked example and asserts the paper's numbers.
pub fn run_paper_example() {
    let g = fixture::paper_graph();
    let landmarks = fixture::paper_landmarks();
    println!("== The paper's worked example (Figures 2-5) ==\n");
    println!(
        "graph: {} vertices, {} edges; landmarks {{1, 5, 9}}\n",
        g.num_vertices(),
        g.num_edges()
    );

    // Figure 2(c) / Figure 3: the highway cover labelling.
    let (hcl, stats) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
    println!("highway cover labelling (Figure 2(c)):");
    for v in g.vertices() {
        let label = hcl.labels().label(v);
        if label.is_empty() {
            continue;
        }
        let entries: Vec<String> = label
            .iter()
            .map(|e| format!("({},{})", hcl.highway().landmark(e.landmark as u32) + 1, e.dist))
            .collect();
        println!("  vertex {:>2}: {}", v + 1, entries.join(" "));
    }
    println!(
        "\n  LS = {} (paper: 13), edges traversed = {}",
        hcl.labels().total_entries(),
        stats.edges_traversed
    );
    assert_eq!(hcl.labels().total_entries(), 13, "Figure 3 labelling size");

    // Highway distances (Example 4.2).
    let h = hcl.highway();
    let rank = |pv: u32| h.rank(fixture::paper_vertex(pv)).unwrap();
    println!(
        "\nhighway: δH(1,5) = {}, δH(1,9) = {}, δH(5,9) = {}",
        h.distance(rank(1), rank(5)),
        h.distance(rank(1), rank(9)),
        h.distance(rank(5), rank(9)),
    );

    // Example 4.2/4.3: the query (2, 11).
    let (v2, v11) = (fixture::paper_vertex(2), fixture::paper_vertex(11));
    let ub = hcl.upper_bound(v2, v11);
    let mut oracle = HlOracle::new(&g, hcl);
    let d = oracle.query(v2, v11).unwrap();
    println!("\nquery d(2, 11): upper bound d⊤ = {ub} (paper: 3), exact = {d} (paper: 3)");
    assert_eq!(ub, 3);
    assert_eq!(d, 3);

    // Figure 4: pruned landmark labelling is order-dependent.
    let no_bp = PllConfig { num_bp_roots: 0, bp_neighbors: 0 };
    let order_a: Vec<u32> = [1u32, 5, 9].iter().map(|&v| fixture::paper_vertex(v)).collect();
    let order_b: Vec<u32> = [9u32, 5, 1].iter().map(|&v| fixture::paper_vertex(v)).collect();
    let (pll_a, stats_a) = PllIndex::build_with_order(&g, &order_a, no_bp).unwrap();
    let (pll_b, stats_b) = PllIndex::build_with_order(&g, &order_b, no_bp).unwrap();
    println!("\npruned landmark labelling (Figure 4):");
    println!(
        "  order <1,5,9>: LS = {} (paper: 25), edges traversed = {}",
        pll_a.total_entries(),
        stats_a.edges_traversed
    );
    println!(
        "  order <9,5,1>: LS = {} (paper: 30), edges traversed = {}",
        pll_b.total_entries(),
        stats_b.edges_traversed
    );
    assert_eq!(pll_a.total_entries(), 25, "Figure 4 order <1,5,9>");
    assert_eq!(pll_b.total_entries(), 30, "Figure 4 order <9,5,1>");

    println!("\nHL's 13 entries beat both PLL orderings (Corollary 3.14), and are");
    println!("identical under any landmark order (Lemma 3.11). All numbers match the paper.");
}
