//! Figures 1 and 6–9 of the paper.

use crate::harness::*;
use hcl_baselines::pll::PllOracle;
use hcl_baselines::{
    BiBfsOracle, FdConfig, FdIndex, FdOracle, IslConfig, IslIndex, IslOracle, PllConfig, PllIndex,
};
use hcl_core::labels::LabelEncoding;
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::generate;
use hcl_workloads::queries::{sample_pairs, DistanceDistribution};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Figure 1: (a) query time vs index size per method, (b) construction time
/// vs network size, (c) the method property matrix.
pub fn run_fig1(part: Option<&str>) {
    match part {
        Some("a") => fig1a(),
        Some("b") => fig1b(),
        Some("c") => fig1c(),
        _ => {
            fig1a();
            println!();
            fig1b();
            println!();
            fig1c();
        }
    }
}

/// Figure 1(a): each method's (index size, avg query time) per dataset.
fn fig1a() {
    println!("== Figure 1(a): query time [ms] vs index size [MB] per method ==\n");
    let queries = env_usize("HCL_FIG1_QUERIES", 5_000);
    let mut rows = Vec::new();
    for prepared in prepare_datasets() {
        let g = &prepared.graph;
        let pairs = sample_pairs(g.num_vertices(), queries, 0xF1A);
        let small = &pairs[..pairs.len().min(200)];

        let landmarks = default_landmarks(g, 20);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
        let hl_bytes = labelling.index_bytes();
        let mut hl = HlOracle::new(g, labelling);
        let (hl_qt, _) = time_queries(&mut hl, &pairs);
        push_point(&mut rows, &prepared, "HL", Some(hl_bytes), Some(hl_qt));

        let (fd_index, _) = FdIndex::build(g, FdConfig::default()).unwrap();
        let fd_bytes = fd_index.index_bytes();
        let mut fd = FdOracle::new(g, fd_index);
        let (fd_qt, _) = time_queries(&mut fd, &pairs);
        push_point(&mut rows, &prepared, "FD", Some(fd_bytes), Some(fd_qt));

        if pll_feasible(g) {
            let (idx, _) =
                PllIndex::build(g, PllConfig { num_bp_roots: 16, bp_neighbors: 64 }).unwrap();
            let bytes = idx.index_bytes();
            let mut pll = PllOracle::new(idx);
            let (qt, _) = time_queries(&mut pll, &pairs);
            push_point(&mut rows, &prepared, "PLL", Some(bytes), Some(qt));
        } else {
            push_point(&mut rows, &prepared, "PLL", None, None);
        }

        if isl_feasible(g) {
            let (idx, _) = IslIndex::build(g, IslConfig::default()).unwrap();
            let bytes = idx.index_bytes();
            let mut isl = IslOracle::new(idx);
            let (qt, _) = time_queries(&mut isl, small);
            push_point(&mut rows, &prepared, "IS-L", Some(bytes), Some(qt));
        } else {
            push_point(&mut rows, &prepared, "IS-L", None, None);
        }

        let mut bibfs = BiBfsOracle::new(g);
        let (qt, _) = time_queries(&mut bibfs, small);
        push_point(&mut rows, &prepared, "Bi-BFS", Some(0), Some(qt));
    }
    print_table(&["Dataset", "Method", "Index [MB]", "QT [ms]"], &rows);
}

fn push_point(
    rows: &mut Vec<Vec<String>>,
    prepared: &PreparedDataset,
    method: &str,
    bytes: Option<usize>,
    qt_us: Option<f64>,
) {
    rows.push(vec![
        prepared.spec.name.to_string(),
        method.to_string(),
        bytes
            .map(|b| format!("{:.2}", b as f64 / (1024.0 * 1024.0)))
            .unwrap_or_else(|| "DNF".into()),
        fmt_qt(qt_us),
    ]);
}

/// Figure 1(b): construction time against network size (Barabási–Albert
/// sweep, average degree 16 — doubling edge counts as in the paper's
/// 20M → 8B progression, scaled down).
fn fig1b() {
    println!("== Figure 1(b): construction time [s] vs network size ==\n");
    let max_n = env_usize("HCL_FIG1B_MAX_N", 256_000);
    let mut rows = Vec::new();
    let mut n = 1_000usize;
    while n <= max_n {
        let g = generate::barabasi_albert(n, 8, 0xF1B);
        let landmarks = default_landmarks(&g, 20);
        let (_, hlp) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
        let (_, hl) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let (_, fd_ct) = FdIndex::build(&g, FdConfig::default()).unwrap();
        let pll_ct = pll_feasible(&g).then(|| {
            PllIndex::build(&g, PllConfig { num_bp_roots: 16, bp_neighbors: 64 })
                .unwrap()
                .1
                .duration
        });
        let isl_ct = isl_feasible(&g).then(|| IslIndex::build(&g, IslConfig::default()).unwrap().1);
        rows.push(vec![
            n.to_string(),
            g.num_edges().to_string(),
            fmt_ct(Some(hlp.duration)),
            fmt_ct(Some(hl.duration)),
            fmt_ct(Some(fd_ct)),
            fmt_ct(pll_ct),
            fmt_ct(isl_ct),
        ]);
        n *= 4;
    }
    print_table(&["n", "m", "HL-P", "HL", "FD", "PLL", "IS-L"], &rows);
}

/// Figure 1(c): the static property matrix.
fn fig1c() {
    println!("== Figure 1(c): method properties ==\n");
    let rows = vec![
        vec!["HL (ours)", "no", "n/a", "yes", "landmarks"],
        vec!["FD [15]", "no", "no", "no", "neighbours"],
        vec!["IS-L [12]", "yes", "no", "no", "no"],
        vec!["PLL [3]", "yes", "yes", "no", "neighbours"],
        vec!["HDB [16]", "yes", "no", "no", "no"],
        vec!["HHL [2]", "yes", "no", "no", "no"],
    ]
    .into_iter()
    .map(|r| r.into_iter().map(String::from).collect())
    .collect::<Vec<Vec<String>>>();
    print_table(
        &["Method", "Ordering-dependent?", "2HC-minimal?", "HWC-minimal?", "Parallel?"],
        &rows,
    );
}

/// Figure 6: distance distribution of random pairs per dataset. Distances
/// come from the HL oracle (exact; verified against Bi-BFS in the
/// integration tests), so the paper-sized workload stays fast.
pub fn run_fig6() {
    let pairs_n = env_usize("HCL_FIG6_PAIRS", 20_000);
    println!("== Figure 6: distance distribution of {pairs_n} random pairs ==\n");
    let mut rows = Vec::new();
    let mut max_d = 0usize;
    let mut dists = Vec::new();
    for prepared in prepare_datasets() {
        let g = &prepared.graph;
        let landmarks = default_landmarks(g, 20);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
        let mut oracle = HlOracle::new(g, labelling);
        let pairs = sample_pairs(g.num_vertices(), pairs_n, 0xF6);
        let mut dist = DistanceDistribution::default();
        for &(s, t) in &pairs {
            dist.record(oracle.query(s, t));
        }
        max_d = max_d.max(dist.max_distance());
        dists.push((prepared.spec.name.to_string(), dist));
    }
    for (name, dist) in &dists {
        let mut row = vec![name.clone(), format!("{:.2}", dist.mean())];
        for d in 1..=max_d.min(14) {
            row.push(format!("{:.3}", dist.fraction(d)));
        }
        rows.push(row);
    }
    let mut header: Vec<String> = vec!["Dataset".into(), "mean".into()];
    for d in 1..=max_d.min(14) {
        header.push(format!("d={d}"));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table(&header_refs, &rows);
}

/// Figure 7: HL construction time (a–d) and query time (e–g) for 10–50
/// landmarks on every dataset.
pub fn run_fig7(part: Option<&str>) {
    let ks = [10usize, 20, 30, 40, 50];
    let want_ct = part != Some("qt");
    let want_qt = part != Some("ct");
    let queries = env_usize("HCL_FIG7_QUERIES", 20_000);
    let mut ct_rows = Vec::new();
    let mut qt_rows = Vec::new();
    for prepared in prepare_datasets() {
        let g = &prepared.graph;
        let mut ct_row = vec![prepared.spec.name.to_string()];
        let mut qt_row = vec![prepared.spec.name.to_string()];
        for &k in &ks {
            let landmarks = default_landmarks(g, k);
            let (labelling, stats) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
            ct_row.push(fmt_ct(Some(stats.duration)));
            if want_qt {
                let mut oracle = HlOracle::new(g, labelling);
                let pairs = sample_pairs(g.num_vertices(), queries, 0xF7);
                let (qt, _) = time_queries(&mut oracle, &pairs);
                qt_row.push(fmt_qt(Some(qt)));
            }
        }
        ct_rows.push(ct_row);
        qt_rows.push(qt_row);
    }
    let header = ["Dataset", "k=10", "k=20", "k=30", "k=40", "k=50"];
    if want_ct {
        println!("== Figure 7(a-d): HL construction time [s] under 10-50 landmarks ==\n");
        print_table(&header, &ct_rows);
    }
    if want_qt {
        if want_ct {
            println!();
        }
        println!("== Figure 7(e-g): HL avg query time [ms] under 10-50 landmarks ==\n");
        print_table(&header, &qt_rows);
    }
}

/// Figure 8: HL labelling size under 10–50 landmarks, against FD's at 20.
pub fn run_fig8() {
    println!("== Figure 8: labelling sizes [MB], HL-10..HL-50 vs FD-20 ==\n");
    let ks = [10usize, 20, 30, 40, 50];
    let mut rows = Vec::new();
    for prepared in prepare_datasets() {
        let g = &prepared.graph;
        let mut row = vec![prepared.spec.name.to_string()];
        for &k in &ks {
            let landmarks = default_landmarks(g, k);
            let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
            let bytes = labelling.labels().encoded_bytes(LabelEncoding::Wide32).unwrap()
                + labelling.highway().matrix_bytes();
            row.push(format!("{:.2}", bytes as f64 / (1024.0 * 1024.0)));
        }
        let (fd_index, _) = FdIndex::build(g, FdConfig::default()).unwrap();
        row.push(format!("{:.2}", fd_index.index_bytes() as f64 / (1024.0 * 1024.0)));
        rows.push(row);
    }
    print_table(&["Dataset", "HL-10", "HL-20", "HL-30", "HL-40", "HL-50", "FD-20"], &rows);
}

/// Figure 9: pair coverage ratio (fraction of pairs with a landmark on some
/// shortest path) under 10–50 landmarks, against FD's 20.
pub fn run_fig9() {
    let pairs_n = env_usize("HCL_FIG9_PAIRS", 5_000);
    println!("== Figure 9: pair coverage ratio over {pairs_n} random pairs ==\n");
    let ks = [10usize, 20, 30, 40, 50];
    let mut rows = Vec::new();
    for prepared in prepare_datasets() {
        let g = &prepared.graph;
        let pairs = sample_pairs(g.num_vertices(), pairs_n, 0xF9);

        // Exact distances once, from the largest landmark set (any exact
        // method works; HL-50 is the fastest available here).
        let landmarks50 = default_landmarks(g, 50);
        let (labelling50, _) = HighwayCoverLabelling::build_parallel(g, &landmarks50, 0).unwrap();
        let mut oracle = HlOracle::new(g, labelling50);
        let exact: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();

        let mut row = vec![prepared.spec.name.to_string()];
        for &k in &ks {
            let landmarks = default_landmarks(g, k);
            let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
            let covered = pairs
                .iter()
                .zip(&exact)
                .filter(|(&(s, t), d)| matches!(d, Some(d) if labelling.upper_bound(s, t) == *d))
                .count();
            row.push(format!("{:.3}", covered as f64 / pairs.len() as f64));
        }

        let (fd_index, _) = FdIndex::build(g, FdConfig::default()).unwrap();
        let covered = pairs
            .iter()
            .zip(&exact)
            .filter(|(&(s, t), d)| matches!(d, Some(d) if fd_index.upper_bound(s, t) == *d))
            .count();
        row.push(format!("{:.3}", covered as f64 / pairs.len() as f64));
        rows.push(row);
    }
    print_table(&["Dataset", "HL-10", "HL-20", "HL-30", "HL-40", "HL-50", "FD-20"], &rows);
}
