//! Ablations beyond the paper's figures, probing the design choices that
//! DESIGN.md calls out: landmark selection (the paper's §8 future work),
//! the Lemma 5.1 upper-bound optimisation, FD's bit-parallel trees, and
//! HL-P thread scaling.

use crate::harness::*;
use hcl_baselines::{FdConfig, FdIndex};
use hcl_core::landmarks::LandmarkStrategy;
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_workloads::queries::sample_pairs;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Runs all four ablations over a subset of datasets.
pub fn run_ablation() {
    let datasets = prepare_datasets();
    // Ablations are method-internal; three representative stand-ins suffice.
    let picks: Vec<&PreparedDataset> = datasets
        .iter()
        .filter(|d| ["Skitter", "LiveJournal", "Indochina"].contains(&d.spec.name))
        .collect();
    let picks = if picks.is_empty() { datasets.iter().take(3).collect() } else { picks };

    landmark_strategies(&picks);
    println!();
    lemma_5_1(&picks);
    println!();
    fd_bp_trees(&picks);
    println!();
    thread_scaling(&picks);
    println!();
    pll_order_dependence(&picks);
    println!();
    bound_as_estimator(&picks);
}

/// Figure 4 at dataset scale: the same landmark set under different PLL
/// orders vs the order-invariant highway cover labelling.
fn pll_order_dependence(picks: &[&PreparedDataset]) {
    println!("== Ablation E: ordering sensitivity (20 landmarks, partial PLL vs HL) ==\n");
    let no_bp = hcl_baselines::PllConfig { num_bp_roots: 0, bp_neighbors: 0 };
    let mut rows = Vec::new();
    for prepared in picks {
        let g = &prepared.graph;
        let landmarks = default_landmarks(g, 20);
        let mut reversed = landmarks.clone();
        reversed.reverse();
        let (hl, _) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
        let (pll_fwd, _) = hcl_baselines::PllIndex::build_with_order(g, &landmarks, no_bp).unwrap();
        let (pll_rev, _) = hcl_baselines::PllIndex::build_with_order(g, &reversed, no_bp).unwrap();
        rows.push(vec![
            prepared.spec.name.to_string(),
            hl.labels().total_entries().to_string(),
            pll_fwd.total_entries().to_string(),
            pll_rev.total_entries().to_string(),
            format!(
                "{:.2}x",
                pll_fwd.total_entries().max(pll_rev.total_entries()) as f64
                    / hl.labels().total_entries() as f64
            ),
        ]);
    }
    print_table(&["Dataset", "HL entries", "PLL desc-degree", "PLL asc-degree", "worst/HL"], &rows);
    println!("\n(HL entries are identical under any order — Lemma 3.11; PLL's are not.)");
}

/// How good is the label upper bound alone as an *approximate* oracle
/// (skipping Algorithm 2 entirely)? Relevant to landmark-estimation
/// literature the paper cites ([22], [29]).
fn bound_as_estimator(picks: &[&PreparedDataset]) {
    println!("== Ablation F: upper bound as an approximate distance (no bounded search) ==\n");
    let queries = env_usize("HCL_ABLATION_QUERIES", 20_000);
    let mut rows = Vec::new();
    for prepared in picks {
        let g = &prepared.graph;
        let pairs = sample_pairs(g.num_vertices(), queries, 0xAB6);
        let landmarks = default_landmarks(g, 20);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
        let mut oracle = HlOracle::new(g, labelling);
        let mut err_sum = 0.0f64;
        let mut exact_hits = 0usize;
        let mut counted = 0usize;
        let start = Instant::now();
        let mut acc = 0u64;
        for &(s, t) in &pairs {
            acc = acc.wrapping_add(oracle.upper_bound(s, t) as u64);
        }
        let bound_time = start.elapsed();
        let start = Instant::now();
        for &(s, t) in &pairs {
            if let Some(d) = oracle.query(s, t) {
                acc = acc.wrapping_add(d as u64);
            }
        }
        let exact_time = start.elapsed();
        for &(s, t) in pairs.iter().take(5_000) {
            let ub = oracle.upper_bound(s, t);
            if let Some(d) = oracle.query(s, t) {
                if d > 0 {
                    counted += 1;
                    err_sum += (ub - d) as f64 / d as f64;
                    if ub == d {
                        exact_hits += 1;
                    }
                }
            }
        }
        std::hint::black_box(acc);
        rows.push(vec![
            prepared.spec.name.to_string(),
            format!("{:.3}", bound_time.as_secs_f64() * 1e6 / pairs.len() as f64),
            format!("{:.3}", exact_time.as_secs_f64() * 1e6 / pairs.len() as f64),
            format!("{:.3}", exact_hits as f64 / counted.max(1) as f64),
            format!("{:.4}", err_sum / counted.max(1) as f64),
        ]);
    }
    print_table(
        &["Dataset", "bound-only [µs]", "exact [µs]", "exact fraction", "mean rel. error"],
        &rows,
    );
}

/// §8 future work: how much does landmark selection matter?
fn landmark_strategies(picks: &[&PreparedDataset]) {
    println!("== Ablation A: landmark selection strategy (k = 20) ==\n");
    let queries = env_usize("HCL_ABLATION_QUERIES", 20_000);
    let mut rows = Vec::new();
    for prepared in picks {
        let g = &prepared.graph;
        let pairs = sample_pairs(g.num_vertices(), queries, 0xAB1);
        for strategy in [
            LandmarkStrategy::TopDegree(20),
            LandmarkStrategy::TopTwoHopDegree(20),
            LandmarkStrategy::Random { k: 20, seed: 11 },
        ] {
            let landmarks = strategy.select(g);
            let (labelling, stats) =
                HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
            let entries = labelling.labels().total_entries();
            let mut oracle = HlOracle::new(g, labelling);
            let (qt, _) = time_queries(&mut oracle, &pairs);
            let covered =
                pairs.iter().take(2_000).filter(|&&(s, t)| oracle.pair_covered(s, t)).count();
            rows.push(vec![
                prepared.spec.name.to_string(),
                strategy.name().to_string(),
                fmt_ct(Some(stats.duration)),
                entries.to_string(),
                format!("{:.3}", covered as f64 / 2_000.0),
                fmt_qt(Some(qt)),
            ]);
        }
    }
    print_table(&["Dataset", "Strategy", "CT [s]", "entries", "coverage", "QT [ms]"], &rows);
    println!("\n(top-degree is the paper's choice; random shows why selection matters.)");
}

/// §5.3: the Lemma 5.1 optimised upper bound vs the plain Equation 4 loop.
fn lemma_5_1(picks: &[&PreparedDataset]) {
    println!("== Ablation B: Lemma 5.1 upper-bound optimisation ==\n");
    let reps = env_usize("HCL_ABLATION_QUERIES", 20_000);
    let mut rows = Vec::new();
    for prepared in picks {
        let g = &prepared.graph;
        let pairs = sample_pairs(g.num_vertices(), reps, 0xAB2);
        let landmarks = default_landmarks(g, 20);
        let (labelling, _) = HighwayCoverLabelling::build_parallel(g, &landmarks, 0).unwrap();
        let reference = labelling.clone();
        let mut oracle = HlOracle::new(g, labelling);

        let start = Instant::now();
        let mut acc = 0u64;
        for &(s, t) in &pairs {
            acc = acc.wrapping_add(oracle.upper_bound(s, t) as u64);
        }
        let merged = start.elapsed();

        let start = Instant::now();
        let mut acc2 = 0u64;
        for &(s, t) in &pairs {
            acc2 = acc2.wrapping_add(reference.upper_bound(s, t) as u64);
        }
        let naive = start.elapsed();
        assert_eq!(acc, acc2, "optimised and naive bounds must agree");

        rows.push(vec![
            prepared.spec.name.to_string(),
            format!("{:.3}", naive.as_secs_f64() * 1e6 / reps as f64),
            format!("{:.3}", merged.as_secs_f64() * 1e6 / reps as f64),
            format!("{:.2}x", naive.as_secs_f64() / merged.as_secs_f64().max(1e-12)),
        ]);
    }
    print_table(&["Dataset", "Eq.4 loop [µs]", "Lemma 5.1 merge [µs]", "speedup"], &rows);
}

/// FD's bit-parallel trees: bound tightness and query time per tree count.
fn fd_bp_trees(picks: &[&PreparedDataset]) {
    println!("== Ablation C: FD bit-parallel trees ==\n");
    let queries = env_usize("HCL_ABLATION_QUERIES", 20_000);
    let mut rows = Vec::new();
    for prepared in picks {
        let g = &prepared.graph;
        let pairs = sample_pairs(g.num_vertices(), queries, 0xAB3);
        for bp in [0usize, 4, 8] {
            let cfg = FdConfig { num_landmarks: 20, num_bp_trees: bp, bp_neighbors: 64 };
            let (idx, ct) = FdIndex::build(g, cfg).unwrap();
            let bytes = idx.index_bytes();
            let mut oracle = hcl_baselines::FdOracle::new(g, idx);
            let (qt, _) = time_queries(&mut oracle, &pairs);
            rows.push(vec![
                prepared.spec.name.to_string(),
                bp.to_string(),
                fmt_ct(Some(ct)),
                format!("{:.2}", bytes as f64 / (1024.0 * 1024.0)),
                fmt_qt(Some(qt)),
            ]);
        }
    }
    print_table(&["Dataset", "BP trees", "CT [s]", "Index [MB]", "QT [ms]"], &rows);
}

/// HL-P speed-up over worker threads (§5.1, Table 2's HL-P vs HL).
fn thread_scaling(picks: &[&PreparedDataset]) {
    println!("== Ablation D: HL-P thread scaling (k = 50 landmarks) ==\n");
    let mut rows = Vec::new();
    for prepared in picks {
        let g = &prepared.graph;
        let landmarks = default_landmarks(g, 50);
        let mut row = vec![prepared.spec.name.to_string()];
        let mut base = None;
        for threads in [1usize, 2, 4, 8] {
            let (_, stats) = HighwayCoverLabelling::build_parallel(g, &landmarks, threads).unwrap();
            let secs = stats.duration.as_secs_f64();
            if threads == 1 {
                base = Some(secs);
                row.push(format!("{secs:.3}s"));
            } else {
                row.push(format!("{secs:.3}s ({:.1}x)", base.unwrap_or(secs) / secs.max(1e-12)));
            }
        }
        rows.push(row);
    }
    print_table(&["Dataset", "1 thread", "2 threads", "4 threads", "8 threads"], &rows);
}
