//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6), over the synthetic dataset stand-ins of
//! [`hcl_workloads`].
//!
//! One binary per artefact (`table1`–`table3`, `fig1`, `fig6`–`fig9`,
//! `paper_example`, `ablation`), all thin wrappers over the functions in
//! [`experiments`]; `all_experiments` runs the lot. Criterion micro-benches
//! live under `benches/`.
//!
//! Environment knobs:
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `HCL_SCALE` | `1.0` | dataset size multiplier (~1/1000 of the paper at 1.0) |
//! | `HCL_QUERIES` | `100000` | query pairs for fast methods (paper: 100,000) |
//! | `HCL_DATASETS` | all | comma-separated dataset subset |
//! | `HCL_PLL_MAX_EDGES` | `1000000` | PLL feasibility gate (larger ⇒ `DNF`) |
//! | `HCL_ISL_MAX_EDGES` | `60000` | IS-L feasibility gate (larger ⇒ `DNF`) |
//!
//! The feasibility gates replace the paper's one-day/512 GB DNF criterion:
//! on our scaled-down stand-ins, PLL and IS-L hit their walls at
//! proportionally scaled sizes, and the gates print `DNF` exactly where the
//! method would otherwise dominate the run (Table 2 of the paper shows the
//! same pattern at 1000× the scale).

pub mod experiments;
pub mod harness;

pub use harness::*;
