//! Regenerates Figure 1. Optional arg: `a`, `b` or `c` for one panel.
fn main() {
    let arg = std::env::args().nth(1);
    hcl_bench::experiments::run_fig1(arg.as_deref());
}
