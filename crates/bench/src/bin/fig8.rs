//! Regenerates Figure 8 (labelling size vs landmark count).
fn main() {
    hcl_bench::experiments::run_fig8();
}
