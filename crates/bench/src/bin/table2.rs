//! Regenerates Table 2 (construction / query times, label sizes).
fn main() {
    hcl_bench::experiments::run_table2();
}
