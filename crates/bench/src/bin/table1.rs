//! Regenerates Table 1 (dataset statistics). `cargo run --release --bin table1`
fn main() {
    hcl_bench::experiments::run_table1();
}
