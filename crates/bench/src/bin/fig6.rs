//! Regenerates Figure 6 (distance distributions).
fn main() {
    hcl_bench::experiments::run_fig6();
}
