//! Regenerates Figure 7. Optional arg: `ct` (a-d) or `qt` (e-g).
fn main() {
    let arg = std::env::args().nth(1);
    hcl_bench::experiments::run_fig7(arg.as_deref());
}
