//! Runs every table and figure in sequence (the full §6 evaluation).
fn main() {
    let sections: &[(&str, fn())] = &[
        ("paper_example", hcl_bench::experiments::run_paper_example as fn()),
        ("table1", hcl_bench::experiments::run_table1),
        ("fig6", hcl_bench::experiments::run_fig6),
        ("table2", hcl_bench::experiments::run_table2),
        ("table3", hcl_bench::experiments::run_table3),
        ("fig1", || hcl_bench::experiments::run_fig1(None)),
        ("fig7", || hcl_bench::experiments::run_fig7(None)),
        ("fig8", hcl_bench::experiments::run_fig8),
        ("fig9", hcl_bench::experiments::run_fig9),
        ("ablation", hcl_bench::experiments::run_ablation),
    ];
    for (name, run) in sections {
        println!("\n######## {name} ########\n");
        let start = std::time::Instant::now();
        run();
        println!("\n[{name} finished in {:?}]", start.elapsed());
    }
}
