//! Query-hot-path benchmark: emits `BENCH_query.json`, the committed
//! perf-trajectory artefact (one JSON object per PR touching the query
//! path; CI regenerates it as a build artifact on every run).
//!
//! Measures, on a fixed Barabási–Albert instance:
//!
//! * **queries/sec, sequential** — `SharedOracle::distance_with` with one
//!   caller-held context: label merge + bounded search on the precomputed
//!   sparsified CSR, nothing else;
//! * **queries/sec, batched** — `SharedOracle::batch_distances` through
//!   the pooled fan-out (equal to sequential on a single-core host);
//! * **upper-bound-exact rate** — fraction of query pairs whose label
//!   upper bound is already the exact distance (the paper's Figure 9
//!   coverage metric; these queries never run a search);
//! * **queries/sec, packed** — the same sequential workload answered by a
//!   [`hcl_store::PackedOracle`] decoding delta-varint labels straight out
//!   of the mmapped `.hclx` container (no deserialisation);
//! * **merge-vs-search phase split** — per-query nanoseconds spent in the
//!   Lemma 5.1 label merge vs the bounded bidirectional search, from one
//!   instrumented pass (`distance_with_timed`), plus per-entry label byte
//!   stats (`avg_label_entries`, packed `label_bytes_per_entry`);
//! * **reload latency** — deserialising reload (graph + plain index from
//!   disk, rebuild the sparsified view) vs packed reload (map the `.hclx`
//!   and validate), best of several runs each;
//! * **incremental update latency** — median single-edge `UPDATE ADD` /
//!   `DEL` through `hcl_core::update::apply_edit` (including the
//!   `PairFilter` the server builds to retag its cache) against the full
//!   `build_parallel` the update replaces (`update_speedup`);
//! * sizes — labelling bytes, sparsified-view bytes/edges, graph bytes,
//!   plus packed store bytes and the packed/plain compression ratio.
//!
//! Usage: `bench_query [--quick] [--out <path>]`. `--quick` shrinks the
//! instance for CI; without `--out` the JSON goes to stdout only. Every
//! record carries its provenance — `git_rev`, `nproc`, and `mode` — so
//! numbers from different machines or configurations are never compared
//! blindly.

use hcl_core::{HighwayCoverLabelling, QueryContext, SharedOracle};
use hcl_graph::generate;
use hcl_workloads::queries::sample_pairs;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    vertices: usize,
    degree: usize,
    landmarks: usize,
    queries: usize,
    /// Repeat the query set until at least this much wall time has been
    /// measured, so quick mode still reports a stable rate.
    min_seconds: f64,
}

const FULL: Config =
    Config { vertices: 100_000, degree: 8, landmarks: 20, queries: 16_384, min_seconds: 2.0 };
const QUICK: Config =
    Config { vertices: 20_000, degree: 8, landmarks: 20, queries: 4_096, min_seconds: 0.5 };

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out requires a path").clone());
    let cfg = if quick { QUICK } else { FULL };

    let g = Arc::new(generate::barabasi_albert(cfg.vertices, cfg.degree, 42));
    let landmark_set = hcl_graph::order::top_degree(&g, cfg.landmarks);
    let build_start = Instant::now();
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmark_set, 0).unwrap();
    let build_secs = build_start.elapsed().as_secs_f64();
    let oracle = SharedOracle::new(Arc::clone(&g), Arc::new(labelling));
    let pairs = sample_pairs(g.num_vertices(), cfg.queries, 7);

    // Upper-bound-exact rate over the same workload.
    let mut ctx = QueryContext::new(g.num_vertices());
    let labelling = oracle.labelling();
    let mut exact = 0usize;
    let mut answered = 0usize;
    for &(s, t) in &pairs {
        let bound = labelling.upper_bound_with(&mut ctx, s, t);
        if let Some(d) = oracle.distance_with(&mut ctx, s, t) {
            answered += 1;
            if bound == d {
                exact += 1;
            }
        }
    }
    let ub_exact_rate = exact as f64 / answered.max(1) as f64;

    // Packed store: write the same index as a `.hclx` container next to the
    // plain serialisation, then compare cold-load latency and query rate.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let graph_path = dir.join(format!("bench_query_{pid}.hclg"));
    let index_path = dir.join(format!("bench_query_{pid}.hcl"));
    let packed_path = dir.join(format!("bench_query_{pid}.hclx"));
    hcl_graph::io::save_binary(&g, &graph_path).unwrap();
    hcl_core::io::save_labelling(labelling, &index_path).unwrap();
    hcl_store::save_packed(labelling, oracle.sparse_view(), &packed_path).unwrap();
    let store_bytes = std::fs::metadata(&packed_path).unwrap().len() as usize;

    // Deserialising reload: what `RELOAD graph.hclg index.hcl` costs —
    // parse both containers and rebuild the sparsified view.
    let reload_deser_secs = (0..3)
        .map(|_| {
            let t = Instant::now();
            let g2 = Arc::new(hcl_graph::io::load_auto(&graph_path).unwrap());
            let l2 = hcl_core::io::load_labelling(&index_path).unwrap();
            black_box(SharedOracle::new(g2, Arc::new(l2)));
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    // Packed reload: what `RELOAD index.hclx` costs — map and validate.
    let reload_mmap_secs = (0..5)
        .map(|_| {
            let t = Instant::now();
            black_box(hcl_store::PackedOracle::open(&packed_path).unwrap());
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min);

    // Sequential queries/sec, in-memory vs packed. The two loops run
    // *interleaved*, one pass each per round, so transient machine noise
    // (the container is a shared single core) hits both sides equally and
    // the in-run ratio is trustworthy even when absolute rates wobble.
    let packed = hcl_store::PackedOracle::open(&packed_path).unwrap();
    let packed_index_bytes = packed.view().packed_index_bytes();
    let plain_index_bytes = packed.view().plain_index_bytes();
    let label_data_bytes = packed.view().label_data_bytes();
    let mut seq_secs = 0.0f64;
    let mut packed_secs = 0.0f64;
    let mut passes = 0u32;
    while seq_secs < cfg.min_seconds || packed_secs < cfg.min_seconds {
        let t = Instant::now();
        for &(s, t) in &pairs {
            black_box(oracle.distance_with(&mut ctx, s, t));
        }
        seq_secs += t.elapsed().as_secs_f64();
        let t = Instant::now();
        for &(s, t) in &pairs {
            black_box(packed.distance_with(&mut ctx, s, t));
        }
        packed_secs += t.elapsed().as_secs_f64();
        passes += 1;
    }
    let seq_qps = (passes as f64 * pairs.len() as f64) / seq_secs;
    let packed_qps = (passes as f64 * pairs.len() as f64) / packed_secs;
    drop(packed);
    for p in [&graph_path, &index_path, &packed_path] {
        let _ = std::fs::remove_file(p);
    }

    // Merge-vs-search phase split: one instrumented pass with the timed
    // query path. The two `Instant` reads per query keep this off the raw
    // throughput loops above; here they *are* the measurement.
    let mut merge_ns = 0u64;
    let mut search_ns = 0u64;
    for &(s, t) in &pairs {
        let (d, phases) = oracle.distance_with_timed(&mut ctx, s, t);
        black_box(d);
        merge_ns += phases.merge_ns;
        search_ns += phases.search_ns;
    }
    let merge_ns_per_query = merge_ns as f64 / pairs.len() as f64;
    let bfs_ns_per_query = search_ns as f64 / pairs.len() as f64;

    // Batched queries/sec through the pooled fan-out (all cores).
    let mut batch_passes = 0u32;
    let batch_start = Instant::now();
    loop {
        black_box(oracle.batch_distances(&pairs, 0));
        batch_passes += 1;
        if batch_start.elapsed().as_secs_f64() >= cfg.min_seconds {
            break;
        }
    }
    let batch_qps =
        (batch_passes as f64 * pairs.len() as f64) / batch_start.elapsed().as_secs_f64();

    // Incremental update latency: median wall time for one edge insert /
    // delete through `hcl_core::update::apply_edit`, *including* the
    // `PairFilter` construction the server pays to retag its cache —
    // the full cost of publishing a patched generation — against the
    // from-scratch `build_parallel` the update replaces.
    let mut add_ms: Vec<f64> = Vec::new();
    let mut del_ms: Vec<f64> = Vec::new();
    for &(s, t) in sample_pairs(g.num_vertices(), 256, 13)
        .iter()
        .filter(|&&(s, t)| s != t && !g.has_edge(s, t))
        .take(7)
    {
        use hcl_core::update::{apply_edit, EdgeEdit, PairFilter};
        let t0 = Instant::now();
        let added =
            apply_edit(&g, oracle.labelling(), oracle.sparse_view(), EdgeEdit::Add(s, t)).unwrap();
        black_box(PairFilter::for_edit(&g, &added.graph, EdgeEdit::Add(s, t)));
        add_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let deleted =
            apply_edit(&added.graph, &added.labelling, &added.sparse, EdgeEdit::Delete(s, t))
                .unwrap();
        black_box(PairFilter::for_edit(&added.graph, &deleted.graph, EdgeEdit::Delete(s, t)));
        del_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.total_cmp(b));
        xs[xs.len() / 2]
    };
    let update_add_ms = median(&mut add_ms);
    let update_del_ms = median(&mut del_ms);
    // The update patches the sparse view in place, so the rebuild it is
    // measured against must pay for re-sparsifying too — the same pair of
    // steps a server runs on RELOAD.
    let t0 = Instant::now();
    black_box(hcl_core::SparseView::build(&g, oracle.labelling().highway()));
    let rebuild_ms = build_secs * 1e3 + t0.elapsed().as_secs_f64() * 1e3;
    let update_speedup = rebuild_ms / update_add_ms.max(update_del_ms).max(1e-9);

    let view = oracle.sparse_view();
    let json = format!(
        "{{\n  \"bench\": \"query\",\n  \"mode\": \"{}\",\n  \"git_rev\": \"{}\",\n  \
         \"nproc\": {},\n  \"vertices\": {},\n  \
         \"edges\": {},\n  \"landmarks\": {},\n  \"queries\": {},\n  \
         \"build_seconds\": {:.3},\n  \"queries_per_sec_sequential\": {:.0},\n  \
         \"queries_per_sec_batched\": {:.0},\n  \"queries_per_sec_packed\": {:.0},\n  \
         \"upper_bound_exact_rate\": {:.4},\n  \
         \"merge_ns_per_query\": {:.0},\n  \"bfs_ns_per_query\": {:.0},\n  \
         \"avg_label_entries\": {:.2},\n  \"label_bytes_per_entry\": {:.3},\n  \
         \"index_bytes\": {},\n  \"sparse_view_bytes\": {},\n  \"sparse_view_edges\": {},\n  \
         \"graph_bytes\": {},\n  \"store_bytes\": {},\n  \"packed_index_bytes\": {},\n  \
         \"plain_index_bytes\": {},\n  \"packed_over_plain_ratio\": {:.4},\n  \
         \"reload_deserialise_ms\": {:.2},\n  \"reload_mmap_ms\": {:.3},\n  \
         \"reload_speedup\": {:.1},\n  \
         \"update_add_ms\": {:.3},\n  \"update_del_ms\": {:.3},\n  \
         \"rebuild_ms\": {:.1},\n  \"update_speedup\": {:.1}\n}}",
        if quick { "quick" } else { "full" },
        git_rev(),
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        g.num_vertices(),
        g.num_edges(),
        cfg.landmarks,
        pairs.len(),
        build_secs,
        seq_qps,
        batch_qps,
        packed_qps,
        ub_exact_rate,
        merge_ns_per_query,
        bfs_ns_per_query,
        labelling.labels().avg_label_size(),
        label_data_bytes as f64 / labelling.labels().total_entries().max(1) as f64,
        labelling.index_bytes(),
        view.memory_bytes(),
        view.num_edges(),
        g.memory_bytes(),
        store_bytes,
        packed_index_bytes,
        plain_index_bytes,
        packed_index_bytes as f64 / plain_index_bytes.max(1) as f64,
        reload_deser_secs * 1e3,
        reload_mmap_secs * 1e3,
        reload_deser_secs / reload_mmap_secs.max(1e-9),
        update_add_ms,
        update_del_ms,
        rebuild_ms,
        update_speedup,
    );
    println!("{json}");
    if let Some(path) = out {
        std::fs::write(&path, format!("{json}\n")).expect("writing BENCH_query.json");
        eprintln!("wrote {path}");
    }
}

/// The commit the numbers were measured at (`unknown` outside a git
/// checkout), so trajectory entries are comparable across PRs.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}
