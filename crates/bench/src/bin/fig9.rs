//! Regenerates Figure 9 (pair coverage ratios).
fn main() {
    hcl_bench::experiments::run_fig9();
}
