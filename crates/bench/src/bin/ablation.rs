//! Extra ablations: landmark strategies, Lemma 5.1, FD BP trees, HL-P scaling.
fn main() {
    hcl_bench::experiments::run_ablation();
}
