//! Replays the paper's 14-vertex worked example (Figures 2-5) and asserts
//! its numbers.
fn main() {
    hcl_bench::experiments::run_paper_example();
}
