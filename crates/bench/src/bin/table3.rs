//! Regenerates Table 3 (labelling sizes).
fn main() {
    hcl_bench::experiments::run_table3();
}
