//! Shared measurement utilities for the experiment binaries.

use hcl_core::landmarks::LandmarkStrategy;
use hcl_graph::{CsrGraph, DistanceOracle};
use hcl_workloads::datasets::{all_datasets, scale_from_env, DatasetSpec};
use std::time::{Duration, Instant};

/// A generated dataset stand-in ready for measurement.
pub struct PreparedDataset {
    /// The Table 1 row this graph stands in for.
    pub spec: DatasetSpec,
    /// The generated graph (largest connected component).
    pub graph: CsrGraph,
}

/// Generates every requested dataset at the `HCL_SCALE` scale.
/// `HCL_DATASETS=Skitter,Flickr` restricts the set.
pub fn prepare_datasets() -> Vec<PreparedDataset> {
    let scale = scale_from_env();
    let filter: Option<Vec<String>> = std::env::var("HCL_DATASETS")
        .ok()
        .map(|s| s.split(',').map(|x| x.trim().to_ascii_lowercase()).collect());
    all_datasets()
        .into_iter()
        .filter(|d| match &filter {
            Some(names) => names.iter().any(|n| n == &d.name.to_ascii_lowercase()),
            None => true,
        })
        .map(|spec| {
            let graph = spec.generate(scale);
            PreparedDataset { spec, graph }
        })
        .collect()
}

/// The paper's default landmark selection: top 20 by degree.
pub fn default_landmarks(g: &CsrGraph, k: usize) -> Vec<u32> {
    LandmarkStrategy::TopDegree(k).select(g)
}

/// Number of query pairs for fast methods (`HCL_QUERIES`, default 100,000 —
/// the paper's workload).
pub fn num_queries() -> usize {
    hcl_workloads::queries::queries_from_env(100_000)
}

/// Times a query batch; returns `(avg microseconds per query, checksum)`.
/// The checksum keeps the optimiser honest and doubles as a cross-method
/// agreement check.
pub fn time_queries(oracle: &mut dyn DistanceOracle, pairs: &[(u32, u32)]) -> (f64, u64) {
    let start = Instant::now();
    let mut checksum = 0u64;
    for &(s, t) in pairs {
        match oracle.distance(s, t) {
            Some(d) => checksum = checksum.wrapping_add(d as u64),
            None => checksum = checksum.wrapping_add(0xFFFF),
        }
    }
    let elapsed = start.elapsed();
    (elapsed.as_secs_f64() * 1e6 / pairs.len().max(1) as f64, checksum)
}

/// Feasibility gate for PLL (stands in for the paper's one-day DNF limit).
/// The default reproduces Table 2's DNF pattern at the stand-ins' scale:
/// PLL finishes the small social/computer networks and dies on the
/// million-edge ones.
pub fn pll_feasible(g: &CsrGraph) -> bool {
    let max_edges = env_usize("HCL_PLL_MAX_EDGES", 1_000_000);
    g.num_edges() <= max_edges
}

/// Feasibility gate for IS-Label. The default makes IS-L finish exactly
/// the three datasets it finishes in the paper (Skitter, Flickr,
/// LiveJournal).
pub fn isl_feasible(g: &CsrGraph) -> bool {
    let max_edges = env_usize("HCL_ISL_MAX_EDGES", 60_000);
    g.num_edges() <= max_edges
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Formats a construction time the way Table 2 does (seconds), or `DNF`.
pub fn fmt_ct(d: Option<Duration>) -> String {
    match d {
        Some(d) => {
            let s = d.as_secs_f64();
            if s < 0.01 {
                format!("{:.4}", s)
            } else {
                format!("{:.2}", s)
            }
        }
        None => "DNF".to_string(),
    }
}

/// Formats an average query time in milliseconds (Table 2's QT), or `-`.
pub fn fmt_qt(us: Option<f64>) -> String {
    match us {
        Some(us) => format!("{:.4}", us / 1000.0),
        None => "-".to_string(),
    }
}

/// Formats an index size, or `DNF`.
pub fn fmt_bytes(b: Option<usize>) -> String {
    match b {
        Some(b) => hcl_graph::stats::format_bytes(b),
        None => "DNF".to_string(),
    }
}

/// Formats an average label size, or `-`.
pub fn fmt_als(a: Option<f64>) -> String {
    match a {
        Some(a) => format!("{:.1}", a),
        None => "-".to_string(),
    }
}

/// Prints a markdown-style table: a header row then aligned data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!(" {:>width$} |", c, width = widths[i.min(widths.len() - 1)]));
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_baselines::BiBfsOracle;
    use hcl_graph::generate;

    #[test]
    fn query_timer_checksum_is_stable() {
        let g = generate::barabasi_albert(200, 3, 1);
        let pairs = hcl_workloads::queries::sample_pairs(200, 50, 3);
        let mut a = BiBfsOracle::new(&g);
        let mut b = BiBfsOracle::new(&g);
        let (_, ca) = time_queries(&mut a, &pairs);
        let (_, cb) = time_queries(&mut b, &pairs);
        assert_eq!(ca, cb);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ct(None), "DNF");
        assert_eq!(fmt_ct(Some(Duration::from_secs(2))), "2.00");
        assert_eq!(fmt_qt(Some(67.0)), "0.0670");
        assert_eq!(fmt_qt(None), "-");
        assert_eq!(fmt_als(Some(12.34)), "12.3");
    }

    #[test]
    fn gates_respect_env_defaults() {
        let small = generate::path(10);
        assert!(pll_feasible(&small));
        assert!(isl_feasible(&small));
    }

    #[test]
    fn default_landmarks_are_top_degree() {
        let g = generate::star(30);
        assert_eq!(default_landmarks(&g, 1), vec![0]);
    }
}
