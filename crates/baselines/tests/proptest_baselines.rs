//! Property tests: every baseline oracle is exact on arbitrary graphs, and
//! the bit-parallel masks match their set definitions.

use hcl_baselines::{
    bitparallel::BpTree, FdConfig, FdIndex, FdOracle, IslConfig, IslIndex, IslOracle, PllConfig,
    PllIndex,
};
use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{traversal, CsrGraph, INF};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..36).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..110)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

fn truth(g: &CsrGraph) -> Vec<Vec<u32>> {
    (0..g.num_vertices()).map(|v| traversal::bfs_distances(g, v as u32)).collect()
}

fn assert_exact(oracle: &mut dyn DistanceOracle, g: &CsrGraph, dist: &[Vec<u32>]) {
    for s in g.vertices() {
        for t in g.vertices() {
            let expect =
                (dist[s as usize][t as usize] != INF).then_some(dist[s as usize][t as usize]);
            assert_eq!(oracle.distance(s, t), expect, "{} {s}->{t}", oracle.name());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pll_exact_with_and_without_bp(g in arbitrary_graph()) {
        let dist = truth(&g);
        let (plain, _) =
            PllIndex::build(&g, PllConfig { num_bp_roots: 0, bp_neighbors: 0 }).unwrap();
        let mut plain = hcl_baselines::pll::PllOracle::new(plain);
        assert_exact(&mut plain, &g, &dist);
        let (bp, _) =
            PllIndex::build(&g, PllConfig { num_bp_roots: 3, bp_neighbors: 64 }).unwrap();
        let mut bp = hcl_baselines::pll::PllOracle::new(bp);
        assert_exact(&mut bp, &g, &dist);
    }

    #[test]
    fn fd_exact(g in arbitrary_graph()) {
        let dist = truth(&g);
        let (idx, _) = FdIndex::build(
            &g,
            FdConfig { num_landmarks: 5, num_bp_trees: 2, bp_neighbors: 64 },
        )
        .unwrap();
        let mut oracle = FdOracle::new(&g, idx);
        assert_exact(&mut oracle, &g, &dist);
    }

    #[test]
    fn isl_exact(g in arbitrary_graph()) {
        let dist = truth(&g);
        let (idx, _) =
            IslIndex::build(&g, IslConfig { levels: 4, max_is_degree: 8 }).unwrap();
        let mut oracle = IslOracle::new(idx);
        assert_exact(&mut oracle, &g, &dist);
    }

    #[test]
    fn bp_masks_match_definitions(g in arbitrary_graph()) {
        let root = hcl_graph::order::top_degree(&g, 1)[0];
        let tree = BpTree::build_top_neighbors(&g, root, 64);
        let root_dist = traversal::bfs_distances(&g, root);
        let dist = truth(&g);
        for v in g.vertices() {
            match tree.root_distance(v) {
                None => prop_assert_eq!(root_dist[v as usize], INF),
                Some(d) => prop_assert_eq!(d, root_dist[v as usize]),
            }
            for s in g.vertices() {
                // The bound must be admissible for every pair.
                let b = tree.bound(s, v);
                let d = dist[s as usize][v as usize];
                if d == INF {
                    // Bound may still be finite only if both endpoints are
                    // reachable from the root — impossible when s, v are in
                    // different components than each other but both touch
                    // the root's component; reachability from the root
                    // implies mutual reachability in an undirected graph.
                    prop_assert_eq!(b, u32::MAX);
                } else {
                    prop_assert!(b >= d, "bound {} < dist {} for {}->{}", b, d, s, v);
                }
            }
        }
    }
}
