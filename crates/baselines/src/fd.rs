//! The "FD" baseline \[15\] (Hayashi, Akiba, Kawarabayashi — CIKM 2016):
//! the hybrid method closest to the paper's own.
//!
//! FD keeps a *complete* shortest-path tree (distance array) for each of a
//! small landmark set `R` — every vertex stores all `|R|` distances, with no
//! pruning — plus bit-parallel trees rooted at the top landmarks. A query
//! takes `min_r d(s, r) + d(r, t)` as an upper bound (refined by the BP
//! masks) and finishes with a distance-bounded bidirectional BFS on `G∖R`,
//! the same online step the EDBT paper adopts.
//!
//! The contrast with the highway cover labelling is exactly the paper's
//! point: HL stores the *minimal* subset of these entries needed for the
//! highway-cover property (2–5× smaller in Table 3, and ~5× faster to build
//! in Table 2) while answering the same queries exactly. The original FD
//! also maintains its trees under edge insertions/deletions; the EDBT
//! evaluation (and therefore this reproduction) uses the static snapshot.

use crate::bitparallel::BpTree;
use crate::BaselineError;
use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{order, CsrGraph, SearchSpace, VertexId, INF};
use std::time::{Duration, Instant};

const UNREACHED16: u16 = u16::MAX;

/// Tuning knobs for FD construction.
#[derive(Clone, Copy, Debug)]
pub struct FdConfig {
    /// Landmark count (the EDBT paper runs FD with 20).
    pub num_landmarks: usize,
    /// How many of the landmarks also get a bit-parallel tree.
    pub num_bp_trees: usize,
    /// Neighbours covered per bit-parallel tree (<= 64).
    pub bp_neighbors: usize,
}

impl Default for FdConfig {
    fn default() -> Self {
        FdConfig { num_landmarks: 20, num_bp_trees: 4, bp_neighbors: 64 }
    }
}

/// The FD index: one full distance array per landmark plus optional
/// bit-parallel trees.
#[derive(Clone, Debug)]
pub struct FdIndex {
    landmarks: Vec<VertexId>,
    is_landmark: Vec<bool>,
    /// `spt[r][v] = d(landmark_r, v)`, `u16::MAX` when unreachable.
    spt: Vec<Vec<u16>>,
    bp: Vec<BpTree>,
    config: FdConfig,
}

impl FdIndex {
    /// Builds the index with top-degree landmarks.
    pub fn build(g: &CsrGraph, config: FdConfig) -> Result<(Self, Duration), BaselineError> {
        let landmarks = order::top_degree(g, config.num_landmarks);
        Self::build_with_landmarks(g, &landmarks, config)
    }

    /// Builds the index over an explicit landmark list.
    pub fn build_with_landmarks(
        g: &CsrGraph,
        landmarks: &[VertexId],
        config: FdConfig,
    ) -> Result<(Self, Duration), BaselineError> {
        let start = Instant::now();
        let n = g.num_vertices();
        let mut is_landmark = vec![false; n];
        for &r in landmarks {
            if (r as usize) >= n {
                return Err(BaselineError::VertexOutOfRange { vertex: r, n });
            }
            if std::mem::replace(&mut is_landmark[r as usize], true) {
                return Err(BaselineError::DuplicateVertex { vertex: r });
            }
        }
        let mut spt = Vec::with_capacity(landmarks.len());
        let mut dist_buf = Vec::new();
        for &r in landmarks {
            hcl_graph::traversal::bfs_distances_into(g, r, &mut dist_buf);
            let mut row = Vec::with_capacity(n);
            for (v, &d) in dist_buf.iter().enumerate() {
                if d == INF {
                    row.push(UNREACHED16);
                } else {
                    row.push(u16::try_from(d).map_err(|_| BaselineError::DistanceOverflow {
                        from: r,
                        to: v as u32,
                        distance: d,
                    })?);
                }
            }
            spt.push(row);
        }
        let bp = landmarks
            .iter()
            .take(config.num_bp_trees)
            .map(|&r| BpTree::build_top_neighbors(g, r, config.bp_neighbors.min(64)))
            .collect();
        Ok((
            FdIndex { landmarks: landmarks.to_vec(), is_landmark, spt, bp, config },
            start.elapsed(),
        ))
    }

    /// The landmark list.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Whether `v` is a landmark.
    #[inline]
    pub fn is_landmark(&self, v: VertexId) -> bool {
        self.is_landmark[v as usize]
    }

    /// Rank of `v` in the landmark list, if any (linear scan — the list has
    /// ~20 entries).
    pub fn landmark_rank(&self, v: VertexId) -> Option<usize> {
        self.landmarks.iter().position(|&r| r == v)
    }

    /// Exact distance from the landmark with rank `rank` to `v`.
    #[inline]
    pub fn landmark_distance(&self, rank: usize, v: VertexId) -> Option<u32> {
        let d = self.spt[rank][v as usize];
        (d != UNREACHED16).then_some(d as u32)
    }

    /// Upper bound `min_r d(s, r) + d(r, t)`, refined by the bit-parallel
    /// masks; `INF` when no landmark reaches both endpoints.
    pub fn upper_bound(&self, s: VertexId, t: VertexId) -> u32 {
        let mut best = INF;
        for row in &self.spt {
            let (ds, dt) = (row[s as usize], row[t as usize]);
            if ds == UNREACHED16 || dt == UNREACHED16 {
                continue;
            }
            let cand = ds as u32 + dt as u32;
            if cand < best {
                best = cand;
            }
        }
        for tree in &self.bp {
            let cand = tree.bound(s, t);
            if cand < best {
                best = cand;
            }
        }
        best
    }

    /// Average label entries per vertex: every vertex stores all `|R|`
    /// distances (Table 2 reports this as "20+64": the landmark entries plus
    /// the 64 bit-parallel neighbour slots).
    pub fn avg_label_entries(&self) -> f64 {
        self.landmarks.len() as f64
    }

    /// Index bytes: `|R|` 16-bit distances per vertex plus the BP arrays.
    pub fn index_bytes(&self) -> usize {
        self.spt.iter().map(|row| row.len() * 2).sum::<usize>()
            + self.bp.iter().map(BpTree::memory_bytes).sum::<usize>()
    }

    /// Incrementally repairs the index after edge insertions — the
    /// operation that gives the original method its "fully dynamic" name
    /// (Hayashi et al. §4; the EDBT evaluation, and hence our tables, use
    /// the static snapshot).
    ///
    /// `new_graph` is the post-insertion graph and `inserted` the added
    /// edges. Each landmark's distance row is repaired by a partial BFS
    /// from the side of each new edge that got closer — `O(affected)`
    /// instead of `|R|` full BFS rebuilds. Distances only decrease under
    /// insertion, so repair is monotone and order-independent. Bit-parallel
    /// trees are rebuilt outright (their masks do not repair monotonically,
    /// and there are only a handful of them).
    ///
    /// Vertex count must be unchanged; grow-and-insert workloads should
    /// rebuild. Verified against full rebuilds in tests and usable through
    /// a fresh [`FdOracle`] over `new_graph`.
    pub fn apply_insertions(
        &mut self,
        new_graph: &CsrGraph,
        inserted: &[(VertexId, VertexId)],
    ) -> Result<(), BaselineError> {
        let n = new_graph.num_vertices();
        if self.is_landmark.len() != n {
            return Err(BaselineError::VertexOutOfRange {
                vertex: n as VertexId,
                n: self.is_landmark.len(),
            });
        }
        let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();
        for row in self.spt.iter_mut() {
            for &(a, b) in inserted {
                let (da, db) = (row[a as usize], row[b as usize]);
                // Seed the repair from whichever endpoint the new edge
                // brings closer to the landmark.
                let (seed, seed_dist) = if da != UNREACHED16 && (db == UNREACHED16 || da + 1 < db) {
                    (b, da + 1)
                } else if db != UNREACHED16 && (da == UNREACHED16 || db + 1 < da) {
                    (a, db + 1)
                } else {
                    continue;
                };
                row[seed as usize] = seed_dist;
                queue.push_back(seed);
                while let Some(u) = queue.pop_front() {
                    let du = row[u as usize];
                    for &v in new_graph.neighbors(u) {
                        if row[v as usize] == UNREACHED16 || du + 1 < row[v as usize] {
                            row[v as usize] = du + 1;
                            queue.push_back(v);
                        }
                    }
                }
            }
        }
        self.bp = self
            .landmarks
            .iter()
            .take(self.config.num_bp_trees)
            .map(|&r| BpTree::build_top_neighbors(new_graph, r, self.config.bp_neighbors.min(64)))
            .collect();
        Ok(())
    }
}

/// [`DistanceOracle`] over an [`FdIndex`]: bound + bounded bi-BFS on `G∖R`.
pub struct FdOracle<'g> {
    graph: &'g CsrGraph,
    index: FdIndex,
    space: SearchSpace,
}

impl<'g> FdOracle<'g> {
    /// Wraps an index built over `graph`.
    pub fn new(graph: &'g CsrGraph, index: FdIndex) -> Self {
        FdOracle { graph, index, space: SearchSpace::new(graph.num_vertices()) }
    }

    /// The wrapped index.
    pub fn index(&self) -> &FdIndex {
        &self.index
    }

    /// Exact distance via bound + bounded search.
    pub fn query(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        // Landmark endpoints are answered by their own tree, exactly.
        if let Some(rank) = self.index.landmark_rank(s) {
            return self.index.landmark_distance(rank, t);
        }
        if let Some(rank) = self.index.landmark_rank(t) {
            return self.index.landmark_distance(rank, s);
        }
        let bound = self.index.upper_bound(s, t);
        let index = &self.index;
        let d = self.space.bounded_bibfs(self.graph, s, t, bound, |v| index.is_landmark(v));
        (d != INF).then_some(d)
    }
}

impl DistanceOracle for FdOracle<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.query(s, t)
    }

    fn name(&self) -> &'static str {
        "FD"
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }

    fn avg_label_entries(&self) -> f64 {
        self.index.avg_label_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::{generate, traversal};

    #[test]
    fn exact_on_random_graphs_all_pairs() {
        for seed in 0..3u64 {
            let g = generate::barabasi_albert(100, 3, seed);
            let (idx, _) = FdIndex::build(&g, FdConfig::default()).unwrap();
            let mut oracle = FdOracle::new(&g, idx);
            for s in g.vertices().step_by(6) {
                let truth = traversal::bfs_distances(&g, s);
                for t in g.vertices() {
                    let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                    assert_eq!(oracle.query(s, t), expect, "seed {seed} {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn exact_without_bp_trees() {
        let g = generate::erdos_renyi(90, 200, 4);
        let cfg = FdConfig { num_landmarks: 10, num_bp_trees: 0, bp_neighbors: 0 };
        let (idx, _) = FdIndex::build(&g, cfg).unwrap();
        let mut oracle = FdOracle::new(&g, idx);
        for s in [0u32, 33, 89] {
            let truth = traversal::bfs_distances(&g, s);
            for t in g.vertices() {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(oracle.query(s, t), expect);
            }
        }
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (idx, _) = FdIndex::build_with_landmarks(&g, &[1, 4], FdConfig::default()).unwrap();
        let mut oracle = FdOracle::new(&g, idx);
        assert_eq!(oracle.query(0, 2), Some(2));
        assert_eq!(oracle.query(0, 5), None);
        assert_eq!(oracle.query(6, 1), None);
    }

    #[test]
    fn landmark_queries_answered_from_tree() {
        let g = generate::barabasi_albert(120, 4, 9);
        let (idx, _) = FdIndex::build(&g, FdConfig::default()).unwrap();
        let landmarks = idx.landmarks().to_vec();
        let mut oracle = FdOracle::new(&g, idx);
        for &r in &landmarks {
            let truth = traversal::bfs_distances(&g, r);
            for t in g.vertices().step_by(11) {
                assert_eq!(oracle.query(r, t), Some(truth[t as usize]));
            }
        }
    }

    #[test]
    fn upper_bound_is_admissible() {
        let g = generate::web_copying(150, 4, 0.2, 7);
        let (idx, _) = FdIndex::build(&g, FdConfig::default()).unwrap();
        let all: Vec<Vec<u32>> =
            (0..g.num_vertices()).map(|v| traversal::bfs_distances(&g, v as u32)).collect();
        for s in g.vertices().step_by(7) {
            for t in g.vertices().step_by(13) {
                let d = all[s as usize][t as usize];
                let ub = idx.upper_bound(s, t);
                if d == INF {
                    assert_eq!(ub, INF);
                } else {
                    assert!(ub >= d, "{s}->{t}: {ub} < {d}");
                }
            }
        }
    }

    #[test]
    fn size_accounting() {
        let g = generate::barabasi_albert(200, 3, 1);
        let (idx, _) = FdIndex::build(&g, FdConfig::default()).unwrap();
        assert_eq!(idx.avg_label_entries(), 20.0);
        // 20 landmark rows of u16 plus 4 BP trees.
        assert!(idx.index_bytes() >= 20 * 200 * 2);
        assert!(matches!(idx.landmark_rank(idx.landmarks()[3]), Some(3)));
    }

    #[test]
    fn rejects_bad_landmarks() {
        let g = generate::cycle(5);
        assert!(FdIndex::build_with_landmarks(&g, &[7], FdConfig::default()).is_err());
        assert!(FdIndex::build_with_landmarks(&g, &[1, 1], FdConfig::default()).is_err());
    }

    /// Applies `extra` edges on top of `base` and returns the new graph.
    fn with_edges(base: &CsrGraph, extra: &[(u32, u32)]) -> CsrGraph {
        let mut edges: Vec<(u32, u32)> = base.edges().collect();
        edges.extend_from_slice(extra);
        CsrGraph::from_edges(base.num_vertices(), &edges)
    }

    #[test]
    fn incremental_insertions_match_rebuild() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..3u64 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g0 = generate::barabasi_albert(200, 3, seed);
            let landmarks = hcl_graph::order::top_degree(&g0, 8);
            let cfg = FdConfig { num_landmarks: 8, num_bp_trees: 2, bp_neighbors: 64 };
            let (mut idx, _) = FdIndex::build_with_landmarks(&g0, &landmarks, cfg).unwrap();

            // Three batches of random insertions, repaired incrementally.
            let mut g = g0;
            for _ in 0..3 {
                let batch: Vec<(u32, u32)> = (0..10)
                    .map(|_| (rng.random_range(0..200), rng.random_range(0..200)))
                    .filter(|&(a, b)| a != b)
                    .collect();
                g = with_edges(&g, &batch);
                idx.apply_insertions(&g, &batch).unwrap();
                let (rebuilt, _) = FdIndex::build_with_landmarks(&g, &landmarks, cfg).unwrap();
                for rank in 0..landmarks.len() {
                    for v in g.vertices() {
                        assert_eq!(
                            idx.landmark_distance(rank, v),
                            rebuilt.landmark_distance(rank, v),
                            "seed {seed} rank {rank} vertex {v}"
                        );
                    }
                }
            }
            // And the repaired index answers queries exactly.
            let truth = traversal::bfs_distances(&g, 5);
            let mut oracle = FdOracle::new(&g, idx);
            for t in g.vertices() {
                assert_eq!(oracle.query(5, t), Some(truth[t as usize]));
            }
        }
    }

    #[test]
    fn insertion_connecting_components_repairs_reachability() {
        let g0 = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let cfg = FdConfig { num_landmarks: 2, num_bp_trees: 1, bp_neighbors: 8 };
        let (mut idx, _) = FdIndex::build_with_landmarks(&g0, &[1, 4], cfg).unwrap();
        assert_eq!(idx.landmark_distance(0, 5), None);
        let g1 = with_edges(&g0, &[(2, 3)]);
        idx.apply_insertions(&g1, &[(2, 3)]).unwrap();
        assert_eq!(idx.landmark_distance(0, 5), Some(4));
        let mut oracle = FdOracle::new(&g1, idx);
        assert_eq!(oracle.query(0, 5), Some(5));
    }

    #[test]
    fn insertion_rejects_vertex_count_change() {
        let g0 = generate::cycle(6);
        let (mut idx, _) = FdIndex::build(&g0, FdConfig::default()).unwrap();
        let bigger = generate::cycle(8);
        assert!(idx.apply_insertions(&bigger, &[(0, 7)]).is_err());
    }
}
