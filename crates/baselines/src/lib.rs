//! Baseline exact-distance methods the EDBT 2019 paper compares against.
//!
//! All baselines are re-implemented from their original papers (the authors'
//! C++ binaries are not redistributable) and verified against brute-force
//! BFS in the test suites:
//!
//! * [`online`] — Dijkstra \[27\], BFS, and bidirectional BFS \[21\]
//!   ("Bi-BFS"): index-free searches, the query-time floor of Figure 1(a).
//! * [`pll`] — *Pruned Landmark Labelling* (Akiba, Iwata, Yoshida —
//!   SIGMOD 2013) \[3\]: a full 2-hop cover built by pruned BFSs from every
//!   vertex in degree order, plus the bit-parallel labels of its §4.2.
//! * [`fd`] — the static query path of the *fully dynamic* hybrid method
//!   (Hayashi, Akiba, Kawarabayashi — CIKM 2016) \[15\]: complete
//!   shortest-path trees from ~20 landmarks (optionally bit-parallel) for
//!   upper bounds + bounded bidirectional BFS on `G∖R`.
//! * [`isl`] — *IS-Label* (Fu, Wu, Cheng, Wong — VLDB 2013) \[12\]: an
//!   independent-set hierarchy with distance-preserving shortcut edges;
//!   queries run upward Dijkstras from both endpoints and meet across the
//!   remaining core graph.
//! * [`bitparallel`] — the shared bit-parallel BFS (§5.1 of the EDBT paper)
//!   used by both PLL and FD: one BFS computes, for a root and up to 64 of
//!   its neighbours, every vertex's distance plus two 64-bit masks encoding
//!   which neighbours sit one step closer / at the same distance.

pub mod bitparallel;
pub mod fd;
pub mod isl;
pub mod online;
pub mod pll;

pub use fd::{FdConfig, FdIndex, FdOracle};
pub use isl::{IslConfig, IslIndex, IslOracle};
pub use online::{BfsOracle, BiBfsOracle, DijkstraOracle};
pub use pll::{PllConfig, PllIndex};

/// Errors produced while constructing baseline indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A requested root/landmark vertex is out of range.
    VertexOutOfRange { vertex: u32, n: usize },
    /// The same vertex appears twice in a landmark list.
    DuplicateVertex { vertex: u32 },
    /// A distance exceeded the index's 16-bit storage range.
    DistanceOverflow { from: u32, to: u32, distance: u32 },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            BaselineError::DuplicateVertex { vertex } => write!(f, "duplicate vertex {vertex}"),
            BaselineError::DistanceOverflow { from, to, distance } => {
                write!(f, "distance {distance} from {from} to {to} exceeds 16-bit storage")
            }
        }
    }
}

impl std::error::Error for BaselineError {}
