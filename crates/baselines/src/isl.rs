//! IS-Label (Fu, Wu, Cheng, Wong — VLDB 2013), the paper's "IS-L"
//! baseline \[12\].
//!
//! Construction peels `k` *independent sets* off the graph. When a vertex
//! `v` is removed in round `i`, distance-preserving *augmenting edges*
//! (shortcuts) `a–b` with weight `w(a,v) + w(v,b)` are added between all of
//! `v`'s surviving neighbours, so the remaining graph `G_i` preserves every
//! pairwise distance. Each removed vertex keeps its adjacency *at removal
//! time* as its label; because an independent set is removed at once, every
//! such edge points to a strictly higher level (a later round or the final
//! core graph `G_k`).
//!
//! Any shortest path then has a *valley-free* lift: levels rise to a peak
//! and fall. A query therefore runs an **upward** Dijkstra from `s` that may
//! also roam the core, an upward-only Dijkstra from `t`, and takes the best
//! meeting vertex. This is the "hybrid labelling + traversal" behaviour the
//! EDBT paper describes; its cost — the peeled hierarchy keeps fattening
//! with shortcuts and the core stays large — is why IS-L DNFs on 9 of the
//! 12 paper datasets (Table 2), a shape our benchmarks reproduce at reduced
//! scale.

use crate::BaselineError;
use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{CsrGraph, VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Level assigned to vertices that survive all peeling rounds.
const CORE_LEVEL: u32 = u32::MAX;

/// Tuning knobs for IS-Label construction.
#[derive(Clone, Copy, Debug)]
pub struct IslConfig {
    /// Number of peeling rounds `k` (the EDBT paper runs the authors' code
    /// with k = 6 on graphs above one million vertices).
    pub levels: usize,
    /// Maximum current degree for a vertex to enter the independent set;
    /// caps the quadratic shortcut blow-up per removal.
    pub max_is_degree: usize,
}

impl Default for IslConfig {
    fn default() -> Self {
        IslConfig { levels: 6, max_is_degree: 24 }
    }
}

/// The IS-Label hierarchy: per-vertex levels, each removed vertex's upward
/// adjacency (its label), and the core graph reached after `k` rounds, all
/// in one CSR over the original vertex ids.
#[derive(Clone, Debug)]
pub struct IslIndex {
    level: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<VertexId>,
    weights: Vec<u32>,
    core_size: usize,
    removed_entries: usize,
}

impl IslIndex {
    /// Peels `config.levels` independent sets off `g` and assembles the
    /// hierarchy.
    pub fn build(g: &CsrGraph, config: IslConfig) -> Result<(Self, Duration), BaselineError> {
        let start = Instant::now();
        let n = g.num_vertices();
        // Dynamic weighted adjacency; entries mirror both directions.
        let mut adj: Vec<Vec<(VertexId, u32)>> = (0..n as VertexId)
            .map(|v| g.neighbors(v).iter().map(|&u| (u, 1u32)).collect())
            .collect();
        let mut level = vec![CORE_LEVEL; n];
        // Labels: adjacency snapshot of each removed vertex.
        let mut snapshots: Vec<Vec<(VertexId, u32)>> = vec![Vec::new(); n];

        let mut blocked = vec![0u32; n];
        for round in 1..=config.levels as u32 {
            // Greedy low-degree-first independent set among surviving
            // vertices.
            let mut order: Vec<VertexId> =
                (0..n as VertexId).filter(|&v| level[v as usize] == CORE_LEVEL).collect();
            if order.is_empty() {
                break;
            }
            order.sort_by_key(|&v| (adj[v as usize].len(), v));
            let mut selected: Vec<VertexId> = Vec::new();
            for &v in &order {
                if blocked[v as usize] == round || adj[v as usize].len() > config.max_is_degree {
                    continue;
                }
                selected.push(v);
                for &(u, _) in &adj[v as usize] {
                    blocked[u as usize] = round;
                }
                // A selected vertex must not be selected again nor block
                // itself; marking it blocked covers both.
                blocked[v as usize] = round;
            }
            if selected.is_empty() {
                break;
            }
            for &v in &selected {
                level[v as usize] = round;
                let snapshot = std::mem::take(&mut adj[v as usize]);
                // Drop v from its neighbours and connect them pairwise.
                for &(a, _) in &snapshot {
                    adj[a as usize].retain(|&(u, _)| u != v);
                }
                for i in 0..snapshot.len() {
                    let (a, wa) = snapshot[i];
                    for &(b, wb) in &snapshot[i + 1..] {
                        add_or_min(&mut adj[a as usize], b, wa + wb);
                        add_or_min(&mut adj[b as usize], a, wa + wb);
                    }
                }
                snapshots[v as usize] = snapshot;
            }
        }

        // Core vertices keep their final adjacency as their search edges.
        let mut core_size = 0usize;
        let mut removed_entries = 0usize;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        for v in 0..n {
            let list = if level[v] == CORE_LEVEL {
                core_size += 1;
                &adj[v]
            } else {
                removed_entries += snapshots[v].len();
                &snapshots[v]
            };
            for &(u, w) in list {
                targets.push(u);
                weights.push(w);
            }
            offsets.push(targets.len() as u32);
        }

        Ok((
            IslIndex { level, offsets, targets, weights, core_size, removed_entries },
            start.elapsed(),
        ))
    }

    /// Peeling level of `v` (`None` for core vertices).
    pub fn removal_level(&self, v: VertexId) -> Option<u32> {
        let l = self.level[v as usize];
        (l != CORE_LEVEL).then_some(l)
    }

    /// Number of vertices remaining in the core graph.
    pub fn core_size(&self) -> usize {
        self.core_size
    }

    /// Average label entries per *removed* vertex plus core adjacency,
    /// normalised per vertex (Table 2's ALS column for IS-L).
    pub fn avg_label_entries(&self) -> f64 {
        let n = self.level.len();
        if n == 0 {
            0.0
        } else {
            self.targets.len() as f64 / n as f64
        }
    }

    /// Label entries attached to removed vertices.
    pub fn removed_entries(&self) -> usize {
        self.removed_entries
    }

    /// Index size in bytes (levels + CSR arrays).
    pub fn index_bytes(&self) -> usize {
        self.level.len() * 4
            + self.offsets.len() * 4
            + self.targets.len() * 4
            + self.weights.len() * 4
    }

    #[inline]
    fn edges(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let v = v as usize;
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        self.targets[range.clone()].iter().copied().zip(self.weights[range].iter().copied())
    }

    #[inline]
    fn is_core(&self, v: VertexId) -> bool {
        self.level[v as usize] == CORE_LEVEL
    }
}

fn add_or_min(list: &mut Vec<(VertexId, u32)>, target: VertexId, w: u32) {
    for entry in list.iter_mut() {
        if entry.0 == target {
            if w < entry.1 {
                entry.1 = w;
            }
            return;
        }
    }
    list.push((target, w));
}

/// [`DistanceOracle`] over an [`IslIndex`]: two upward Dijkstras meeting
/// over the core.
pub struct IslOracle {
    index: IslIndex,
    epoch: u32,
    mark_s: Vec<u32>,
    mark_t: Vec<u32>,
    dist_s: Vec<u32>,
    dist_t: Vec<u32>,
    touched_t: Vec<VertexId>,
}

impl IslOracle {
    /// Wraps a built hierarchy.
    pub fn new(index: IslIndex) -> Self {
        let n = index.level.len();
        IslOracle {
            index,
            epoch: 0,
            mark_s: vec![0; n],
            mark_t: vec![0; n],
            dist_s: vec![0; n],
            dist_t: vec![0; n],
            touched_t: Vec::new(),
        }
    }

    /// The wrapped index.
    pub fn index(&self) -> &IslIndex {
        &self.index
    }

    /// Exact distance between `s` and `t`.
    pub fn query(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        self.epoch += 1;
        let epoch = self.epoch;

        // t-side: upward-only Dijkstra (stops at core vertices).
        self.touched_t.clear();
        let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
        self.dist_t[t as usize] = 0;
        self.mark_t[t as usize] = epoch;
        self.touched_t.push(t);
        heap.push(Reverse((0, t)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > self.dist_t[u as usize] {
                continue;
            }
            if self.index.is_core(u) {
                continue; // core edges belong to the s-side search
            }
            for (v, w) in self.index.edges(u) {
                let nd = d + w;
                if self.mark_t[v as usize] != epoch || nd < self.dist_t[v as usize] {
                    if self.mark_t[v as usize] != epoch {
                        self.touched_t.push(v);
                    }
                    self.mark_t[v as usize] = epoch;
                    self.dist_t[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }

        // s-side: upward Dijkstra that also traverses the core; every
        // settled vertex is checked against the t-side cloud.
        let mut best = INF;
        let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
        self.dist_s[s as usize] = 0;
        self.mark_s[s as usize] = epoch;
        heap.push(Reverse((0, s)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > self.dist_s[u as usize] {
                continue;
            }
            if d >= best {
                continue; // cannot improve the meeting point
            }
            if self.mark_t[u as usize] == epoch {
                let cand = d + self.dist_t[u as usize];
                if cand < best {
                    best = cand;
                }
            }
            for (v, w) in self.index.edges(u) {
                let nd = d + w;
                if self.mark_s[v as usize] != epoch || nd < self.dist_s[v as usize] {
                    self.mark_s[v as usize] = epoch;
                    self.dist_s[v as usize] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        (best != INF).then_some(best)
    }
}

impl DistanceOracle for IslOracle {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.query(s, t)
    }

    fn name(&self) -> &'static str {
        "IS-L"
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }

    fn avg_label_entries(&self) -> f64 {
        self.index.avg_label_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::{generate, traversal};

    fn check_exact(g: &CsrGraph, config: IslConfig, sources: &[u32]) {
        let (idx, _) = IslIndex::build(g, config).unwrap();
        let mut oracle = IslOracle::new(idx);
        for &s in sources {
            let truth = traversal::bfs_distances(g, s);
            for t in g.vertices() {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(oracle.query(s, t), expect, "{s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generate::erdos_renyi(80, 160, seed);
            check_exact(&g, IslConfig::default(), &[0, 11, 42, 79]);
        }
        let g = generate::barabasi_albert(100, 3, 5);
        check_exact(&g, IslConfig::default(), &[0, 50, 99]);
    }

    #[test]
    fn exact_on_structured_graphs() {
        check_exact(&generate::grid(7, 8), IslConfig::default(), &[0, 27, 55]);
        check_exact(&generate::cycle(30), IslConfig::default(), &[0, 7]);
        check_exact(&generate::path(25), IslConfig::default(), &[0, 12, 24]);
        check_exact(&generate::star(20), IslConfig::default(), &[0, 5]);
    }

    #[test]
    fn exact_with_deep_hierarchy() {
        // Enough levels to peel everything: the core empties and queries
        // must still meet below it.
        let g = generate::random_tree(60, 3);
        check_exact(&g, IslConfig { levels: 50, max_is_degree: 64 }, &[0, 30, 59]);
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (idx, _) = IslIndex::build(&g, IslConfig::default()).unwrap();
        let mut oracle = IslOracle::new(idx);
        assert_eq!(oracle.query(0, 2), Some(2));
        assert_eq!(oracle.query(0, 3), None);
        assert_eq!(oracle.query(5, 5), Some(0));
    }

    #[test]
    fn peeling_shrinks_the_core() {
        let g = generate::barabasi_albert(300, 3, 7);
        let (idx, _) = IslIndex::build(&g, IslConfig::default()).unwrap();
        assert!(idx.core_size() < 300 / 2, "core {} of 300", idx.core_size());
        assert!(idx.removed_entries() > 0);
        assert!(idx.avg_label_entries() > 0.0);
        // Levels are 1..=k or core.
        for v in g.vertices() {
            if let Some(l) = idx.removal_level(v) {
                assert!((1..=6).contains(&l));
            }
        }
    }

    #[test]
    fn upward_edges_point_to_higher_levels() {
        let g = generate::erdos_renyi(120, 300, 9);
        let (idx, _) = IslIndex::build(&g, IslConfig::default()).unwrap();
        for v in g.vertices() {
            if let Some(lv) = idx.removal_level(v) {
                for (u, _) in idx.edges(v) {
                    let lu = idx.level[u as usize];
                    assert!(lu > lv, "edge {v}(level {lv}) -> {u}(level {lu}) not upward");
                }
            } else {
                for (u, _) in idx.edges(v) {
                    assert!(idx.is_core(u), "core vertex {v} linked to removed {u}");
                }
            }
        }
    }

    #[test]
    fn oracle_metadata() {
        let g = generate::barabasi_albert(80, 3, 2);
        let (idx, _) = IslIndex::build(&g, IslConfig::default()).unwrap();
        let mut oracle = IslOracle::new(idx);
        assert_eq!(oracle.name(), "IS-L");
        assert!(oracle.index_bytes() > 0);
        assert_eq!(DistanceOracle::distance(&mut oracle, 2, 2), Some(0));
    }
}
