//! Bit-parallel BFS (the "BP" technique of §5.1, after Akiba et al. §4.2).
//!
//! One BFS from a root `r` simultaneously computes, for up to 64 selected
//! neighbours `S ⊆ N(r)`, enough information to bound distances through any
//! member of `S`: for every vertex `v`,
//!
//! * `dist(v) = d(r, v)`,
//! * `s_minus(v)` — the mask of `u ∈ S` with `d(u, v) = d(r, v) - 1`,
//! * `s_zero(v)`  — the mask of `u ∈ S` with `d(u, v) = d(r, v)`.
//!
//! (Every `u ∈ S` satisfies `|d(u, v) - d(r, v)| <= 1` because `u` is a
//! neighbour of `r`.) A query `(s, t)` then gets the upper bound
//! `dist(s) + dist(t)` improved by `-2` when the two `s_minus` masks
//! intersect and by `-1` when a `s_minus` mask meets the other side's
//! `s_zero` — one `u64` AND instead of 64 BFSs, which is why both PLL and
//! FD lean on it.
//!
//! The masks satisfy the level recurrences
//! `S₋₁(v) = ∪ parents S₋₁ ∪ {v if v ∈ S}` and
//! `S₀(v) = (∪ parents S₀ ∪ ∪ same-level neighbours S₋₁) ∖ S₋₁(v)`,
//! computed level-synchronously in two phases so same-level masks are final
//! before they are read.

use hcl_graph::{CsrGraph, VertexId};

/// Sentinel for unreachable vertices in the 16-bit distance array.
pub const BP_UNREACHED: u16 = u16::MAX;

/// One bit-parallel shortest-path tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BpTree {
    root: VertexId,
    /// Selected neighbours of the root, at most 64 (mask bit `i` ↔
    /// `selected[i]`).
    selected: Vec<VertexId>,
    dist: Vec<u16>,
    s_minus: Vec<u64>,
    s_zero: Vec<u64>,
}

impl BpTree {
    /// Runs the bit-parallel BFS from `root` over the up-to-64 neighbours in
    /// `selected` (callers usually pass the highest-degree neighbours).
    pub fn build(g: &CsrGraph, root: VertexId, selected: &[VertexId]) -> Self {
        assert!(selected.len() <= 64, "at most 64 bit-parallel neighbours");
        debug_assert!(selected.iter().all(|&u| g.neighbors(root).contains(&u)));
        let n = g.num_vertices();
        let mut dist = vec![BP_UNREACHED; n];
        let mut s_minus = vec![0u64; n];
        let mut s_zero = vec![0u64; n];

        dist[root as usize] = 0;
        let mut frontier: Vec<VertexId> = vec![root];
        // Seed S at level 1: each selected neighbour is its own witness.
        let mut next: Vec<VertexId> = Vec::with_capacity(selected.len());
        for (i, &u) in selected.iter().enumerate() {
            dist[u as usize] = 1;
            s_minus[u as usize] = 1u64 << i;
            next.push(u);
        }

        let mut level: u16 = 0;
        while !frontier.is_empty() {
            let next_level = level + 1;
            // Phase 1: discover the next level and propagate S₋₁ downward.
            for &u in frontier.iter() {
                let mu = s_minus[u as usize];
                for &v in g.neighbors(u) {
                    let vi = v as usize;
                    if dist[vi] == BP_UNREACHED {
                        dist[vi] = next_level;
                        next.push(v);
                        s_minus[vi] |= mu;
                    } else if dist[vi] == next_level {
                        s_minus[vi] |= mu;
                    }
                }
            }
            // Phase 2: with next-level S₋₁ final, compute its S₀ from
            // parent S₀ and same-level S₋₁.
            for &v in next.iter() {
                let vi = v as usize;
                let mut zero = 0u64;
                for &w in g.neighbors(v) {
                    let wi = w as usize;
                    if dist[wi] == level {
                        zero |= s_zero[wi];
                    } else if dist[wi] == next_level {
                        zero |= s_minus[wi];
                    }
                }
                s_zero[vi] = zero & !s_minus[vi];
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            level = next_level;
        }

        BpTree { root, selected: selected.to_vec(), dist, s_minus, s_zero }
    }

    /// Builds a tree selecting the root's `k` highest-degree neighbours
    /// (`k <= 64`).
    pub fn build_top_neighbors(g: &CsrGraph, root: VertexId, k: usize) -> Self {
        let mut nbrs: Vec<VertexId> = g.neighbors(root).to_vec();
        nbrs.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        nbrs.truncate(k.min(64));
        Self::build(g, root, &nbrs)
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The selected neighbour set `S`.
    pub fn selected(&self) -> &[VertexId] {
        &self.selected
    }

    /// Exact distance from the root to `v` (`None` if unreachable).
    pub fn root_distance(&self, v: VertexId) -> Option<u32> {
        let d = self.dist[v as usize];
        (d != BP_UNREACHED).then_some(d as u32)
    }

    /// Upper bound on `d(s, t)` through the root or any selected neighbour.
    /// `u32::MAX` when either endpoint is unreachable from the root.
    #[inline]
    pub fn bound(&self, s: VertexId, t: VertexId) -> u32 {
        let ds = self.dist[s as usize];
        let dt = self.dist[t as usize];
        if ds == BP_UNREACHED || dt == BP_UNREACHED {
            return u32::MAX;
        }
        let base = ds as u32 + dt as u32;
        let (ms, mt) = (self.s_minus[s as usize], self.s_minus[t as usize]);
        if ms & mt != 0 {
            base - 2
        } else if ms & self.s_zero[t as usize] != 0 || self.s_zero[s as usize] & mt != 0 {
            base - 1
        } else {
            base
        }
    }

    /// Bytes used by this tree (distance + two mask arrays).
    pub fn memory_bytes(&self) -> usize {
        self.dist.len() * 2 + self.s_minus.len() * 8 + self.s_zero.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::{generate, traversal, INF};

    /// Brute-force reference for the masks.
    fn check_tree(g: &CsrGraph, tree: &BpTree) {
        let root_dist = traversal::bfs_distances(g, tree.root());
        let sel_dist: Vec<Vec<u32>> =
            tree.selected().iter().map(|&u| traversal::bfs_distances(g, u)).collect();
        for v in g.vertices() {
            let vi = v as usize;
            match tree.root_distance(v) {
                None => assert_eq!(root_dist[vi], INF),
                Some(d) => assert_eq!(d, root_dist[vi]),
            }
            for (i, sd) in sel_dist.iter().enumerate() {
                let bit = 1u64 << i;
                let expect_minus =
                    root_dist[vi] != INF && sd[vi] != INF && sd[vi] + 1 == root_dist[vi];
                let expect_zero = root_dist[vi] != INF && sd[vi] != INF && sd[vi] == root_dist[vi];
                assert_eq!(
                    tree.s_minus[vi] & bit != 0,
                    expect_minus,
                    "s_minus bit {i} at vertex {v}"
                );
                assert_eq!(tree.s_zero[vi] & bit != 0, expect_zero, "s_zero bit {i} at vertex {v}");
            }
        }
    }

    #[test]
    fn masks_match_brute_force_on_random_graphs() {
        for seed in 0..6u64 {
            let g = generate::erdos_renyi(70, 160, seed);
            let root = hcl_graph::order::top_degree(&g, 1)[0];
            let tree = BpTree::build_top_neighbors(&g, root, 64);
            check_tree(&g, &tree);
        }
    }

    #[test]
    fn masks_on_structured_graphs() {
        for g in [generate::grid(6, 7), generate::cycle(9), generate::star(12)] {
            let tree = BpTree::build_top_neighbors(&g, 0, 8);
            check_tree(&g, &tree);
        }
    }

    #[test]
    fn bound_is_admissible_and_reaches_exact_via_selected() {
        let g = generate::barabasi_albert(100, 3, 3);
        let root = hcl_graph::order::top_degree(&g, 1)[0];
        let tree = BpTree::build_top_neighbors(&g, root, 64);
        let all: Vec<Vec<u32>> =
            (0..g.num_vertices()).map(|v| traversal::bfs_distances(&g, v as u32)).collect();
        for s in g.vertices().step_by(3) {
            for t in g.vertices().step_by(5) {
                let b = tree.bound(s, t);
                let d = all[s as usize][t as usize];
                assert!(b >= d, "admissible {s}->{t}: bound {b} < true {d}");
                // If a shortest path passes through the root or a selected
                // neighbour, the bound must be exact.
                let through = std::iter::once(tree.root())
                    .chain(tree.selected().iter().copied())
                    .any(|u| all[s as usize][u as usize] + all[u as usize][t as usize] == d);
                if through {
                    assert_eq!(b, d, "tight through S at {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn unreachable_vertices() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let tree = BpTree::build_top_neighbors(&g, 1, 64);
        assert_eq!(tree.root_distance(3), None);
        assert_eq!(tree.bound(0, 3), u32::MAX);
        assert_eq!(tree.bound(0, 2), 2);
    }

    #[test]
    fn empty_selection_still_gives_root_bounds() {
        let g = generate::cycle(8);
        let tree = BpTree::build(&g, 0, &[]);
        assert_eq!(tree.bound(1, 7), 2); // through the root
        assert_eq!(tree.root_distance(4), Some(4));
    }
}
