//! Pruned Landmark Labelling (Akiba, Iwata, Yoshida — SIGMOD 2013), the
//! paper's "PLL" baseline \[3\].
//!
//! PLL builds a full 2-hop cover: a pruned BFS is run from *every* vertex in
//! decreasing-degree order, and a vertex `u` visited at distance `d` from
//! root `v_k` is labelled `(v_k, d)` unless the partial index built so far
//! already proves `d(v_k, u) <= d`, in which case the whole subtree is
//! pruned. Queries are pure label merges — no graph traversal — which makes
//! PLL the query-time gold standard but also the reason its index dwarfs the
//! highway cover labelling (Table 3) and its construction DNFs on half the
//! paper's datasets (Table 2).
//!
//! The first [`PllConfig::num_bp_roots`] vertices in the order become
//! *bit-parallel* roots (§4.2 of the PLL paper, §5.1 of the EDBT paper):
//! they get a [`BpTree`] each instead of normal labels, covering the root
//! and up to 64 of its neighbours with two `u64` masks per vertex.
//!
//! Unlike the highway cover labelling, the result is **order-dependent**:
//! Figure 4 of the EDBT paper shows the same three landmarks producing
//! labellings of size 25 or 30 depending on the order, which
//! [`PllIndex::build_with_order`] reproduces in this crate's tests.

use crate::bitparallel::BpTree;
use crate::BaselineError;
use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{order, CsrGraph, VertexId, INF};
use std::time::{Duration, Instant};

const UNSET16: u16 = u16::MAX;

/// Tuning knobs for PLL construction.
#[derive(Clone, Copy, Debug)]
pub struct PllConfig {
    /// Number of bit-parallel roots (the EDBT paper runs the authors' code
    /// with 50).
    pub num_bp_roots: usize,
    /// Neighbours covered per bit-parallel root (<= 64).
    pub bp_neighbors: usize,
}

impl Default for PllConfig {
    fn default() -> Self {
        PllConfig { num_bp_roots: 16, bp_neighbors: 64 }
    }
}

/// Construction statistics (the "LS"/"ET" counters of Figures 3–4).
#[derive(Clone, Copy, Debug, Default)]
pub struct PllStats {
    /// Wall-clock construction time.
    pub duration: Duration,
    /// Neighbour examinations across all pruned BFSs.
    pub edges_traversed: u64,
    /// Label entries created.
    pub labels_added: u64,
}

/// A pruned landmark labelling index.
#[derive(Clone, Debug)]
pub struct PllIndex {
    /// BFS roots in processing order (`rank -> vertex`).
    roots: Vec<VertexId>,
    offsets: Vec<u32>,
    /// Hub ranks per vertex, ascending (so two labels merge in one pass).
    hubs: Vec<u32>,
    dists: Vec<u16>,
    bp: Vec<BpTree>,
    complete: bool,
}

impl PllIndex {
    /// Builds the full, exact index: every vertex is processed in
    /// decreasing-degree order (ties by id), as in the original paper.
    pub fn build(g: &CsrGraph, config: PllConfig) -> Result<(Self, PllStats), BaselineError> {
        let ord = order::degree_descending(g);
        Self::build_inner(g, &ord, config, true)
    }

    /// Builds a *partial* labelling from an explicit root order — the
    /// Figure 4 experiment (pruned BFSs from a handful of landmarks in a
    /// given order). Queries on a partial index are upper bounds only, so
    /// [`PllIndex::query`] is exact only for [`build`](Self::build).
    pub fn build_with_order(
        g: &CsrGraph,
        root_order: &[VertexId],
        config: PllConfig,
    ) -> Result<(Self, PllStats), BaselineError> {
        let n = g.num_vertices();
        let mut seen = vec![false; n];
        for &v in root_order {
            if (v as usize) >= n {
                return Err(BaselineError::VertexOutOfRange { vertex: v, n });
            }
            if std::mem::replace(&mut seen[v as usize], true) {
                return Err(BaselineError::DuplicateVertex { vertex: v });
            }
        }
        Self::build_inner(g, root_order, config, root_order.len() == n)
    }

    fn build_inner(
        g: &CsrGraph,
        root_order: &[VertexId],
        config: PllConfig,
        complete: bool,
    ) -> Result<(Self, PllStats), BaselineError> {
        let start = Instant::now();
        let n = g.num_vertices();
        let mut stats = PllStats::default();

        // Bit-parallel roots: the first vertices of the order.
        let num_bp = config.num_bp_roots.min(root_order.len());
        let mut used = vec![false; n];
        let mut bp = Vec::with_capacity(num_bp);
        for &root in &root_order[..num_bp] {
            let tree = BpTree::build_top_neighbors(g, root, config.bp_neighbors.min(64));
            stats.edges_traversed += 2 * g.num_edges() as u64; // full sweep
            used[root as usize] = true;
            bp.push(tree);
        }

        // Normal pruned BFSs.
        let mut labels: Vec<Vec<(u32, u16)>> = vec![Vec::new(); n];
        // Hub-rank-indexed distances of the current root's label, O(1) prune
        // lookups; reset sparsely after each BFS.
        let mut root_lookup = vec![UNSET16; root_order.len() + 1];
        let mut visited = vec![0u32; n];
        let mut epoch = 0u32;
        let mut frontier: Vec<VertexId> = Vec::new();
        let mut next: Vec<VertexId> = Vec::new();

        for (k, &root) in root_order.iter().enumerate() {
            if used[root as usize] {
                continue;
            }
            epoch += 1;
            let rank = k as u32;
            for &(h, d) in &labels[root as usize] {
                root_lookup[h as usize] = d;
            }
            root_lookup[k] = 0;

            frontier.clear();
            frontier.push(root);
            visited[root as usize] = epoch;
            let mut d: u32 = 0;
            while !frontier.is_empty() {
                next.clear();
                for &u in frontier.iter() {
                    // Prune test: does the index built so far already prove
                    // d(root, u) <= d?
                    let mut pruned = false;
                    for tree in &bp {
                        if tree.bound(root, u) <= d {
                            pruned = true;
                            break;
                        }
                    }
                    if !pruned {
                        for &(h, dh) in &labels[u as usize] {
                            let dr = root_lookup[h as usize];
                            if dr != UNSET16 && dr as u32 + dh as u32 <= d {
                                pruned = true;
                                break;
                            }
                        }
                    }
                    if pruned {
                        continue;
                    }
                    let d16 = u16::try_from(d).map_err(|_| BaselineError::DistanceOverflow {
                        from: root,
                        to: u,
                        distance: d,
                    })?;
                    labels[u as usize].push((rank, d16));
                    stats.labels_added += 1;
                    for &v in g.neighbors(u) {
                        stats.edges_traversed += 1;
                        if visited[v as usize] != epoch {
                            visited[v as usize] = epoch;
                            next.push(v);
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
                d += 1;
            }

            for &(h, _) in &labels[root as usize] {
                root_lookup[h as usize] = UNSET16;
            }
            root_lookup[k] = UNSET16;
        }

        // Flatten into CSR arrays (per-vertex lists are already
        // rank-ascending because roots were processed in rank order).
        let total: usize = labels.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut hubs = Vec::with_capacity(total);
        let mut dists = Vec::with_capacity(total);
        offsets.push(0u32);
        for l in &labels {
            for &(h, dd) in l {
                hubs.push(h);
                dists.push(dd);
            }
            offsets.push(hubs.len() as u32);
        }

        stats.duration = start.elapsed();
        Ok((PllIndex { roots: root_order.to_vec(), offsets, hubs, dists, bp, complete }, stats))
    }

    /// Whether this index was built over every vertex (exact queries).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Distance between `s` and `t` from the index alone. Exact for
    /// complete builds; an upper bound (possibly `None`) for partial ones.
    pub fn query(&self, s: VertexId, t: VertexId) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let mut best = INF;
        for tree in &self.bp {
            let b = tree.bound(s, t);
            if b < best {
                best = b;
            }
        }
        let (ls, ld) = self.label(s);
        let (ts, td) = self.label(t);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ls.len() && j < ts.len() {
            match ls[i].cmp(&ts[j]) {
                std::cmp::Ordering::Equal => {
                    let cand = ld[i] as u32 + td[j] as u32;
                    if cand < best {
                        best = cand;
                    }
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
            }
        }
        (best != INF).then_some(best)
    }

    fn label(&self, v: VertexId) -> (&[u32], &[u16]) {
        let v = v as usize;
        let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
        (&self.hubs[range.clone()], &self.dists[range])
    }

    /// Label of `v` as `(root vertex, distance)` pairs (for inspection and
    /// the Figure 4 reproduction).
    pub fn label_of(&self, v: VertexId) -> Vec<(VertexId, u32)> {
        let (hubs, dists) = self.label(v);
        hubs.iter().zip(dists).map(|(&h, &d)| (self.roots[h as usize], d as u32)).collect()
    }

    /// Total normal label entries (the "LS" counter of Figure 4).
    pub fn total_entries(&self) -> usize {
        self.hubs.len()
    }

    /// Average normal entries per vertex (Table 2's ALS, first addend).
    pub fn avg_label_size(&self) -> f64 {
        let n = self.offsets.len() - 1;
        if n == 0 {
            0.0
        } else {
            self.hubs.len() as f64 / n as f64
        }
    }

    /// Number of bit-parallel trees (Table 2's ALS, second addend).
    pub fn num_bp_trees(&self) -> usize {
        self.bp.len()
    }

    /// Index size in bytes under the paper's accounting: 32-bit hub + 8-bit
    /// distance per normal entry, plus the bit-parallel arrays.
    pub fn index_bytes(&self) -> usize {
        self.hubs.len() * 5
            + self.offsets.len() * 4
            + self.bp.iter().map(BpTree::memory_bytes).sum::<usize>()
    }
}

/// [`DistanceOracle`] adapter for a complete PLL index.
pub struct PllOracle {
    index: PllIndex,
}

impl PllOracle {
    /// Wraps a complete index.
    ///
    /// # Panics
    ///
    /// Panics if the index is partial (its answers would not be exact).
    pub fn new(index: PllIndex) -> Self {
        assert!(index.is_complete(), "PllOracle requires a complete index");
        PllOracle { index }
    }

    /// The wrapped index.
    pub fn index(&self) -> &PllIndex {
        &self.index
    }
}

impl DistanceOracle for PllOracle {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.index.query(s, t)
    }

    fn name(&self) -> &'static str {
        "PLL"
    }

    fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }

    fn avg_label_entries(&self) -> f64 {
        self.index.avg_label_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_core::fixture;
    use hcl_graph::{generate, traversal};

    fn no_bp() -> PllConfig {
        PllConfig { num_bp_roots: 0, bp_neighbors: 0 }
    }

    #[test]
    fn figure_4_order_dependence() {
        let g = fixture::paper_graph();
        let o159: Vec<u32> = [1u32, 5, 9].iter().map(|&v| fixture::paper_vertex(v)).collect();
        let o951: Vec<u32> = [9u32, 5, 1].iter().map(|&v| fixture::paper_vertex(v)).collect();
        let (a, _) = PllIndex::build_with_order(&g, &o159, no_bp()).unwrap();
        let (b, _) = PllIndex::build_with_order(&g, &o951, no_bp()).unwrap();
        // Figure 4: LS = 25 under <1,5,9>, LS = 30 under <9,5,1> — and both
        // exceed the highway cover labelling's 13 (Corollary 3.14).
        assert_eq!(a.total_entries(), 25);
        assert_eq!(b.total_entries(), 30);
    }

    #[test]
    fn figure_4_vertex_11_labels() {
        // Example 3.10: vertex 11's label has one entry under <1,5,9> but
        // three under <9,5,1>.
        let g = fixture::paper_graph();
        let v11 = fixture::paper_vertex(11);
        let o159: Vec<u32> = [1u32, 5, 9].iter().map(|&v| fixture::paper_vertex(v)).collect();
        let o951: Vec<u32> = [9u32, 5, 1].iter().map(|&v| fixture::paper_vertex(v)).collect();
        let (a, _) = PllIndex::build_with_order(&g, &o159, no_bp()).unwrap();
        let (b, _) = PllIndex::build_with_order(&g, &o951, no_bp()).unwrap();
        assert_eq!(a.label_of(v11), vec![(fixture::paper_vertex(1), 1)]);
        let lb = b.label_of(v11);
        assert_eq!(lb.len(), 3, "{lb:?}");
    }

    #[test]
    fn exact_without_bp_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generate::erdos_renyi(80, 170, seed);
            let (idx, _) = PllIndex::build(&g, no_bp()).unwrap();
            assert!(idx.is_complete());
            for s in g.vertices().step_by(5) {
                let truth = traversal::bfs_distances(&g, s);
                for t in g.vertices() {
                    let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                    assert_eq!(idx.query(s, t), expect, "seed {seed} {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn exact_with_bp_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generate::barabasi_albert(120, 3, seed);
            let (idx, _) =
                PllIndex::build(&g, PllConfig { num_bp_roots: 4, bp_neighbors: 64 }).unwrap();
            for s in g.vertices().step_by(7) {
                let truth = traversal::bfs_distances(&g, s);
                for t in g.vertices() {
                    let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                    assert_eq!(idx.query(s, t), expect, "seed {seed} {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn bp_roots_shrink_normal_labels() {
        let g = generate::barabasi_albert(300, 4, 5);
        let (plain, _) = PllIndex::build(&g, no_bp()).unwrap();
        let (with_bp, _) =
            PllIndex::build(&g, PllConfig { num_bp_roots: 8, bp_neighbors: 64 }).unwrap();
        assert!(with_bp.total_entries() < plain.total_entries());
        assert_eq!(with_bp.num_bp_trees(), 8);
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (idx, _) = PllIndex::build(&g, no_bp()).unwrap();
        assert_eq!(idx.query(0, 2), Some(2));
        assert_eq!(idx.query(0, 4), None);
        assert_eq!(idx.query(5, 5), Some(0));
        assert_eq!(idx.query(5, 0), None);
    }

    #[test]
    fn oracle_adapter() {
        let g = generate::barabasi_albert(80, 3, 2);
        let (idx, _) = PllIndex::build(&g, PllConfig::default()).unwrap();
        let mut oracle = PllOracle::new(idx);
        assert_eq!(oracle.name(), "PLL");
        assert!(oracle.index_bytes() > 0);
        let mut bibfs = crate::online::BiBfsOracle::new(&g);
        for (s, t) in [(0u32, 79u32), (5, 44), (12, 12)] {
            assert_eq!(oracle.distance(s, t), bibfs.distance(s, t));
        }
    }

    #[test]
    fn partial_index_rejected_by_oracle() {
        let g = generate::cycle(6);
        let (idx, _) = PllIndex::build_with_order(&g, &[0], no_bp()).unwrap();
        assert!(!idx.is_complete());
        let r = std::panic::catch_unwind(|| PllOracle::new(idx));
        assert!(r.is_err());
    }

    #[test]
    fn build_with_order_validates() {
        let g = generate::cycle(4);
        assert!(matches!(
            PllIndex::build_with_order(&g, &[9], no_bp()),
            Err(BaselineError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            PllIndex::build_with_order(&g, &[1, 1], no_bp()),
            Err(BaselineError::DuplicateVertex { .. })
        ));
    }
}
