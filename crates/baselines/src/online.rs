//! Index-free online searches: BFS, bidirectional BFS ("Bi-BFS" in
//! Table 2), and Dijkstra on unit weights (Figure 1(a)'s "Dijkstra").
//!
//! These answer queries with zero preprocessing and zero index space, at the
//! cost of visiting a large fraction of the graph per query — the paper
//! reports hundreds of milliseconds per Bi-BFS query on its billion-scale
//! networks, which is what the labelling methods exist to beat.

use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{CsrGraph, SearchSpace, VertexId, WeightedGraph, WeightedGraphBuilder};

/// Unidirectional BFS oracle.
pub struct BfsOracle<'g> {
    graph: &'g CsrGraph,
    space: SearchSpace,
}

impl<'g> BfsOracle<'g> {
    /// Creates a BFS oracle over `graph`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        BfsOracle { graph, space: SearchSpace::new(graph.num_vertices()) }
    }
}

impl DistanceOracle for BfsOracle<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.space.bfs_distance(self.graph, s, t)
    }

    fn name(&self) -> &'static str {
        "BFS"
    }
}

/// Bidirectional BFS oracle (Pohl \[21\]): expands the smaller frontier
/// until the searches meet.
pub struct BiBfsOracle<'g> {
    graph: &'g CsrGraph,
    space: SearchSpace,
}

impl<'g> BiBfsOracle<'g> {
    /// Creates a Bi-BFS oracle over `graph`.
    pub fn new(graph: &'g CsrGraph) -> Self {
        BiBfsOracle { graph, space: SearchSpace::new(graph.num_vertices()) }
    }
}

impl DistanceOracle for BiBfsOracle<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.space.bibfs_distance(self.graph, s, t)
    }

    fn name(&self) -> &'static str {
        "Bi-BFS"
    }
}

/// Dijkstra oracle. The paper's graphs are unweighted, so this treats every
/// edge as weight 1; it exists to reproduce the "Dijkstra" series of
/// Figure 1(a) and as the reference oracle for weighted substrates (IS-L).
pub struct DijkstraOracle {
    graph: WeightedGraph,
}

impl DijkstraOracle {
    /// Builds a unit-weight copy of `graph` to search on.
    pub fn from_unit_weights(graph: &CsrGraph) -> Self {
        let mut b = WeightedGraphBuilder::new(graph.num_vertices());
        for (u, v) in graph.edges() {
            b.add_edge(u, v, 1);
        }
        DijkstraOracle { graph: b.build() }
    }

    /// Wraps an existing weighted graph.
    pub fn new(graph: WeightedGraph) -> Self {
        DijkstraOracle { graph }
    }
}

impl DistanceOracle for DijkstraOracle {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        hcl_graph::traversal::dijkstra_distance(&self.graph, s, t)
    }

    fn name(&self) -> &'static str {
        "Dijkstra"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::{generate, traversal, INF};

    #[test]
    fn all_online_oracles_agree_with_reference() {
        let g = generate::barabasi_albert(120, 3, 17);
        let mut bfs = BfsOracle::new(&g);
        let mut bibfs = BiBfsOracle::new(&g);
        let mut dij = DijkstraOracle::from_unit_weights(&g);
        for s in [0u32, 17, 119] {
            let truth = traversal::bfs_distances(&g, s);
            for t in g.vertices() {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(bfs.distance(s, t), expect);
                assert_eq!(bibfs.distance(s, t), expect);
                assert_eq!(dij.distance(s, t), expect);
            }
        }
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut bibfs = BiBfsOracle::new(&g);
        assert_eq!(bibfs.distance(0, 3), None);
        assert_eq!(bibfs.distance(0, 1), Some(1));
    }

    #[test]
    fn names_and_zero_index_size() {
        let g = generate::path(3);
        assert_eq!(BfsOracle::new(&g).name(), "BFS");
        assert_eq!(BiBfsOracle::new(&g).name(), "Bi-BFS");
        assert_eq!(DijkstraOracle::from_unit_weights(&g).name(), "Dijkstra");
        assert_eq!(BiBfsOracle::new(&g).index_bytes(), 0);
    }
}
