//! Offline stand-in for the subset of the `rand` 0.9 API this workspace
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer ranges, and [`Rng::random`] for
//! `f64`/`u32`/`u64`/`bool`.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic and
//! high quality, but **not** stream-compatible with upstream `rand`: the
//! same seed selects a stable graph here, not the graph upstream would
//! generate. See `crates/shims/README.md`.

use std::ops::{Bound, RangeBounds};

/// Seeding for deterministic generators (upstream: `rand::SeedableRng`,
/// reduced to the one constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit output source (upstream: `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (upstream: `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its full domain (`[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// A uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    /// Panics on empty ranges.
    fn random_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let lo = match range.start_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(_) => panic!("exclusive start bounds are not supported"),
            Bound::Unbounded => T::MIN_VALUE,
        };
        let hi = match range.end_bound() {
            Bound::Included(&x) => x,
            Bound::Excluded(&x) => {
                assert!(x.to_u64() > lo.to_u64(), "cannot sample from empty range");
                T::from_u64(x.to_u64() - 1)
            }
            Bound::Unbounded => T::MAX_VALUE,
        };
        assert!(lo.to_u64() <= hi.to_u64(), "cannot sample from empty range");
        let span = (hi.to_u64() - lo.to_u64()).wrapping_add(1);
        if span == 0 {
            // Full 64-bit domain.
            return T::from_u64(self.next_u64());
        }
        // Widening-multiply range reduction (Lemire); the bias is < 2^-64
        // per sample, irrelevant for test/benchmark workloads.
        let r = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        T::from_u64(lo.to_u64() + r)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable uniformly over their full domain by [`Rng::random`].
pub trait StandardSample {
    /// Maps 64 uniform bits to a uniform value.
    fn from_bits(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl StandardSample for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl StandardSample for bool {
    fn from_bits(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

/// Unsigned integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Copy {
    /// Smallest value of the type.
    const MIN_VALUE: Self;
    /// Largest value of the type.
    const MAX_VALUE: Self;
    /// Widens to `u64` (lossless for every implementor).
    fn to_u64(self) -> u64;
    /// Narrows from `u64`; callers guarantee the value fits.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++), mirroring the
    /// role of `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..7);
            assert!((3..7).contains(&x));
            let y: usize = rng.random_range(0..=4);
            assert!(y <= 4);
            seen_lo |= y == 0;
            seen_hi |= y == 4;
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must be reachable");
    }

    #[test]
    fn single_value_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(rng.random_range(5u32..6), 5);
        assert_eq!(rng.random_range(5u32..=5), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
    }
}
