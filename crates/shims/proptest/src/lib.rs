//! Offline stand-in for the subset of `proptest` this workspace uses:
//! the [`proptest!`] macro, `prop_assert*`, [`Strategy`] with
//! [`prop_map`](Strategy::prop_map) / [`prop_flat_map`](Strategy::prop_flat_map),
//! integer-range / tuple / [`Just`] strategies, [`collection::vec`], and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: no shrinking (a failure reports the case
//! number under a deterministic per-test seed, so it reproduces exactly),
//! and values are generated from a fixed-stream xorshift rather than
//! upstream's perturbable RNG. See `crates/shims/README.md`.

/// Everything the `proptest!` test files import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Per-run configuration (only the case count is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed `prop_assert*` inside a test case body.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic value source for strategies. Seeded from the test's full
/// module path so each test draws an independent, stable stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded by hashing `name` (use the test's module path).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a, then make sure the state is non-zero.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`; `span` must be non-zero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and draws from it
    /// (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64 - lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines `#[test]` functions that run their body over many generated
/// inputs. Mirrors upstream's syntax:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..10, (a, b) in my_strategy()) { … }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case when the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u32..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let (a, b) = ((0usize..4), (10u64..=12)).generate(&mut rng);
            assert!(a < 4);
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::from_name("compose");
        let strat = (1usize..5)
            .prop_flat_map(|n| crate::collection::vec(0usize..n, 1..8).prop_map(move |v| (n, v)));
        for _ in 0..500 {
            let (n, v) = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 8);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = crate::TestRng::from_name("same");
        let mut b = crate::TestRng::from_name("same");
        for _ in 0..64 {
            assert_eq!((0u64..1_000_000).generate(&mut a), (0u64..1_000_000).generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(x in 0u32..50, v in crate::collection::vec(0u32..10, 0..6)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.iter().map(|&x| x as usize).filter(|&x| x < 10).count());
            if v.is_empty() {
                return Ok(());
            }
            prop_assert_ne!(v.len(), 100);
        }
    }
}
