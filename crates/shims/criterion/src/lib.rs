//! Offline stand-in for the subset of `criterion` this workspace uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`bench_with_input`](BenchmarkGroup::bench_with_input), [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is a plain warm-up + timed-loop wall-clock mean — adequate
//! for comparing methods and thread counts, not a statistical framework
//! (see `crates/shims/README.md`). Knobs via environment:
//!
//! | variable | default | meaning |
//! |----------|---------|---------|
//! | `HCL_BENCH_WARMUP_MS` | `25` | warm-up window per benchmark |
//! | `HCL_BENCH_MEASURE_MS` | `150` | measurement window per benchmark |

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default))
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 100, throughput: None }
    }
}

/// Identifier for a parameterised benchmark (`name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Work performed per iteration, for derived rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the minimum number of timed iterations (upstream: sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work so results also print as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { min_iters: self.sample_size as u64, result: None };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.result);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher { min_iters: self.sample_size as u64, result: None };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.result);
        self
    }

    /// Ends the group (upstream flushes reports here; ours print eagerly).
    pub fn finish(self) {}

    fn report(&self, id: &str, result: Option<Measurement>) {
        let Some(m) = result else {
            println!("{}/{id}: no measurement (Bencher::iter never called)", self.name);
            return;
        };
        let mean = m.total.as_secs_f64() / m.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * m.iters as f64 / m.total.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * m.iters as f64 / m.total.as_secs_f64())
            }
            None => String::new(),
        };
        println!("{}/{id}: mean {} over {} iters{rate}", self.name, format_seconds(mean), m.iters);
    }
}

struct Measurement {
    total: Duration,
    iters: u64,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    min_iters: u64,
    result: Option<Measurement>,
}

impl Bencher {
    /// Times repeated calls of `f` after a warm-up window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warmup = env_ms("HCL_BENCH_WARMUP_MS", 25);
        let measure = env_ms("HCL_BENCH_MEASURE_MS", 150);

        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= warmup {
                break;
            }
        }

        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            black_box(f());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= measure && iters >= self.min_iters.min(10) {
                break;
            }
            // Never let slow single iterations (index builds) run the full
            // minimum count once the window is long exceeded.
            if elapsed >= measure * 4 {
                break;
            }
        }
        self.result = Some(Measurement { total: start.elapsed(), iters });
    }
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Defines `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        std::env::set_var("HCL_BENCH_WARMUP_MS", "1");
        std::env::set_var("HCL_BENCH_MEASURE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(1));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3u64, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("a", 4).to_string(), "a/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_seconds(2.5), "2.500 s");
        assert_eq!(format_seconds(0.0025), "2.500 ms");
        assert_eq!(format_seconds(0.0000025), "2.500 µs");
        assert_eq!(format_seconds(0.0000000025), "2.5 ns");
    }
}
