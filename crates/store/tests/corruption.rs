//! Loader robustness: a damaged packed index must always come back as a
//! typed `Err`, never a panic and never silently wrong data. The fuzz
//! walks every byte of a real image flipping bits, and every truncation
//! length; the only flips allowed to still validate are those the format
//! genuinely cannot see (inter-section alignment padding), and for those
//! the decoded content must be identical to the original.

use hcl_core::{HighwayCoverLabelling, LabelStorage, SparseNeighbors, SparseView};
use hcl_graph::{generate, VertexId};
use hcl_store::{pack, IndexView, PackedOracle, StoreError};

fn packed_image() -> (Vec<u8>, HighwayCoverLabelling, SparseView) {
    let g = generate::barabasi_albert(60, 3, 17);
    let landmarks = hcl_graph::order::top_degree(&g, 5);
    let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
    let sparse = SparseView::build(&g, hcl.highway());
    let image = pack(&hcl, &sparse).unwrap();
    (image, hcl, sparse)
}

/// Deep equality against the source index — the "silently wrong" check for
/// corruptions that land in bytes the format does not interpret.
fn content_identical(view: &IndexView, hcl: &HighwayCoverLabelling, sparse: &SparseView) -> bool {
    if view.num_vertices() != hcl.labels().num_vertices()
        || view.landmarks() != hcl.highway().landmarks()
    {
        return false;
    }
    (0..view.num_landmarks() as u32).all(|r| view.highway_row(r) == hcl.highway().row(r))
        && (0..view.num_vertices() as VertexId).all(|v| {
            view.label(v).collect::<Vec<_>>()
                == hcl
                    .labels()
                    .label(v)
                    .iter()
                    .map(|e| (e.landmark as u32, e.dist as u32))
                    .collect::<Vec<_>>()
                && view.sparse_neighbors(v) == sparse.graph().neighbors(v)
        })
}

#[test]
fn bit_flips_never_panic_and_never_corrupt_silently() {
    let (image, hcl, sparse) = packed_image();
    let mut accepted = 0usize;
    for at in 0..image.len() {
        for bit in [0u8, 3, 7] {
            let mut mutated = image.clone();
            mutated[at] ^= 1 << bit;
            match IndexView::from_bytes(&mutated) {
                Err(_) => {}
                Ok(view) => {
                    // Only padding flips may survive — prove the payload is
                    // untouched.
                    accepted += 1;
                    assert!(
                        content_identical(&view, &hcl, &sparse),
                        "flip at byte {at} bit {bit} validated but changed content"
                    );
                }
            }
        }
    }
    // Alignment padding between six sections is at most a few words; any
    // more acceptances would mean validation has a blind spot.
    assert!(accepted <= 3 * 48, "{accepted} flips accepted — validation too loose");
}

#[test]
fn truncations_are_clean_errors() {
    let (image, _, _) = packed_image();
    assert!(IndexView::from_bytes(&image).is_ok());
    for len in 0..image.len() {
        match IndexView::from_bytes(&image[..len]) {
            Err(_) => {}
            Ok(_) => panic!("truncation to {len} of {} bytes validated", image.len()),
        }
    }
}

#[test]
fn header_level_damage_reports_typed_errors() {
    let (image, _, _) = packed_image();

    let mut bad_magic = image.clone();
    bad_magic[0] = b'X';
    assert!(matches!(IndexView::from_bytes(&bad_magic), Err(StoreError::BadMagic)));

    let mut future = image.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        IndexView::from_bytes(&future),
        Err(StoreError::UnsupportedVersion { found: 99 })
    ));

    assert!(matches!(IndexView::from_bytes(&image[..16]), Err(StoreError::Truncated { .. })));
    assert!(matches!(IndexView::from_bytes(&[]), Err(StoreError::Truncated { .. })));

    // A checksum flip is reported as corruption, not i/o.
    let mut bad_payload = image.clone();
    let last = bad_payload.len() - 1;
    bad_payload[last] ^= 0xff;
    assert!(matches!(IndexView::from_bytes(&bad_payload), Err(StoreError::Corrupt(_))));
}

#[test]
fn damaged_files_on_disk_fail_to_open() {
    let dir = std::env::temp_dir().join("hcl_store_corruption_test");
    std::fs::create_dir_all(&dir).unwrap();
    let (image, _, _) = packed_image();

    // Truncated on disk.
    let truncated = dir.join("truncated.hclx");
    std::fs::write(&truncated, &image[..image.len() / 2]).unwrap();
    assert!(PackedOracle::open(&truncated).is_err());

    // Shorter than a header.
    let stub = dir.join("stub.hclx");
    std::fs::write(&stub, b"HCLSTOR1").unwrap();
    assert!(matches!(PackedOracle::open(&stub), Err(StoreError::Truncated { .. })));

    // Empty file (mmap would reject it; the loader must error first).
    let empty = dir.join("empty.hclx");
    std::fs::write(&empty, b"").unwrap();
    assert!(PackedOracle::open(&empty).is_err());

    // Missing file.
    assert!(matches!(PackedOracle::open(dir.join("nope.hclx")), Err(StoreError::Io(_))));

    // Not an index at all.
    let noise = dir.join("noise.hclx");
    std::fs::write(&noise, vec![0xabu8; 4096]).unwrap();
    assert!(matches!(PackedOracle::open(&noise), Err(StoreError::BadMagic)));

    std::fs::remove_dir_all(&dir).ok();
}
