//! Pack → view round-trip: a packed index must reproduce the original
//! labelling, highway, and sparsified CSR exactly, and queries over the
//! mapped bytes must agree with the in-memory fast path on every input —
//! every generator family, disconnected graphs, landmark endpoints, and
//! random instances under proptest.

use hcl_core::{
    HighwayCoverLabelling, LabelStorage, QueryContext, SharedOracle, SparseNeighbors, SparseView,
};
use hcl_graph::{generate, CsrGraph, VertexId};
use hcl_store::{pack, save_packed, IndexView, PackedOracle};
use proptest::prelude::*;

fn build(g: &CsrGraph, k: usize) -> (HighwayCoverLabelling, SparseView) {
    let landmarks = hcl_graph::order::top_degree(g, k);
    let (hcl, _) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
    let sparse = SparseView::build(g, hcl.highway());
    (hcl, sparse)
}

/// The packed view must return byte-for-byte identical index content.
fn assert_view_matches(
    view: &IndexView,
    hcl: &HighwayCoverLabelling,
    sparse: &SparseView,
    tag: &str,
) {
    let n = hcl.labels().num_vertices();
    let r = hcl.num_landmarks();
    assert_eq!(view.num_vertices(), n, "{tag}: n");
    assert_eq!(view.num_landmarks(), r, "{tag}: r");
    assert_eq!(view.landmarks(), hcl.highway().landmarks(), "{tag}: landmark list");
    assert_eq!(view.total_label_entries(), hcl.labels().total_entries() as u64, "{tag}: entries");
    for rank in 0..r as u32 {
        assert_eq!(view.highway_row(rank), hcl.highway().row(rank), "{tag}: highway row {rank}");
    }
    for v in 0..n as VertexId {
        assert_eq!(view.rank(v), hcl.highway().rank(v), "{tag}: rank({v})");
        let packed: Vec<(u32, u32)> = view.label(v).collect();
        let original: Vec<(u32, u32)> =
            hcl.labels().label(v).iter().map(|e| (e.landmark as u32, e.dist as u32)).collect();
        assert_eq!(packed, original, "{tag}: label({v})");
        assert_eq!(view.sparse_neighbors(v), sparse.graph().neighbors(v), "{tag}: sparse({v})");
    }
}

#[test]
fn round_trip_preserves_index_on_all_families() {
    let families: Vec<(&str, CsrGraph)> = vec![
        ("erdos_renyi", generate::erdos_renyi(70, 150, 1)),
        ("barabasi_albert", generate::barabasi_albert(90, 3, 2)),
        ("watts_strogatz", generate::watts_strogatz(80, 4, 0.2, 3)),
        ("web_copying", generate::web_copying(100, 4, 0.3, 4)),
        ("random_tree", generate::random_tree(60, 5)),
        ("grid", generate::grid(8, 9)),
        ("path", generate::path(40)),
        ("cycle", generate::cycle(30)),
        (
            "disconnected",
            CsrGraph::from_edges(12, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (9, 10)]),
        ),
    ];
    for (name, g) in &families {
        for k in [0usize, 1, 4, 10] {
            let (hcl, sparse) = build(g, k);
            let image = pack(&hcl, &sparse).unwrap();
            let view = IndexView::from_bytes(&image).unwrap();
            assert_view_matches(&view, &hcl, &sparse, &format!("{name} k={k}"));
        }
    }
}

#[test]
fn packed_queries_match_in_memory_on_all_families() {
    let families: Vec<(&str, CsrGraph)> = vec![
        ("barabasi_albert", generate::barabasi_albert(120, 3, 11)),
        ("watts_strogatz", generate::watts_strogatz(90, 4, 0.2, 13)),
        (
            "disconnected",
            CsrGraph::from_edges(14, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (9, 10), (12, 13)]),
        ),
    ];
    for (name, g) in &families {
        for k in [0usize, 2, 6] {
            let (hcl, sparse) = build(g, k);
            let image = pack(&hcl, &sparse).unwrap();
            let view = IndexView::from_bytes(&image).unwrap();
            let mut packed_ctx = QueryContext::new(g.num_vertices());
            let mut mem_ctx = QueryContext::new(g.num_vertices());
            let landmarks = hcl.highway().landmarks().to_vec();
            let n = g.num_vertices() as VertexId;
            // Grid of pairs that always includes every landmark endpoint.
            let sources: Vec<VertexId> =
                (0..n).step_by(7).chain(landmarks.iter().copied()).collect();
            for &s in &sources {
                for t in (0..n).step_by(3).chain(landmarks.iter().copied()) {
                    let want = hcl.distance_sparse(&sparse, &mut mem_ctx, s, t);
                    let got = hcl_core::storage::distance_on(&view, &mut packed_ctx, s, t);
                    assert_eq!(got, want, "{name} k={k}: {s}->{t}");
                    let want_bound = hcl.upper_bound_with(&mut mem_ctx, s, t);
                    let got_bound = hcl_core::storage::upper_bound_on(&view, &mut packed_ctx, s, t);
                    assert_eq!(got_bound, want_bound, "{name} k={k}: bound {s}->{t}");
                }
            }
        }
    }
}

#[test]
fn packed_oracle_serves_from_disk_via_mmap() {
    let dir = std::env::temp_dir().join("hcl_store_roundtrip_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.hclx");

    let g = generate::barabasi_albert(400, 4, 21);
    let (hcl, sparse) = build(&g, 12);
    save_packed(&hcl, &sparse, &path).unwrap();

    let packed = PackedOracle::open(&path).unwrap();
    assert_eq!(packed.num_vertices(), 400);
    let mem: SharedOracle<&CsrGraph> = SharedOracle::with_graph(&g, hcl.clone());

    // Pooled single queries and the shared batch machinery agree with the
    // in-memory oracle.
    let pairs: Vec<(VertexId, VertexId)> = (0..400u32)
        .step_by(11)
        .flat_map(|s| (0..400u32).step_by(37).map(move |t| (s, t)))
        .chain(hcl.highway().landmarks().iter().map(|&r| (r, 399)))
        .collect();
    for &(s, t) in &pairs {
        assert_eq!(packed.distance(s, t), mem.distance(s, t), "{s}->{t}");
        assert_eq!(packed.upper_bound(s, t), mem.upper_bound(s, t), "bound {s}->{t}");
    }
    assert_eq!(packed.batch_distances(&pairs, 2), mem.batch_distances(&pairs, 2));

    // The compression the format exists for: the index sections beat the
    // plain serialisation comfortably on a scale-free instance.
    let view = packed.view();
    assert!(
        view.packed_index_bytes() * 4 <= view.plain_index_bytes() * 3,
        "packed {} vs plain {}",
        view.packed_index_bytes(),
        view.plain_index_bytes()
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random Erdős–Rényi instances with random landmark counts: the
    /// packed view reproduces the index exactly and answers a random pair
    /// sample (biased to touch landmarks) identically to the in-memory
    /// path.
    #[test]
    fn packed_path_matches_in_memory_on_random_instances(
        n in 10usize..120,
        extra_edges in 0usize..200,
        k in 0usize..12,
        seed in 0u64..1000,
    ) {
        let g = generate::erdos_renyi(n, n / 2 + extra_edges, seed);
        let (hcl, sparse) = build(&g, k.min(n));
        let image = pack(&hcl, &sparse).unwrap();
        let view = IndexView::from_bytes(&image).unwrap();
        prop_assert_eq!(view.num_vertices(), g.num_vertices());
        prop_assert_eq!(view.landmarks(), hcl.highway().landmarks());
        let landmarks = hcl.highway().landmarks();
        let mut packed_ctx = QueryContext::new(g.num_vertices());
        let mut mem_ctx = QueryContext::new(g.num_vertices());
        let nv = g.num_vertices() as u64;
        for i in 0..64u64 {
            // Deterministic pair stream biased to touch landmarks.
            let s = if i % 5 == 0 && !landmarks.is_empty() {
                landmarks[(i / 5) as usize % landmarks.len()]
            } else {
                ((i.wrapping_mul(2654435761).wrapping_add(seed)) % nv) as u32
            };
            let t = ((i.wrapping_mul(40503).wrapping_add(seed * 7 + 1)) % nv) as u32;
            let want = hcl.distance_sparse(&sparse, &mut mem_ctx, s, t);
            let got = hcl_core::storage::distance_on(&view, &mut packed_ctx, s, t);
            prop_assert_eq!(got, want, "n={} k={} seed={} {}->{}", n, k, seed, s, t);
        }
    }
}
