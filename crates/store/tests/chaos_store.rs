//! Fault-injected store tests (`--features fault-injection`): a failed
//! `mmap` must fall back to an owned in-memory read with identical
//! answers, and a *short* `mmap` (truncated mapping) must surface as a
//! typed validation error at open time — never as silently wrong data.

#![cfg(feature = "fault-injection")]

use hcl_core::fault::{install, Fault, Op, Script, Trigger};
use hcl_core::{HighwayCoverLabelling, LabelStorage, QueryContext, SparseView};
use hcl_graph::{generate, CsrGraph, VertexId};
use hcl_store::{save_packed, IndexView};

const ENOMEM: i32 = 12;

fn build(g: &CsrGraph, k: usize) -> (HighwayCoverLabelling, SparseView) {
    let landmarks = hcl_graph::order::top_degree(g, k);
    let (hcl, _) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
    let sparse = SparseView::build(g, hcl.highway());
    (hcl, sparse)
}

fn temp_index(name: &str) -> (std::path::PathBuf, CsrGraph, HighwayCoverLabelling, SparseView) {
    let dir = std::env::temp_dir().join(format!("hcl_chaos_store_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.hclx");
    let g = generate::barabasi_albert(300, 4, 17);
    let (hcl, sparse) = build(&g, 10);
    save_packed(&hcl, &sparse, &path).unwrap();
    (path, g, hcl, sparse)
}

/// `mmap` fails (injected ENOMEM): the view opens anyway through the
/// owned-read fallback and answers every probed pair identically to the
/// mapped view.
#[test]
fn failed_mmap_falls_back_to_owned_read_with_identical_answers() {
    let (path, g, hcl, sparse) = temp_index("enomem");

    let mapped = IndexView::open(&path).unwrap();
    assert!(mapped.is_mapped(), "no fault: the view serves over the mapping");

    let guard = install(Script::new().on(Op::Mmap, Trigger::At(0), Fault::Errno(ENOMEM)));
    let owned = IndexView::open(&path).unwrap();
    drop(guard);
    assert!(!owned.is_mapped(), "injected ENOMEM: the view fell back to an owned buffer");

    assert_eq!(owned.num_vertices(), mapped.num_vertices());
    assert_eq!(owned.landmarks(), mapped.landmarks());
    let mut ctx_a = QueryContext::new(g.num_vertices());
    let mut ctx_b = QueryContext::new(g.num_vertices());
    let n = g.num_vertices() as VertexId;
    for s in (0..n).step_by(13) {
        for t in (0..n).step_by(29) {
            assert_eq!(
                hcl_core::storage::distance_on(&owned, &mut ctx_a, s, t),
                hcl_core::storage::distance_on(&mapped, &mut ctx_b, s, t),
                "{s}->{t}"
            );
        }
    }
    // Both backings reproduce the source index, not just each other.
    let mut mem_ctx = QueryContext::new(g.num_vertices());
    let mut ctx = QueryContext::new(g.num_vertices());
    for s in (0..n).step_by(41) {
        let want = hcl.distance_sparse(&sparse, &mut mem_ctx, s, n - 1);
        assert_eq!(hcl_core::storage::distance_on(&owned, &mut ctx, s, n - 1), want);
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// A short `mmap` (mapping truncated to 64 bytes) is caught by the open
/// validation as a typed error — the truncated mapping can never serve.
#[test]
fn short_mmap_is_a_typed_open_error() {
    let (path, ..) = temp_index("short");
    let guard = install(Script::new().on(Op::Mmap, Trigger::At(0), Fault::Short(64)));
    let err = IndexView::open(&path).expect_err("a truncated mapping must not open");
    drop(guard);
    let msg = err.to_string();
    assert!(!msg.is_empty(), "typed error with a message, got: {msg}");
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Every open attempt failing `mmap` (Always, not At) still serves —
/// the fallback is not a one-shot.
#[test]
fn persistent_mmap_failure_still_serves() {
    let (path, ..) = temp_index("persistent");
    let guard = install(Script::new().on(Op::Mmap, Trigger::Always, Fault::Errno(ENOMEM)));
    for round in 0..3 {
        let view = IndexView::open(&path).unwrap();
        assert!(!view.is_mapped(), "round {round}");
        assert_eq!(view.num_vertices(), 300, "round {round}");
    }
    assert!(guard.calls(Op::Mmap) >= 3, "every open consulted the hook");
    drop(guard);
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}
