//! LEB128 variable-length integers and the FNV-1a 64-bit checksum — the two
//! primitive encodings of the container format (see `docs/FORMAT.md`).
//!
//! Label streams store landmark ranks as deltas between consecutive sorted
//! ranks, so almost every varint in a packed index is a single byte: ranks
//! and distances are bounded by `u16::MAX` (5 bytes worst case for the u32
//! encoding, 3 in practice never exceeded).

/// Appends `value` to `out` as LEB128 (7 data bits per byte, high bit =
/// continuation).
#[inline]
pub fn encode_u32(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 u32 from `bytes` starting at `*pos`, advancing `*pos`
/// past it. Returns `None` on truncation, a continuation running past 5
/// bytes, or bits beyond the 32nd — never panics, so iterating a corrupt
/// stream degrades to an early end rather than UB or abort.
#[inline]
pub fn decode_u32(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        let low = (byte & 0x7f) as u32;
        if shift == 28 && (byte & 0x70) != 0 {
            return None; // bits 32+ set
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
        if shift > 28 {
            return None; // 6th continuation byte
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash. Not cryptographic; it exists to catch truncation,
/// bit rot, and partially written files.
#[inline]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The per-section checksum of the container format: wide FNV-1a 64 over
/// eight interleaved *word* lanes. The section is split into
/// little-endian `u64` words (the final partial word zero-extended); word
/// `i` feeds lane `i % 8` with one FNV-1a step (`lane = (lane ^ word) *
/// prime`). Lane 0 then absorbs the section's byte length the same way —
/// so zero-padded tails of different lengths differ — and the eight lane
/// hashes are folded with scalar [`fnv1a64`] over their little-endian
/// bytes, in lane order.
///
/// Byte-serial FNV-1a is one dependent ~5-cycle multiply per *byte*,
/// which made checksum verification the dominant cost of opening a packed
/// index. Word-wide lanes do one multiply per 8 bytes across eight
/// independent chains, so the hash runs at multiplier throughput — a
/// ~40× cheaper pass that keeps mmap-open an order of magnitude faster
/// than a deserialising load. Damage detection is preserved: the prime is
/// odd, hence invertible mod 2^64, so any change to one word changes its
/// lane, and the fold pins the lane order.
#[inline]
pub fn section_checksum(bytes: &[u8]) -> u64 {
    let mut lanes = [FNV_OFFSET; 8];
    let mut blocks = bytes.chunks_exact(64);
    for block in &mut blocks {
        for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
            *lane = (*lane ^ w).wrapping_mul(FNV_PRIME);
        }
    }
    let mut words = blocks.remainder().chunks_exact(8);
    let mut lane = 0usize;
    for word in &mut words {
        let w = u64::from_le_bytes(word.try_into().expect("8-byte chunk"));
        lanes[lane] = (lanes[lane] ^ w).wrapping_mul(FNV_PRIME);
        lane += 1;
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut padded = [0u8; 8];
        padded[..tail.len()].copy_from_slice(tail);
        let w = u64::from_le_bytes(padded);
        lanes[lane] = (lanes[lane] ^ w).wrapping_mul(FNV_PRIME);
    }
    lanes[0] = (lanes[0] ^ bytes.len() as u64).wrapping_mul(FNV_PRIME);
    let mut folded = [0u8; 64];
    for (slot, lane) in folded.chunks_exact_mut(8).zip(lanes) {
        slot.copy_from_slice(&lane.to_le_bytes());
    }
    fnv1a64(&folded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_edge_values() {
        for v in [0u32, 1, 127, 128, 129, 16_383, 16_384, 65_535, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            encode_u32(&mut buf, v);
            let mut pos = 0;
            assert_eq!(decode_u32(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        for v in 0..128u32 {
            let mut buf = Vec::new();
            encode_u32(&mut buf, v);
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn decode_rejects_truncation_and_overflow() {
        // Truncated continuation.
        let mut pos = 0;
        assert_eq!(decode_u32(&[0x80], &mut pos), None);
        // Six continuation bytes.
        let mut pos = 0;
        assert_eq!(decode_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut pos), None);
        // Bits beyond the 32nd.
        let mut pos = 0;
        assert_eq!(decode_u32(&[0xff, 0xff, 0xff, 0xff, 0x7f], &mut pos), None);
        // Empty input.
        let mut pos = 0;
        assert_eq!(decode_u32(&[], &mut pos), None);
    }

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    /// Reference implementation straight from the docs/FORMAT.md wording,
    /// with no chunking tricks — the optimised version must match it
    /// byte-for-byte on every length (incl. tails shorter than 8).
    fn section_checksum_reference(bytes: &[u8]) -> u64 {
        let mut padded = bytes.to_vec();
        while !padded.len().is_multiple_of(8) {
            padded.push(0);
        }
        let mut lanes = [FNV_OFFSET; 8];
        for (i, word) in padded.chunks_exact(8).enumerate() {
            let w = u64::from_le_bytes(word.try_into().unwrap());
            lanes[i % 8] = (lanes[i % 8] ^ w).wrapping_mul(FNV_PRIME);
        }
        lanes[0] = (lanes[0] ^ bytes.len() as u64).wrapping_mul(FNV_PRIME);
        let folded: Vec<u8> = lanes.iter().flat_map(|l| l.to_le_bytes()).collect();
        fnv1a64(&folded)
    }

    #[test]
    fn section_checksum_matches_reference_on_all_tail_lengths() {
        let data: Vec<u8> = (0..64u32).map(|i| (i.wrapping_mul(37) ^ 0x5a) as u8).collect();
        for len in 0..data.len() {
            assert_eq!(
                section_checksum(&data[..len]),
                section_checksum_reference(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn section_checksum_detects_any_single_bit_flip() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 11 % 251) as u8).collect();
        let clean = section_checksum(&data);
        let mut damaged = data.clone();
        for byte in 0..damaged.len() {
            for bit in 0..8 {
                damaged[byte] ^= 1 << bit;
                assert_ne!(section_checksum(&damaged), clean, "flip {byte}:{bit} undetected");
                damaged[byte] ^= 1 << bit;
            }
        }
    }
}
