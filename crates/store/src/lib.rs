//! `hcl-store`: the compressed on-disk index container (`HCLSTOR1`) and
//! zero-copy memory-mapped serving for highway cover labellings.
//!
//! The in-memory pipeline builds an index once and keeps it resident; this
//! crate makes one serving *generation* a single immutable file:
//!
//! * [`pack`] / [`save_packed`] serialise a labelling plus its sparsified
//!   view into a versioned, checksummed container (`docs/FORMAT.md`) with
//!   delta-varint label streams — roughly half the bytes of the plain
//!   `HCLIDX01` serialisation;
//! * [`IndexView`] memory-maps that file and implements
//!   [`hcl_core::LabelStorage`] + [`hcl_core::SparseNeighbors`] directly
//!   over the mapped bytes, so the Lemma 5.1 merge and the bounded
//!   bidirectional search run with **no deserialisation** — labels decode
//!   lazily during the merge, the `u32` sections are served as slices over
//!   the mapping;
//! * [`PackedOracle`] wraps a view with a context pool into the same
//!   distance-oracle surface [`hcl_core::SharedOracle`] exposes, so the
//!   server can swap a generation by *remapping* a file instead of
//!   rebuilding arrays.
//!
//! All loader failures are typed [`StoreError`]s — a truncated, bit-flipped
//! or version-skewed file is an `Err`, never a panic.

pub mod format;
pub mod sys;
pub mod varint;

mod deploy;
mod oracle;
mod view;

pub use deploy::write_packed_deployment;
pub use format::{is_packed_path, pack, plain_index_bytes, save_packed, PACKED_EXTENSION};
pub use oracle::PackedOracle;
pub use sys::Mmap;
pub use view::{IndexView, PackedLabelIter};

/// Errors opening, validating, or writing a packed index.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem or mapping operation failed.
    Io(std::io::Error),
    /// The file does not start with the `HCLSTOR1` magic.
    BadMagic,
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
    },
    /// The file ends before the structure it declares.
    Truncated {
        /// Bytes the declared structure requires.
        needed: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// Structural or checksum validation failed — the file is damaged or
    /// was not produced by a correct writer.
    Corrupt(String),
    /// The inputs to `pack` cannot be represented in the format.
    Invalid(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a packed index (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "packed index version {found} unsupported (this build reads {})",
                    format::VERSION
                )
            }
            StoreError::Truncated { needed, actual } => {
                write!(f, "packed index truncated: needs {needed} bytes, file has {actual}")
            }
            StoreError::Corrupt(why) => write!(f, "packed index corrupt: {why}"),
            StoreError::Invalid(why) => write!(f, "cannot pack index: {why}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}
