//! [`PackedOracle`]: the distance-oracle front-end over a memory-mapped
//! packed index — the zero-copy counterpart of
//! [`hcl_core::SharedOracle`], with the same query surface so the server
//! treats the two backends interchangeably.

use crate::view::IndexView;
use crate::StoreError;
use hcl_core::{storage, ContextPool, LabelStorage, QueryContext};
use hcl_graph::VertexId;
use std::path::Path;

/// A queryable oracle over a packed index file: an [`IndexView`] plus a
/// persistent [`ContextPool`] for lock-free-ish per-query scratch reuse.
///
/// All query state lives in checked-out contexts; the view itself is
/// immutable and `Sync`, so one `PackedOracle` serves any number of threads
/// — exactly like `SharedOracle`, minus the heap-resident index.
#[derive(Debug)]
pub struct PackedOracle {
    view: IndexView,
    pool: ContextPool,
}

impl PackedOracle {
    /// Opens, validates, and wraps the packed index at `path`.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<PackedOracle, StoreError> {
        Ok(PackedOracle::from_view(IndexView::open(path)?))
    }

    /// Wraps an already-validated view.
    pub fn from_view(view: IndexView) -> PackedOracle {
        let pool = ContextPool::new(view.num_vertices());
        PackedOracle { view, pool }
    }

    /// The underlying validated view.
    pub fn view(&self) -> &IndexView {
        &self.view
    }

    /// Number of vertices the index covers.
    pub fn num_vertices(&self) -> usize {
        self.view.num_vertices()
    }

    /// The shared context pool (for callers running their own loops).
    pub fn context_pool(&self) -> &ContextPool {
        &self.pool
    }

    /// Exact distance using a pooled context; `None` when disconnected.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<u32> {
        let mut ctx = self.pool.checkout();
        storage::distance_on(&self.view, &mut ctx, s, t)
    }

    /// Exact distance using a caller-held context (worker-loop path).
    pub fn distance_with(&self, ctx: &mut QueryContext, s: VertexId, t: VertexId) -> Option<u32> {
        storage::distance_on(&self.view, ctx, s, t)
    }

    /// [`distance_with`](Self::distance_with) plus per-phase wall-clock
    /// accounting (label merge vs bounded search), for the server's
    /// cumulative `METRICS` phase counters.
    pub fn distance_with_timed(
        &self,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> (Option<u32>, storage::QueryPhases) {
        storage::distance_on_timed(&self.view, ctx, s, t)
    }

    /// The query upper bound `d⊤(s, t)` (Equation 4) from the packed
    /// labels, using a pooled context.
    pub fn upper_bound(&self, s: VertexId, t: VertexId) -> u32 {
        let mut ctx = self.pool.checkout();
        storage::upper_bound_on(&self.view, &mut ctx, s, t)
    }

    /// Answers a batch across `num_threads` scoped workers (0 = all
    /// cores), preserving input order — the same batching machinery the
    /// in-memory oracle uses, querying the mapped bytes.
    pub fn batch_distances(
        &self,
        pairs: &[(VertexId, VertexId)],
        num_threads: usize,
    ) -> Vec<Option<u32>> {
        let view = &self.view;
        hcl_core::query::batch_over(&self.pool, pairs, num_threads, |ctx, s, t| {
            storage::distance_on(view, ctx, s, t)
        })
    }
}
