//! Minimal Linux `mmap` bindings, declared by hand so the workspace stays
//! std-only (std already links libc; these two syscalls are the only thing
//! zero-copy serving needs beyond what std exposes). Same idiom as the
//! server's `transport/sys.rs` epoll bindings: hand-declared externs, an
//! errno-checking helper, and one RAII wrapper so the rest of the crate
//! never touches a raw pointer length pair.

use hcl_core::fault;
use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_void};

const PROT_READ: c_int = 0x1;
const MAP_PRIVATE: c_int = 0x02;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

/// A read-only, private memory mapping of an entire file.
///
/// The mapping outlives the `File` it was created from (the kernel keeps
/// the underlying pages alive), so callers may drop the file handle
/// immediately after mapping. Reads fault pages in on demand and share the
/// page cache with every other mapping of the same file — this is what
/// makes an index reload a remap instead of a copy.
#[derive(Debug)]
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// SAFETY: the mapping is PROT_READ and never mutated or remapped after
// construction; sharing `&[u8]` views across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps all `len` bytes of `file` read-only. Fails on empty files
    /// (`mmap` rejects zero-length mappings).
    pub fn map_file(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "cannot map an empty file"));
        }
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        // Chaos hook: a scripted failure behaves like the kernel refusing
        // the mapping (ENOMEM, fd limits); a short map truncates the view
        // so downstream length/checksum validation must catch it.
        let len = match fault::check(fault::Op::Mmap) {
            fault::Verdict::Proceed => len,
            fault::Verdict::Fail(e) => return Err(e),
            fault::Verdict::Short(n) => n.min(len),
            fault::Verdict::Eof => 0,
        };
        if len == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "cannot map an empty file"));
        }
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        // MAP_FAILED is (void*)-1, not null.
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    /// The mapped bytes. Page-aligned, so any 8-byte-aligned file offset is
    /// also 8-byte aligned in memory.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr is a valid PROT_READ mapping of exactly `len` bytes,
        // live until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successful map).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        unsafe { munmap(self.ptr, self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_file_contents() {
        let path = std::env::temp_dir().join("hcl_store_mmap_test.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path).unwrap().write_all(&payload).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = Mmap::map_file(&file).unwrap();
        drop(file); // the mapping must survive the handle
        assert_eq!(map.len(), payload.len());
        assert_eq!(map.as_bytes(), payload.as_slice());
        assert_eq!(map.as_bytes().as_ptr() as usize % 8, 0, "page alignment");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_empty_file() {
        let path = std::env::temp_dir().join("hcl_store_mmap_empty.bin");
        std::fs::File::create(&path).unwrap();
        let file = std::fs::File::open(&path).unwrap();
        assert!(Mmap::map_file(&file).is_err());
        std::fs::remove_file(&path).ok();
    }
}
