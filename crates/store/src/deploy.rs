//! Packed sharded deployments: the `.hclx`-per-shard counterpart of
//! [`hcl_core::partition::write_deployment`].
//!
//! A plain deployment ships `shardN.hclg` graphs plus one shared
//! `index.hcl` that every shard deserialises on reload. A *packed*
//! deployment instead writes one self-contained `shardN.hclx` per shard —
//! the replicated global labels and highway plus that shard's sparsified
//! CSR `G[Vᵢ∖R]`, pre-packed — so each shard reloads by remapping a single
//! file. The partition map is written unchanged; the router detects which
//! flavour a directory holds by the presence of `shard0.hclx`.

use crate::format::save_packed;
use crate::StoreError;
use hcl_core::partition::{DeploymentSummary, PartitionMap, PARTITION_FILENAME};
use hcl_core::{HighwayCoverLabelling, SparseView};
use hcl_graph::{CsrGraph, VertexId};
use std::path::Path;

/// Writes a complete packed deployment into `dir`: the partition map
/// ([`PARTITION_FILENAME`]) plus one packed index per shard
/// ([`shard_packed_filename`](hcl_core::partition::shard_packed_filename)),
/// each holding the global labelling and the sparsified view of that
/// shard's graph `G[Vᵢ ∪ R]`. Each shard is then served by a plain
/// `hcl serve dir/shardN.hclx`.
pub fn write_packed_deployment<P: AsRef<Path>>(
    dir: P,
    g: &CsrGraph,
    labelling: &HighwayCoverLabelling,
    map: &PartitionMap,
) -> Result<DeploymentSummary, StoreError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    map.save(dir.join(PARTITION_FILENAME))
        .map_err(|e| StoreError::Invalid(format!("cannot write partition map: {e}")))?;
    let mut summary = DeploymentSummary {
        cut_edges: map.cut_edges(g),
        exact: map.respects_components(g),
        ..Default::default()
    };
    let mut owned = vec![0usize; map.num_shards() as usize];
    for v in 0..g.num_vertices() as VertexId {
        if !map.is_landmark(v) {
            owned[map.shard_of(v) as usize] += 1;
        }
    }
    summary.shard_vertices = owned;
    for shard in 0..map.num_shards() {
        let shard_graph = map.shard_graph(g, shard);
        summary.shard_edges.push(shard_graph.num_edges());
        let sparse = SparseView::build(&shard_graph, labelling.highway());
        let path = dir.join(hcl_core::partition::shard_packed_filename(shard));
        save_packed(labelling, &sparse, path)?;
    }
    Ok(summary)
}
