//! The `HCLSTOR1` container writer and the format constants shared with the
//! reader ([`IndexView`](crate::IndexView)). `docs/FORMAT.md` is the
//! normative spec; this module is its reference implementation.
//!
//! A packed index is one file holding everything a shard needs to serve:
//!
//! | section | kind | payload |
//! |---|---|---|
//! | `LANDMARKS` | 1 | `r × u32` landmark vertex ids in rank order |
//! | `HIGHWAY` | 2 | `r² × u32` row-major distance matrix (`u32::MAX` = disconnected) |
//! | `LABEL_OFFSETS` | 3 | `(n+1) × u32` byte offsets into `LABEL_DATA` |
//! | `LABEL_DATA` | 4 | per-vertex delta-varint label streams |
//! | `SPARSE_OFFSETS` | 5 | `(n+1) × u32` entry offsets into `SPARSE_ADJ` |
//! | `SPARSE_ADJ` | 6 | sparsified-CSR adjacency, `u32` per neighbour |
//!
//! All integers are little-endian. Every section starts 8-byte aligned and
//! carries a lane-interleaved FNV-1a 64 checksum
//! ([`varint::section_checksum`]) in the section table, so the `u32`
//! sections can be served as `&[u32]` straight over a page-aligned mapping
//! and corruption is caught at open time. Labels are the only encoded
//! section: each vertex's entries are stored rank-sorted as
//! `varint(rank₀) varint(d₀) varint(rank₁−rank₀−1) varint(d₁) …` — the
//! strict sort makes every gap non-negative, and on real indexes nearly
//! every varint is one byte, which is where the ≥25% size cut over the
//! plain `u16`-pair format comes from.

use crate::varint;
use crate::StoreError;
use hcl_core::{HighwayCoverLabelling, SparseView};
use std::io::Write;
use std::path::Path;

/// File magic: `HCLSTOR1`.
pub const MAGIC: &[u8; 8] = b"HCLSTOR1";
/// Container version this crate writes and reads.
pub const VERSION: u32 = 1;
/// Fixed header size in bytes (magic through `total_label_entries`).
pub const HEADER_BYTES: usize = 40;
/// Size of one section-table entry in bytes.
pub const SECTION_ENTRY_BYTES: usize = 32;
/// Number of sections in a v1 file (each kind exactly once, in kind order).
pub const SECTION_COUNT: usize = 6;

/// Landmark vertex ids, rank order.
pub const SECTION_LANDMARKS: u32 = 1;
/// Row-major `r × r` highway distance matrix.
pub const SECTION_HIGHWAY: u32 = 2;
/// Per-vertex byte offsets into `LABEL_DATA`.
pub const SECTION_LABEL_OFFSETS: u32 = 3;
/// Delta-varint label streams.
pub const SECTION_LABEL_DATA: u32 = 4;
/// Per-vertex entry offsets into `SPARSE_ADJ`.
pub const SECTION_SPARSE_OFFSETS: u32 = 5;
/// Sparsified-CSR adjacency entries.
pub const SECTION_SPARSE_ADJ: u32 = 6;

/// Conventional file extension for packed indexes (`index.hclx`); path
/// sniffing in the CLI, server `RELOAD`, and router fan-out keys on it.
pub const PACKED_EXTENSION: &str = "hclx";

/// Whether `path` names a packed index by extension (`.hclx`).
pub fn is_packed_path(path: &str) -> bool {
    Path::new(path).extension().and_then(|e| e.to_str()) == Some(PACKED_EXTENSION)
}

/// Size in bytes of the plain `HCLIDX01` serialisation
/// (`hcl_core::io::write_labelling`) of an index with these dimensions:
/// header + landmarks + matrix + offsets + 4-byte entries. The packed
/// format's compression ratio is measured against this.
pub fn plain_index_bytes(n: usize, r: usize, label_entries: usize) -> usize {
    24 + 4 * r + 4 * r * r + 4 * (n + 1) + 4 * label_entries
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serialises `labelling` plus its matching sparsified view into a complete
/// packed-index file image.
///
/// `sparse` must have been built from the same graph and landmark set as
/// `labelling` (as [`SharedOracle`](hcl_core::SharedOracle) does at
/// construction); the pair is what one serving generation needs. The whole
/// image is materialised in memory — packing is an offline build step, and
/// the image is about half the size of the in-memory index it encodes.
pub fn pack(labelling: &HighwayCoverLabelling, sparse: &SparseView) -> Result<Vec<u8>, StoreError> {
    let highway = labelling.highway();
    let labels = labelling.labels();
    let n = labels.num_vertices();
    let r = highway.num_landmarks();
    if sparse.num_vertices() != n {
        return Err(StoreError::Invalid(format!(
            "sparse view covers {} vertices, labelling covers {n}",
            sparse.num_vertices()
        )));
    }

    // Section 1: landmarks.
    let mut landmarks = Vec::with_capacity(4 * r);
    for &v in highway.landmarks() {
        push_u32(&mut landmarks, v);
    }

    // Section 2: highway matrix, row-major.
    let mut matrix = Vec::with_capacity(4 * r * r);
    for rank in 0..r as u32 {
        for &d in highway.row(rank) {
            push_u32(&mut matrix, d);
        }
    }

    // Sections 3 + 4: label offsets + delta-varint streams.
    let mut label_offsets = Vec::with_capacity(4 * (n + 1));
    let mut label_data: Vec<u8> = Vec::with_capacity(2 * labels.total_entries());
    for v in 0..n as u32 {
        let at = u32::try_from(label_data.len())
            .map_err(|_| StoreError::Invalid("label data exceeds 4 GiB".into()))?;
        push_u32(&mut label_offsets, at);
        let mut prev: Option<u32> = None;
        for e in labels.label(v) {
            let rank = e.landmark as u32;
            match prev {
                // Strictly increasing ranks: gaps are >= 1, stored as gap−1.
                Some(p) => varint::encode_u32(&mut label_data, rank - p - 1),
                None => varint::encode_u32(&mut label_data, rank),
            }
            varint::encode_u32(&mut label_data, e.dist as u32);
            prev = Some(rank);
        }
    }
    let total = u32::try_from(label_data.len())
        .map_err(|_| StoreError::Invalid("label data exceeds 4 GiB".into()))?;
    push_u32(&mut label_offsets, total);

    // Sections 5 + 6: sparsified CSR, stored in **original** id space
    // regardless of the view's in-memory degree ordering (the relabelling
    // is a decode-time representation — readers rebuild it at open, and
    // keeping the file in original ids leaves the v1 layout unchanged).
    let mut sparse_offsets = Vec::with_capacity(4 * (n + 1));
    let mut sparse_adj = Vec::with_capacity(8 * sparse.num_edges());
    let mut count: u64 = 0;
    for v in 0..n as u32 {
        let at = u32::try_from(count)
            .map_err(|_| StoreError::Invalid("sparse adjacency exceeds u32 entries".into()))?;
        push_u32(&mut sparse_offsets, at);
        for w in sparse.original_neighbors(v) {
            push_u32(&mut sparse_adj, w);
            count += 1;
        }
    }
    let total = u32::try_from(count)
        .map_err(|_| StoreError::Invalid("sparse adjacency exceeds u32 entries".into()))?;
    push_u32(&mut sparse_offsets, total);

    let sections: [(u32, Vec<u8>); SECTION_COUNT] = [
        (SECTION_LANDMARKS, landmarks),
        (SECTION_HIGHWAY, matrix),
        (SECTION_LABEL_OFFSETS, label_offsets),
        (SECTION_LABEL_DATA, label_data),
        (SECTION_SPARSE_OFFSETS, sparse_offsets),
        (SECTION_SPARSE_ADJ, sparse_adj),
    ];

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, VERSION);
    push_u32(&mut out, SECTION_COUNT as u32);
    push_u64(&mut out, n as u64);
    push_u32(&mut out, r as u32);
    push_u32(&mut out, 0); // flags, reserved
    push_u64(&mut out, labels.total_entries() as u64);
    debug_assert_eq!(out.len(), HEADER_BYTES);

    let table_at = out.len();
    out.resize(table_at + SECTION_COUNT * SECTION_ENTRY_BYTES, 0);
    for (i, (kind, payload)) in sections.iter().enumerate() {
        // Zero-pad to the 8-byte alignment every section starts on.
        while out.len() % 8 != 0 {
            out.push(0);
        }
        let offset = out.len() as u64;
        let e = table_at + i * SECTION_ENTRY_BYTES;
        out[e..e + 4].copy_from_slice(&kind.to_le_bytes());
        out[e + 4..e + 8].copy_from_slice(&0u32.to_le_bytes());
        out[e + 8..e + 16].copy_from_slice(&offset.to_le_bytes());
        out[e + 16..e + 24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        out[e + 24..e + 32].copy_from_slice(&varint::section_checksum(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }
    Ok(out)
}

/// Packs and writes the index to `path` (see [`pack`]). The write goes to a
/// temporary sibling first and is renamed into place, so a crash mid-write
/// can never leave a half-written file under the final name — a serving
/// process remapping on `RELOAD` either sees the old file or the new one.
///
/// Durability: the temporary file is fsynced before the rename (its bytes
/// reach disk before the name does) and the parent directory is fsynced
/// after it (the rename itself reaches disk), so a power cut cannot leave
/// a renamed-but-empty `.hclx` behind. See docs/FORMAT.md.
pub fn save_packed<P: AsRef<Path>>(
    labelling: &HighwayCoverLabelling,
    sparse: &SparseView,
    path: P,
) -> Result<(), StoreError> {
    let path = path.as_ref();
    let image = pack(labelling, sparse)?;
    let tmp = path.with_extension("hclx.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&image)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    // Persist the directory entry. An empty parent means `path` is
    // relative with no directory component — the current directory.
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()?;
    Ok(())
}
