//! Zero-copy read access to a packed index: [`IndexView`] maps the file
//! and serves queries directly over the mapped bytes.
//!
//! The `u32` sections (landmarks, highway matrix, both offset arrays,
//! sparse adjacency) are handed out as `&[u32]` slices straight over the
//! mapping — the 8-byte section alignment plus the page alignment of `mmap`
//! make the casts sound, and little-endian layout matches every target this
//! workspace supports. Labels are the one encoded section: the
//! [`PackedLabelIter`] decodes delta-varints lazily *during* the Lemma 5.1
//! merge (decode-on-merge), so a query never materialises a label.
//!
//! Opening validates the whole file — structure, per-section checksums, and
//! a full decode of every label stream — so the query path can assume every
//! invariant the in-memory index upholds and contains no panics, unwraps,
//! or corruption branches. Validation is a single sequential read of the
//! file (the checksums alone require that), which also pre-faults the page
//! cache; it is still an order of magnitude cheaper than the allocate-and-
//! copy deserialising load it replaces.

use crate::format::{self, HEADER_BYTES, SECTION_COUNT, SECTION_ENTRY_BYTES};
use crate::sys::Mmap;
use crate::varint;
use crate::StoreError;
use hcl_core::{LabelStorage, SparseNeighbors, SparseView};
use hcl_graph::{CsrGraph, VertexId, INF};
use std::ops::Range;
use std::path::Path;

/// The bytes behind a view: a file mapping, or an owned 8-byte-aligned
/// buffer (tests, in-memory round trips).
#[derive(Debug)]
enum Backing {
    Mapped(Mmap),
    /// `u64` storage guarantees the 8-byte base alignment the section
    /// layout assumes; `len` is the real byte length.
    Owned {
        buf: Box<[u64]>,
        len: usize,
    },
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Mapped(m) => m.as_bytes(),
            Backing::Owned { buf, len } => {
                // SAFETY: the buffer holds at least `len` initialised bytes.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }
}

/// A validated, queryable view over a packed index file.
///
/// Construction ([`open`](IndexView::open) / [`from_bytes`](IndexView::from_bytes))
/// performs all validation; every accessor afterwards is infallible.
/// Implements [`LabelStorage`] and [`SparseNeighbors`], so the generic
/// query functions in [`hcl_core::storage`] run on it unchanged.
#[derive(Debug)]
pub struct IndexView {
    backing: Backing,
    n: usize,
    r: usize,
    total_entries: u64,
    landmarks: Range<usize>,
    highway: Range<usize>,
    label_offsets: Range<usize>,
    label_data: Range<usize>,
    sparse_offsets: Range<usize>,
    sparse_adj: Range<usize>,
    /// `(vertex, rank)` pairs sorted by vertex — the O(r) replacement for
    /// the in-memory index's O(n) rank table; lookups binary-search it.
    rank_index: Vec<(VertexId, u32)>,
    /// The degree-ordered sparse view, reconstructed at open time from the
    /// original-id-space CSR sections. The bounded search traverses this
    /// owned copy (cache-ordered), not the mapped sections; the on-disk
    /// layout is unchanged, the relabelling is a decode-time
    /// representation.
    sparse: SparseView,
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds pre-checked"))
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds pre-checked"))
}

impl IndexView {
    /// Opens and validates a packed index by memory-mapping `path`.
    ///
    /// When the mapping itself fails (`ENOMEM`, mapping-count limits,
    /// filesystems without mmap), serving degrades instead of dying: the
    /// file is read into an owned 8-byte-aligned buffer and validated
    /// exactly like a mapped one. Queries over the owned backing are
    /// identical — only the zero-copy/page-sharing property is lost.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<IndexView, StoreError> {
        let file = std::fs::File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len < HEADER_BYTES as u64 {
            return Err(StoreError::Truncated { needed: HEADER_BYTES as u64, actual: len });
        }
        match Mmap::map_file(&file) {
            Ok(map) => Self::from_backing(Backing::Mapped(map)),
            Err(_) => {
                let len = usize::try_from(len).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "file too large to load")
                })?;
                let words = len.div_ceil(8);
                let mut buf = vec![0u64; words].into_boxed_slice();
                // SAFETY: the buffer holds `words * 8 >= len` writable bytes.
                let dst =
                    unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
                use std::io::Read;
                (&file).read_exact(dst)?;
                Self::from_backing(Backing::Owned { buf, len })
            }
        }
    }

    /// Builds and validates a view over an in-memory file image (the bytes
    /// [`format::pack`] produces). The image is copied into an 8-byte-
    /// aligned buffer.
    pub fn from_bytes(image: &[u8]) -> Result<IndexView, StoreError> {
        let words = image.len().div_ceil(8);
        let mut buf = vec![0u64; words].into_boxed_slice();
        // SAFETY: the destination holds `words * 8 >= image.len()` bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(image.as_ptr(), buf.as_mut_ptr() as *mut u8, image.len());
        }
        Self::from_backing(Backing::Owned { buf, len: image.len() })
    }

    /// Whether this view serves from a live file mapping (`false`: the
    /// owned-read fallback or [`from_bytes`](Self::from_bytes)).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    fn from_backing(backing: Backing) -> Result<IndexView, StoreError> {
        let bytes = backing.bytes();
        let file_len = bytes.len() as u64;
        if bytes.len() < HEADER_BYTES {
            return Err(StoreError::Truncated { needed: HEADER_BYTES as u64, actual: file_len });
        }
        if &bytes[0..8] != format::MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = read_u32(bytes, 8);
        if version != format::VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let section_count = read_u32(bytes, 12) as usize;
        if section_count != SECTION_COUNT {
            return Err(StoreError::Corrupt(format!(
                "v1 file must have {SECTION_COUNT} sections, found {section_count}"
            )));
        }
        let n = read_u64(bytes, 16);
        let r = read_u32(bytes, 24) as u64;
        let flags = read_u32(bytes, 28);
        let total_entries = read_u64(bytes, 32);
        if n >= u32::MAX as u64 {
            return Err(StoreError::Corrupt(format!("implausible vertex count {n}")));
        }
        // The label encoding stores ranks in 16 bits (same cap the builder
        // enforces via `BuildError::TooManyLandmarks`).
        if r > u16::MAX as u64 {
            return Err(StoreError::Corrupt(format!("implausible landmark count {r}")));
        }
        if flags != 0 {
            return Err(StoreError::Corrupt(format!("unknown flags {flags:#x} (must be 0 in v1)")));
        }
        let table_end = HEADER_BYTES as u64 + (SECTION_COUNT * SECTION_ENTRY_BYTES) as u64;
        if file_len < table_end {
            return Err(StoreError::Truncated { needed: table_end, actual: file_len });
        }

        // Section table: every v1 kind exactly once, each section in
        // bounds, aligned, and passing its checksum.
        let mut ranges: [Option<Range<usize>>; SECTION_COUNT] = Default::default();
        for i in 0..SECTION_COUNT {
            let e = HEADER_BYTES + i * SECTION_ENTRY_BYTES;
            let kind = read_u32(bytes, e);
            let reserved = read_u32(bytes, e + 4);
            if reserved != 0 {
                return Err(StoreError::Corrupt(format!(
                    "section table entry {i} has nonzero reserved field"
                )));
            }
            let offset = read_u64(bytes, e + 8);
            let len = read_u64(bytes, e + 16);
            let checksum = read_u64(bytes, e + 24);
            if kind == 0 || kind > SECTION_COUNT as u32 {
                return Err(StoreError::Corrupt(format!("unknown section kind {kind}")));
            }
            let slot = &mut ranges[(kind - 1) as usize];
            if slot.is_some() {
                return Err(StoreError::Corrupt(format!("duplicate section kind {kind}")));
            }
            if !offset.is_multiple_of(8) {
                return Err(StoreError::Corrupt(format!("section {kind} misaligned at {offset}")));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| StoreError::Corrupt(format!("section {kind} length overflow")))?;
            if offset < table_end || end > file_len {
                return Err(StoreError::Truncated { needed: end, actual: file_len });
            }
            let range = offset as usize..end as usize;
            if varint::section_checksum(&bytes[range.clone()]) != checksum {
                return Err(StoreError::Corrupt(format!("section {kind} checksum mismatch")));
            }
            *slot = Some(range);
        }
        let [landmarks, highway, label_offsets, label_data, sparse_offsets, sparse_adj] =
            ranges.map(|r| r.expect("all six kinds seen exactly once"));

        // Dimension checks tie section lengths to the header counts.
        let expect = |name: &str, range: &Range<usize>, want: u64| -> Result<(), StoreError> {
            if range.len() as u64 != want {
                return Err(StoreError::Corrupt(format!(
                    "{name} section is {} bytes, expected {want}",
                    range.len()
                )));
            }
            Ok(())
        };
        expect("landmarks", &landmarks, 4 * r)?;
        expect("highway", &highway, 4 * r * r)?;
        expect("label offsets", &label_offsets, 4 * (n + 1))?;
        expect("sparse offsets", &sparse_offsets, 4 * (n + 1))?;
        if sparse_adj.len() % 4 != 0 {
            return Err(StoreError::Corrupt("sparse adjacency not a whole number of u32s".into()));
        }

        let view = IndexView {
            backing,
            n: n as usize,
            r: r as usize,
            total_entries,
            landmarks,
            highway,
            label_offsets,
            label_data,
            sparse_offsets,
            sparse_adj,
            rank_index: Vec::new(),
            sparse: SparseView::from_original_space(CsrGraph::empty(0), 0),
        };
        view.validate_contents()
    }

    /// Content validation beyond structure: landmark ids, highway matrix
    /// invariants, offset monotonicity, a full decode of every label
    /// stream, and sparsified-CSR sanity. On success the rank index is
    /// built and the view is ready to serve.
    fn validate_contents(mut self) -> Result<IndexView, StoreError> {
        let n = self.n as u32;
        let r = self.r as u32;

        let mut rank_index: Vec<(VertexId, u32)> =
            self.landmark_slice().iter().enumerate().map(|(rank, &v)| (v, rank as u32)).collect();
        rank_index.sort_unstable();
        for w in rank_index.windows(2) {
            if w[0].0 == w[1].0 {
                return Err(StoreError::Corrupt(format!("duplicate landmark vertex {}", w[0].0)));
            }
        }
        if let Some(&(v, _)) = rank_index.last() {
            if v >= n {
                return Err(StoreError::Corrupt(format!("landmark {v} out of range (n = {n})")));
            }
        }
        self.rank_index = rank_index;

        // Highway: zero diagonal, symmetric, finite values plausible
        // (unweighted distances are < n).
        let matrix = self.highway_slice();
        for a in 0..self.r {
            if matrix[a * self.r + a] != 0 {
                return Err(StoreError::Corrupt(format!("highway diagonal ({a},{a}) nonzero")));
            }
            for b in 0..a {
                let d = matrix[a * self.r + b];
                if d != matrix[b * self.r + a] {
                    return Err(StoreError::Corrupt(format!("highway asymmetry at ({a},{b})")));
                }
                if d != INF && d >= n.max(1) {
                    return Err(StoreError::Corrupt(format!("highway distance {d} implausible")));
                }
            }
        }

        // Labels: monotone byte offsets ending at the data length, then a
        // full decode — strictly increasing ranks < r, 16-bit distances,
        // streams consumed exactly, totals matching the header, and empty
        // labels on landmarks.
        let offsets = self.label_offsets_slice();
        let data_len = self.label_data.len() as u32;
        if offsets[0] != 0 || offsets[self.n] != data_len {
            return Err(StoreError::Corrupt("label offsets do not span the data section".into()));
        }
        let mut decoded: u64 = 0;
        for v in 0..self.n {
            if offsets[v] > offsets[v + 1] {
                return Err(StoreError::Corrupt(format!("label offsets decrease at vertex {v}")));
            }
            let stream = &self.backing.bytes()[self.label_data.clone()]
                [offsets[v] as usize..offsets[v + 1] as usize];
            let mut pos = 0usize;
            let mut prev: Option<u32> = None;
            while pos < stream.len() {
                let delta = varint::decode_u32(stream, &mut pos)
                    .ok_or_else(|| StoreError::Corrupt(format!("bad rank varint at vertex {v}")))?;
                let rank = match prev {
                    Some(p) => p
                        .checked_add(1)
                        .and_then(|x| x.checked_add(delta))
                        .filter(|&x| x < r)
                        .ok_or_else(|| {
                            StoreError::Corrupt(format!("label rank overflow at vertex {v}"))
                        })?,
                    None => delta,
                };
                if rank >= r {
                    return Err(StoreError::Corrupt(format!(
                        "label rank {rank} >= |R| = {r} at vertex {v}"
                    )));
                }
                let dist = varint::decode_u32(stream, &mut pos).ok_or_else(|| {
                    StoreError::Corrupt(format!("bad distance varint at vertex {v}"))
                })?;
                if dist > u16::MAX as u32 {
                    return Err(StoreError::Corrupt(format!(
                        "label distance {dist} exceeds 16 bits at vertex {v}"
                    )));
                }
                prev = Some(rank);
                decoded += 1;
            }
            if prev.is_some() && self.rank(v as u32).is_some() {
                return Err(StoreError::Corrupt(format!("landmark {v} has a non-empty label")));
            }
        }
        if decoded != self.total_entries {
            return Err(StoreError::Corrupt(format!(
                "decoded {decoded} label entries, header claims {}",
                self.total_entries
            )));
        }

        // Sparsified CSR: monotone offsets spanning the adjacency section,
        // in-range sorted neighbour lists, and isolated landmarks.
        let sparse_offsets = self.sparse_offsets_slice();
        let adj_count = (self.sparse_adj.len() / 4) as u32;
        if sparse_offsets[0] != 0 || sparse_offsets[self.n] != adj_count {
            return Err(StoreError::Corrupt(
                "sparse offsets do not span the adjacency section".into(),
            ));
        }
        for v in 0..self.n {
            if sparse_offsets[v] > sparse_offsets[v + 1] {
                return Err(StoreError::Corrupt(format!("sparse offsets decrease at vertex {v}")));
            }
            let row = &self.sparse_adj_slice()
                [sparse_offsets[v] as usize..sparse_offsets[v + 1] as usize];
            if !row.is_empty() && self.rank(v as u32).is_some() {
                return Err(StoreError::Corrupt(format!("landmark {v} has sparse neighbours")));
            }
            let mut prev: Option<u32> = None;
            for &w in row {
                if w >= n {
                    return Err(StoreError::Corrupt(format!(
                        "sparse neighbour {w} out of range at vertex {v}"
                    )));
                }
                if prev.is_some_and(|p| p >= w) {
                    return Err(StoreError::Corrupt(format!(
                        "sparse neighbours of {v} not strictly sorted"
                    )));
                }
                prev = Some(w);
            }
        }

        // Materialise the degree-ordered sparse view from the validated
        // original-id CSR sections. The relabelling is deterministic, so
        // the packed path reconstructs the exact view the in-memory path
        // builds from the same graph — answers stay byte-identical.
        let offsets: Vec<usize> = sparse_offsets.iter().map(|&o| o as usize).collect();
        let adj: Vec<VertexId> = self.sparse_adj_slice().to_vec();
        let graph = CsrGraph::from_csr_parts(offsets, adj)
            .map_err(|e| StoreError::Corrupt(format!("sparse CSR rejected: {e}")))?;
        self.sparse = SparseView::from_original_space(graph, 0);
        Ok(self)
    }

    /// Reinterprets an in-bounds, 4-aligned byte range as `&[u32]`.
    #[inline]
    fn u32_slice(&self, range: Range<usize>) -> &[u32] {
        let bytes = &self.backing.bytes()[range];
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0, "section alignment");
        // SAFETY: range is within the backing (validated at open), the
        // pointer is 4-aligned (8-aligned sections over a page-aligned
        // mapping / u64-backed buffer), and u32 has no invalid bit
        // patterns. Little-endian layout is part of the format contract.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
    }

    #[inline]
    fn landmark_slice(&self) -> &[u32] {
        self.u32_slice(self.landmarks.clone())
    }

    #[inline]
    fn highway_slice(&self) -> &[u32] {
        self.u32_slice(self.highway.clone())
    }

    #[inline]
    fn label_offsets_slice(&self) -> &[u32] {
        self.u32_slice(self.label_offsets.clone())
    }

    #[inline]
    fn sparse_offsets_slice(&self) -> &[u32] {
        self.u32_slice(self.sparse_offsets.clone())
    }

    #[inline]
    fn sparse_adj_slice(&self) -> &[u32] {
        self.u32_slice(self.sparse_adj.clone())
    }

    /// Landmark vertex ids in rank order.
    pub fn landmarks(&self) -> &[VertexId] {
        self.landmark_slice()
    }

    /// Total label entries across all vertices.
    pub fn total_label_entries(&self) -> u64 {
        self.total_entries
    }

    /// Size of the whole packed file in bytes.
    pub fn store_bytes(&self) -> usize {
        self.backing.bytes().len()
    }

    /// Bytes of the packed *index* sections (landmarks + highway + label
    /// offsets + label data) — the payload comparable to the plain
    /// `HCLIDX01` serialisation, which does not carry the sparsified CSR.
    pub fn packed_index_bytes(&self) -> usize {
        self.landmarks.len() + self.highway.len() + self.label_offsets.len() + self.label_data.len()
    }

    /// Bytes of the delta-varint label streams alone (the `LABEL_DATA`
    /// section) — divided by [`total_label_entries`](Self::total_label_entries)
    /// this is the on-disk bytes-per-entry figure the committed benchmark
    /// reports.
    pub fn label_data_bytes(&self) -> usize {
        self.label_data.len()
    }

    /// Bytes the same index occupies in the plain `HCLIDX01` format.
    pub fn plain_index_bytes(&self) -> usize {
        format::plain_index_bytes(self.n, self.r, self.total_entries as usize)
    }

    /// Bytes of the packed sparsified-CSR sections.
    pub fn sparse_bytes(&self) -> usize {
        self.sparse_offsets.len() + self.sparse_adj.len()
    }

    /// Undirected edge count of the sparsified graph.
    pub fn sparse_edges(&self) -> usize {
        self.sparse_adj.len() / 4 / 2
    }
}

/// Lazy decoder over one vertex's delta-varint label stream; yields
/// `(rank, dist)` in strictly increasing rank order. Open-time validation
/// guarantees well-formed streams, so the `None`-on-malformed branches in
/// here are unreachable defence, not a correctness dependency.
pub struct PackedLabelIter<'a> {
    stream: &'a [u8],
    pos: usize,
    prev: Option<u32>,
}

impl Iterator for PackedLabelIter<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        if self.pos >= self.stream.len() {
            return None;
        }
        let delta = varint::decode_u32(self.stream, &mut self.pos)?;
        let rank = match self.prev {
            Some(p) => p + 1 + delta,
            None => delta,
        };
        let dist = varint::decode_u32(self.stream, &mut self.pos)?;
        self.prev = Some(rank);
        Some((rank, dist))
    }
}

impl LabelStorage for IndexView {
    type LabelIter<'a> = PackedLabelIter<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.r
    }

    #[inline]
    fn rank(&self, v: VertexId) -> Option<u32> {
        self.rank_index
            .binary_search_by_key(&v, |&(vertex, _)| vertex)
            .ok()
            .map(|i| self.rank_index[i].1)
    }

    #[inline]
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32 {
        self.highway_slice()[rank_a as usize * self.r + rank_b as usize]
    }

    #[inline]
    fn highway_row(&self, rank: u32) -> &[u32] {
        let start = rank as usize * self.r;
        &self.highway_slice()[start..start + self.r]
    }

    #[inline]
    fn label(&self, v: VertexId) -> PackedLabelIter<'_> {
        let offsets = self.label_offsets_slice();
        let v = v as usize;
        let data = &self.backing.bytes()[self.label_data.clone()];
        PackedLabelIter {
            stream: &data[offsets[v] as usize..offsets[v + 1] as usize],
            pos: 0,
            prev: None,
        }
    }
}

impl SparseNeighbors for IndexView {
    #[inline]
    fn view_of(&self, v: VertexId) -> VertexId {
        self.sparse.view_of(v)
    }

    #[inline]
    fn sparse_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.sparse.graph().neighbors(v)
    }
}
