//! Fault-injected router tests (`--features fault-injection`): a real
//! replicated deployment driven through scripted faults on the
//! router→shard legs — mid-stream resets, EINTR storms, 1-byte writes,
//! failed connects — while every client answer must stay exact.
//!
//! Only the `Upstream*`/`Connect` fault ops are scripted here: the shard
//! servers run in the same process, and server-side ops (`Read`/`Write`)
//! would hit them too.

#![cfg(feature = "fault-injection")]

use hcl_core::fault::{exclusive, install_global, Fault, Op, Script, Trigger, ECONNRESET, EINTR};
use hcl_core::partition::PartitionMap;
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::{CsrGraph, VertexId};
use hcl_router::{Router, RouterConfig, RouterHandle};
use hcl_server::{Client, QueryService, Server, ServerConfig, ServerHandle};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Two communities bridged only through hub landmarks 0/1/2, so a range
/// partition at the midpoint answers every query exactly (the same
/// fixture shape as the main router suite).
fn bridged_communities(seed: u64) -> (CsrGraph, Vec<VertexId>) {
    let hubs: Vec<VertexId> = vec![0, 1, 2];
    let n = 240u32;
    let mut edges = BTreeSet::new();
    let mut add = |a: u32, b: u32| {
        if a != b {
            edges.insert(if a < b { (a, b) } else { (b, a) });
        }
    };
    add(0, 1);
    add(1, 2);
    for (start, end) in [(3u32, 120u32), (120, 240)] {
        let span = end - start;
        for v in start..end {
            add(v, start + (v + 1 - start) % span);
            add(v, start + ((v - start) * 7 + seed as u32) % span);
            if v % 5 == 0 {
                add(v, hubs[(v % 3) as usize]);
            }
        }
    }
    let edges: Vec<(u32, u32)> = edges.into_iter().collect();
    (CsrGraph::from_edges(n as usize, &edges), hubs)
}

/// Same-shard, cross-shard, and landmark-touching pairs.
fn mixed_pairs(n: u32, count: usize) -> Vec<(VertexId, VertexId)> {
    (0..count as u32)
        .map(|i| match i % 4 {
            0 => (3 + (i * 7) % (n / 2 - 3), 3 + (i * 13 + 1) % (n / 2 - 3)),
            1 => (n / 2 + (i * 5) % (n / 2), n / 2 + (i * 11 + 3) % (n / 2)),
            2 => ((i * 3) % (n / 2), n / 2 + (i * 17 + 2) % (n / 2)),
            _ => (i % 3, (i * 19) % n),
        })
        .collect()
}

/// Two shards × two replicas each, every replica a real `Server` on its
/// shard graph with the replicated labelling. The full graph and
/// labelling come back too, for building the ground-truth oracle.
fn deploy(
    config: RouterConfig,
) -> (Vec<ServerHandle>, RouterHandle, CsrGraph, HighwayCoverLabelling) {
    let (g, hubs) = bridged_communities(9);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let mut shards = Vec::new();
    let mut groups = Vec::new();
    for shard in 0..2u32 {
        let mut replicas = Vec::new();
        for _ in 0..2 {
            let service = Arc::new(QueryService::from_parts(
                Arc::new(map.shard_graph(&g, shard)),
                Arc::new(labelling.clone()),
                1 << 10,
            ));
            let handle = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
            replicas.push(handle.local_addr());
            shards.push(handle);
        }
        groups.push(replicas);
    }
    let router = Router::bind_replicated(map, &groups, "127.0.0.1:0", config).unwrap();
    (shards, router, g, labelling)
}

fn metric(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("missing {key} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Faults on both legs at once — a mid-stream reset on an upstream read
/// plus EINTR/1-byte storms on upstream writes — and every answer, same
/// shard or scattered, must stay exact: the reset replica's owed
/// requests fail over to its sibling verbatim.
#[test]
fn upstream_faults_fail_over_and_answers_stay_exact() {
    let _serial = exclusive();
    let (_shards, router, g, labelling) = deploy(RouterConfig::default());
    let mut oracle = HlOracle::new(&g, labelling);
    let pairs = mixed_pairs(240, 32);

    let guard = install_global(
        Script::new()
            .on(Op::UpstreamRead, Trigger::At(6), Fault::Errno(ECONNRESET))
            .on(Op::UpstreamRead, Trigger::Every(4), Fault::Errno(EINTR))
            .on(Op::UpstreamWrite, Trigger::Every(3), Fault::Errno(EINTR))
            .on(Op::UpstreamWrite, Trigger::Always, Fault::Short(1)),
    );
    let mut client = Client::connect(router.local_addr()).unwrap();
    for &(s, t) in &pairs {
        let (got, degraded) = client.query_tagged(s, t).unwrap();
        assert_eq!(got, oracle.query(s, t), "d({s},{t}) under upstream faults");
        assert!(!degraded, "failover to a same-shard sibling is exact, never degraded");
    }
    // The whole batch path crosses the faulted legs too.
    let got = client.batch(&pairs).unwrap();
    for (&(s, t), d) in pairs.iter().zip(&got) {
        assert_eq!(*d, oracle.query(s, t), "batch d({s},{t}) under upstream faults");
    }
    let json = client.metrics().unwrap();
    assert!(metric(&json, "failovers") >= 1, "the reset must have failed a replica over: {json}");
    assert!(guard.calls(Op::UpstreamWrite) > pairs.len() as u64, "1-byte writes multiply calls");
    drop(guard);
}

/// `UPDATE` through the router is all-or-nothing across the owning
/// shard's replica fleet. With every control connect refused, the
/// fan-out reports one `ERR update incomplete` and **no** replica
/// applies the edit — the fleet stays fully on the old generation and
/// keeps answering it exactly. Once connects heal, the same edit
/// succeeds everywhere and every answer (same-shard, cross-shard,
/// landmark-touching) matches BFS on the edited graph — fully new, with
/// nothing torn in between.
#[test]
fn update_fan_out_is_all_or_nothing_when_ctl_connects_die() {
    let _serial = exclusive();
    let (_shards, router, g, _labelling) = deploy(RouterConfig::default());
    let mut pairs = mixed_pairs(240, 24);

    // A same-shard, non-hub, far-apart absent edge: shard 0 owns both
    // endpoints, so exactly its replica group must confirm.
    let truth_probe = hcl_core::testing::truth_map(&g, pairs.iter().copied());
    let (u, v) = pairs
        .iter()
        .copied()
        .filter(|&(s, t)| (3..120).contains(&s) && (3..120).contains(&t) && !g.has_edge(s, t))
        .max_by_key(|p| truth_probe[p].unwrap_or(u32::MAX))
        .expect("stream contains a same-shard absent pair");
    pairs.push((u, v));
    let truth_old = hcl_core::testing::truth_map(&g, pairs.iter().copied());
    let truth_new =
        hcl_core::testing::truth_map(&g.with_edge(u, v).unwrap(), pairs.iter().copied());
    assert_ne!(truth_old, truth_new, "the edit must move at least d({u},{v})");

    // Warm the data legs first: only the lazy control connects fault.
    let mut client = Client::connect(router.local_addr()).unwrap();
    for &(s, t) in pairs.iter().take(4) {
        assert_eq!(client.query(s, t).unwrap(), truth_old[&(s, t)]);
    }

    const ECONNREFUSED: i32 = 111;
    let guard =
        install_global(Script::new().on(Op::Connect, Trigger::Always, Fault::Errno(ECONNREFUSED)));
    let err = client.update(true, u, v).unwrap_err();
    assert!(err.to_string().contains("update incomplete"), "{err}");
    drop(guard);

    // Fully old: no replica applied anything, the fleet still agrees on
    // epoch 0, and every answer is the old graph's.
    assert_eq!(client.epoch().unwrap(), 0);
    for &(s, t) in &pairs {
        assert_eq!(client.query(s, t).unwrap(), truth_old[&(s, t)], "old-generation d({s},{t})");
    }

    // Connects healed: the retried edit lands on every owning replica
    // (all-or-nothing the other way) and the whole deployment serves the
    // edited graph.
    let (epoch, _affected) = client.update(true, u, v).unwrap();
    assert_eq!(epoch, 1, "both shard-0 replicas confirm the first update epoch");
    for &(s, t) in &pairs {
        assert_eq!(client.query(s, t).unwrap(), truth_new[&(s, t)], "new-generation d({s},{t})");
    }
    let json = client.metrics().unwrap();
    assert_eq!(metric(&json, "updates"), 1, "{json}");
    assert!(metric(&json, "errors") >= 1, "{json}");
}

/// A replica's very first connect fails (injected refusal): the router
/// backs it off, the sibling serves, and after the backoff the fleet is
/// whole again — all without a single wrong or degraded answer.
#[test]
fn failed_connects_back_off_and_queries_stay_exact() {
    let _serial = exclusive();
    const ECONNREFUSED: i32 = 111;
    let guard =
        install_global(Script::new().on(Op::Connect, Trigger::At(0), Fault::Errno(ECONNREFUSED)));
    let (_shards, router, g, labelling) = deploy(RouterConfig::default());
    let mut oracle = HlOracle::new(&g, labelling);
    let pairs = mixed_pairs(240, 24);

    let mut client = Client::connect(router.local_addr()).unwrap();
    for &(s, t) in &pairs {
        let (got, degraded) = client.query_tagged(s, t).unwrap();
        assert_eq!(got, oracle.query(s, t), "d({s},{t}) after a refused connect");
        assert!(!degraded, "a sibling replica serves exactly while one backs off");
    }
    assert!(guard.calls(Op::Connect) >= 2, "the refused connect was retried or a sibling used");
    drop(guard);
}
