//! Router integration suite: a real 2-shard deployment over loopback —
//! two `hcl_server::Server`s on shard graphs plus the replicated global
//! labelling, fronted by one `Router` — checked against a single
//! unsharded `HlOracle` on the full graph, including `RELOAD` fan-out
//! under live traffic.

use hcl_core::partition::{self, PartitionMap};
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::{CsrGraph, VertexId};
use hcl_router::{Router, RouterConfig};
use hcl_server::{Client, QueryService, Server, ServerConfig, ServerHandle};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Two communities (ids 3..120 and 120..240) whose only inter-community
/// edges run through the three hub landmarks 0/1/2 — so a contiguous
/// range partition at 120 respects the components of `G[V∖R]` and every
/// sharded answer must be exact.
fn bridged_communities(seed: u64) -> (CsrGraph, Vec<VertexId>) {
    let hubs: Vec<VertexId> = vec![0, 1, 2];
    let n = 240u32;
    let mut edges = BTreeSet::new();
    let mut add = |a: u32, b: u32| {
        if a != b {
            edges.insert(if a < b { (a, b) } else { (b, a) });
        }
    };
    add(0, 1);
    add(1, 2);
    for (start, end) in [(3u32, 120u32), (120, 240)] {
        let span = end - start;
        for v in start..end {
            // A ring keeps each community connected; the seeded chords
            // vary the distances between fixtures.
            add(v, start + (v + 1 - start) % span);
            add(v, start + ((v - start) * 7 + seed as u32) % span);
            // Every 5th vertex reaches a hub, so cross-community paths
            // exist but all pass through landmarks.
            if v % 5 == 0 {
                add(v, hubs[(v % 3) as usize]);
            }
        }
    }
    let edges: Vec<(u32, u32)> = edges.into_iter().collect();
    (CsrGraph::from_edges(n as usize, &edges), hubs)
}

/// A hub-and-spoke graph where every edge touches a landmark, so
/// `G[V∖R]` is edgeless and *any* partition — including hash — answers
/// every query exactly.
fn hub_star() -> (CsrGraph, Vec<VertexId>) {
    let hubs: Vec<VertexId> = (0..6).collect();
    let n = 150u32;
    let mut edges = Vec::new();
    for h in 1..6u32 {
        edges.push((h - 1, h));
    }
    for v in 6..n {
        edges.push((v, v % 6));
        edges.push((v, (v + 2) % 6));
    }
    (CsrGraph::from_edges(n as usize, &edges), hubs)
}

/// A deterministic mixed workload: same-shard, cross-shard, landmark and
/// identical-endpoint pairs.
fn workload(n: u32, count: usize) -> Vec<(VertexId, VertexId)> {
    (0..count as u32)
        .map(|i| match i % 4 {
            0 => ((i * 7) % (n / 2), (i * 13 + 1) % (n / 2)), // same shard (low)
            1 => (n / 2 + (i * 5) % (n / 2), n / 2 + (i * 11 + 3) % (n / 2)), // same shard (high)
            2 => ((i * 3) % (n / 2), n / 2 + (i * 17 + 2) % (n / 2)), // cross shard
            _ => (i % 3, (i * 19) % n),                       // landmark endpoint
        })
        .collect()
}

struct Deployment {
    shards: Vec<ServerHandle>,
    router: hcl_router::RouterHandle,
}

impl Deployment {
    /// Starts one server per shard graph (replicated labelling) and a
    /// router in front of them.
    fn start(g: &CsrGraph, labelling: &HighwayCoverLabelling, map: &PartitionMap) -> Deployment {
        let shards: Vec<ServerHandle> = (0..map.num_shards())
            .map(|shard| {
                let shard_graph = Arc::new(map.shard_graph(g, shard));
                let service = Arc::new(QueryService::from_parts(
                    shard_graph,
                    Arc::new(labelling.clone()),
                    1 << 10,
                ));
                Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
            })
            .collect();
        let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
        let router =
            Router::bind(map.clone(), &addrs, "127.0.0.1:0", RouterConfig::default()).unwrap();
        Deployment { shards, router }
    }

    fn client(&self) -> Client {
        Client::connect(self.router.local_addr()).unwrap()
    }
}

#[test]
fn range_sharded_router_matches_unsharded_oracle() {
    let (g, hubs) = bridged_communities(1);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g), "fixture must be component-closed");

    let deployment = Deployment::start(&g, &labelling, &map);
    let mut oracle = HlOracle::new(&g, labelling.clone());
    let mut client = deployment.client();

    let pairs = workload(g.num_vertices() as u32, 600);
    // Single queries, one at a time.
    for &(s, t) in pairs.iter().take(200) {
        assert_eq!(client.query(s, t).unwrap(), oracle.query(s, t), "QUERY {s} {t}");
    }
    // One big batch (split/scatter/merge path).
    let expect: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    assert_eq!(client.batch(&pairs).unwrap(), expect);
    // Pipelined singles (response-ordering across scattered queries).
    assert_eq!(client.pipelined_queries(&pairs[..128]).unwrap(), &expect[..128]);
}

#[test]
fn hash_sharded_router_matches_unsharded_oracle() {
    let (g, hubs) = hub_star();
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g), "edgeless G[V∖R] is trivially component-closed");

    let deployment = Deployment::start(&g, &labelling, &map);
    let mut oracle = HlOracle::new(&g, labelling.clone());
    let mut client = deployment.client();

    let pairs = workload(g.num_vertices() as u32, 400);
    let expect: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    assert_eq!(client.batch(&pairs).unwrap(), expect);
    for &(s, t) in pairs.iter().take(100) {
        assert_eq!(client.query(s, t).unwrap(), oracle.query(s, t), "QUERY {s} {t}");
    }
}

#[test]
fn stats_epoch_and_errors_through_the_router() {
    let (g, hubs) = bridged_communities(2);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let deployment = Deployment::start(&g, &labelling, &map);
    let mut client = deployment.client();

    client.ping().unwrap();
    assert_eq!(client.epoch().unwrap(), 0, "fresh shards agree at epoch 0");

    // One same-shard and one cross-shard query, then check aggregation.
    client.query(10, 20).unwrap();
    client.query(10, 200).unwrap();
    let stats = client.stats().unwrap();
    let get = |key: &str| -> u64 {
        stats
            .split_ascii_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(get("shards"), 2);
    assert_eq!(get("router_queries"), 2);
    assert_eq!(get("router_scatter_queries"), 1);
    // The scattered query hits both shards: 3 shard-side queries total.
    assert_eq!(get("queries"), 3);
    assert_eq!(get("epoch"), 0);
    assert!(get("index_bytes") > 0, "summed shard sizes survive aggregation");

    // Out-of-range queries fail with the server's error shape and leave
    // the connection usable.
    let err = client.query(0, 9999).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    let err = client.batch(&[(0, 1), (9999, 2)]).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    client.ping().unwrap();

    // Router metrics track the failures.
    assert_eq!(deployment.router.metrics().errors.load(Ordering::Relaxed), 2);
}

#[test]
fn reload_fans_out_under_live_traffic_with_all_or_nothing_confirmation() {
    let dir = std::env::temp_dir().join(format!("hcl_router_reload_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (g1, hubs) = bridged_communities(3);
    let (g2, _) = bridged_communities(11);
    let (l1, _) = HighwayCoverLabelling::build(&g1, &hubs).unwrap();
    let (l2, _) = HighwayCoverLabelling::build(&g2, &hubs).unwrap();
    let map = PartitionMap::range(g1.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g1) && map.respects_components(&g2));

    let dir1 = dir.join("v1");
    let dir2 = dir.join("v2");
    partition::write_deployment(&dir1, &g1, &l1, &map).unwrap();
    partition::write_deployment(&dir2, &g2, &l2, &map).unwrap();

    // Shards start the way `hcl serve` would: from the v1 files.
    let shards: Vec<ServerHandle> = (0..2)
        .map(|shard| {
            let (graph_path, index_path) = partition::shard_paths(dir1.to_str().unwrap(), shard);
            let shard_graph = Arc::new(hcl_graph::io::load_binary(&graph_path).unwrap());
            let index = hcl_core::io::load_labelling(&index_path).unwrap();
            let service = Arc::new(QueryService::from_parts(shard_graph, Arc::new(index), 1 << 10));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
    let router = Router::bind(map.clone(), &addrs, "127.0.0.1:0", RouterConfig::default()).unwrap();

    let pairs = workload(g1.num_vertices() as u32, 200);
    let mut o1 = HlOracle::new(&g1, l1.clone());
    let mut o2 = HlOracle::new(&g2, l2.clone());
    let truth1: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o1.query(s, t)).collect();
    let truth2: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o2.query(s, t)).collect();
    assert_ne!(truth1, truth2, "the two fixtures must differ on this workload");

    // Live traffic across the swap. Shard swaps are not atomic across
    // the deployment, so a batch straddling the reload window may mix
    // generations *across shards* — but every individual answer must
    // come from one valid generation (each pair resolves on one shard's
    // pinned snapshot, or the min of two valid generations).
    let stop = AtomicBool::new(false);
    let addr = router.local_addr();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (stop, pairs, truth1, truth2) = (&stop, &pairs, &truth1, &truth2);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let got = client.batch(pairs).unwrap();
                    for (i, d) in got.iter().enumerate() {
                        assert!(
                            *d == truth1[i] || *d == truth2[i],
                            "pair {i}: {d:?} matches neither generation \
                             ({:?} / {:?})",
                            truth1[i],
                            truth2[i]
                        );
                    }
                }
            });
        }

        let mut client = Client::connect(addr).unwrap();
        // A reload from a directory that does not exist fails on every
        // shard and must not move any epoch.
        let missing = dir.join("nope");
        let err = client.reload(missing.to_str().unwrap(), None).unwrap_err();
        assert!(err.to_string().contains("reload incomplete"), "{err}");
        assert_eq!(client.epoch().unwrap(), 0, "failed fan-out leaves epochs untouched");

        // The real fan-out: all-or-nothing confirmation of the new epoch.
        let epoch = client.reload(dir2.to_str().unwrap(), None).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(client.epoch().unwrap(), 1, "all shards agree after the fan-out");
        stop.store(true, Ordering::Relaxed);
    });

    // After the swap everything answers on the new deployment.
    let mut client = Client::connect(router.local_addr()).unwrap();
    assert_eq!(client.batch(&pairs).unwrap(), truth2);
    let stats = client.stats().unwrap();
    assert!(stats.contains("router_reloads=1"), "{stats}");

    drop(router);
    drop(shards);
    std::fs::remove_dir_all(&dir).ok();
}

/// `UPDATE` through the router: the edit fans out to **every replica of
/// the shards owning an endpoint** (and only those), is confirmed
/// all-or-nothing with one `UPDATED <epoch> <affected>` line, and
/// afterwards every routed answer — same-shard, cross-shard,
/// landmark-touching — matches BFS on the edited graph. The reverse
/// `DEL` restores the original answers through the same path.
#[test]
fn update_fans_out_to_owning_shard_replicas_only() {
    let (g, hubs) = bridged_communities(4);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g));

    // Two replicas per shard, services kept for direct inspection.
    let mut services: Vec<Vec<Arc<QueryService>>> = Vec::new();
    let mut handles: Vec<ServerHandle> = Vec::new();
    let mut groups = Vec::new();
    for shard in 0..2u32 {
        let mut addrs = Vec::new();
        let mut shard_services = Vec::new();
        for _ in 0..2 {
            let service = Arc::new(QueryService::from_parts(
                Arc::new(map.shard_graph(&g, shard)),
                Arc::new(labelling.clone()),
                1 << 10,
            ));
            let handle =
                Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
            addrs.push(handle.local_addr());
            shard_services.push(service);
            handles.push(handle);
        }
        services.push(shard_services);
        groups.push(addrs);
    }
    let router =
        Router::bind_replicated(map, &groups, "127.0.0.1:0", RouterConfig::default()).unwrap();

    // A same-shard, non-hub, far-apart absent edge owned by shard 0.
    let mut pairs = workload(g.num_vertices() as u32, 120);
    let probe = hcl_core::testing::truth_map(&g, pairs.iter().copied());
    let (u, v) = pairs
        .iter()
        .copied()
        .filter(|&(s, t)| (3..120).contains(&s) && (3..120).contains(&t) && !g.has_edge(s, t))
        .max_by_key(|p| probe[p].unwrap_or(u32::MAX))
        .expect("workload contains a same-shard absent pair");
    pairs.push((u, v));
    let truth_old = hcl_core::testing::truth_map(&g, pairs.iter().copied());
    let truth_new =
        hcl_core::testing::truth_map(&g.with_edge(u, v).unwrap(), pairs.iter().copied());
    assert_ne!(truth_old, truth_new);

    let mut client = Client::connect(router.local_addr()).unwrap();
    let (epoch, affected) = client.update(true, u, v).unwrap();
    assert_eq!(epoch, 1);
    assert!(affected > 0, "a distance-{:?} insertion must relabel someone", truth_old[&(u, v)]);

    // Precise fan-out: both replicas of the owning shard applied the
    // edit; the shard owning neither endpoint was never touched.
    for service in &services[0] {
        assert_eq!(service.epoch(), 1, "owning-shard replica updated");
        assert_eq!(service.metrics().snapshot().updates_applied, 1);
    }
    for service in &services[1] {
        assert_eq!(service.epoch(), 0, "non-owning shard untouched");
        assert_eq!(service.metrics().snapshot().updates_applied, 0);
    }

    for &(s, t) in &pairs {
        let (got, degraded) = client.query_tagged(s, t).unwrap();
        assert_eq!(got, truth_new[&(s, t)], "post-update d({s},{t})");
        assert!(!degraded);
    }

    // The reverse edit rides the same fan-out and restores the answers.
    let (epoch, _) = client.update(false, u, v).unwrap();
    assert_eq!(epoch, 2);
    for &(s, t) in &pairs {
        assert_eq!(client.query(s, t).unwrap(), truth_old[&(s, t)], "post-delete d({s},{t})");
    }

    let stats = client.stats().unwrap();
    assert!(stats.contains("router_updates=2"), "{stats}");
    // Shard-side counters aggregate through STATS as plain sums (one
    // replica sampled per shard: 2 from shard 0, 0 from shard 1).
    assert!(stats.contains("updates_applied=2"), "{stats}");

    // Invalid edits are refused by the owning replicas, all-or-nothing.
    let err = client.update(true, u, u).unwrap_err();
    assert!(err.to_string().contains("self-loop"), "{err}");
    let err = client.update(true, 0, 9999).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");

    drop(router);
    drop(handles);
}

/// The packed flavour of the fan-out: shards serve `.hclx` files
/// zero-copy, the router detects `shard0.hclx` in the target directory
/// and reloads every shard with the single-path `RELOAD dir/shardI.hclx`
/// form — a remap, not a rebuild — with the same all-or-nothing epoch
/// confirmation.
#[test]
fn reload_fans_out_packed_deployments_as_single_path_remaps() {
    let dir = std::env::temp_dir().join(format!("hcl_router_packed_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (g1, hubs) = bridged_communities(5);
    let (g2, _) = bridged_communities(13);
    let (l1, _) = HighwayCoverLabelling::build(&g1, &hubs).unwrap();
    let (l2, _) = HighwayCoverLabelling::build(&g2, &hubs).unwrap();
    let map = PartitionMap::range(g1.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g1) && map.respects_components(&g2));

    let dir1 = dir.join("v1");
    let dir2 = dir.join("v2");
    hcl_store::write_packed_deployment(&dir1, &g1, &l1, &map).unwrap();
    hcl_store::write_packed_deployment(&dir2, &g2, &l2, &map).unwrap();

    // Shards start the way `hcl serve dir/shardI.hclx` would: packed.
    let shards: Vec<ServerHandle> = (0..2)
        .map(|shard| {
            let path = partition::shard_packed_path(dir1.to_str().unwrap(), shard);
            let oracle = hcl_store::PackedOracle::open(&path).unwrap();
            let service = Arc::new(QueryService::with_index(
                hcl_server::ServingIndex::Packed(oracle),
                1 << 10,
            ));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
    let router = Router::bind(map.clone(), &addrs, "127.0.0.1:0", RouterConfig::default()).unwrap();

    let pairs = workload(g1.num_vertices() as u32, 200);
    let mut o1 = HlOracle::new(&g1, l1.clone());
    let mut o2 = HlOracle::new(&g2, l2.clone());
    let truth1: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o1.query(s, t)).collect();
    let truth2: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o2.query(s, t)).collect();
    assert_ne!(truth1, truth2, "the two fixtures must differ on this workload");

    let mut client = Client::connect(router.local_addr()).unwrap();
    assert_eq!(client.batch(&pairs).unwrap(), truth1, "packed shards serve v1 exactly");

    let epoch = client.reload(dir2.to_str().unwrap(), None).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(client.epoch().unwrap(), 1, "all shards agree after the packed fan-out");
    assert_eq!(client.batch(&pairs).unwrap(), truth2, "answers swap to the v2 deployment");

    drop(router);
    drop(shards);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_shutdown_leaves_shards_running() {
    let (g, hubs) = hub_star();
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    let deployment = Deployment::start(&g, &labelling, &map);

    let mut client = deployment.client();
    client.query(7, 8).unwrap();
    client.shutdown_server().unwrap();
    deployment.router.join();
    assert!(deployment.router.is_shutting_down());

    // The shards never saw the SHUTDOWN.
    for shard in &deployment.shards {
        assert!(!shard.is_shutting_down());
        let mut direct = Client::connect(shard.local_addr()).unwrap();
        direct.ping().unwrap();
    }
}

/// Extracts one numeric field from a router `METRICS` JSON body.
fn metric(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle).unwrap_or_else(|| panic!("missing {key} in {json}"));
    json[at + needle.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap()
}

/// A scripted replica speaking just enough of the shard protocol for the
/// failover tests: exact `QUERY` answers from a precomputed table, `PONG`
/// for probes. The first connection misbehaves per `die_after` /
/// `silent_after`; later connections (reconnects) serve faithfully.
fn fake_replica(
    answers: std::collections::HashMap<(u32, u32), Option<u32>>,
    die_after: Option<usize>,
    silent_after: Option<usize>,
) -> std::net::SocketAddr {
    use std::io::{BufRead, BufReader, Write};
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let mut first = true;
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { return };
            let (die, silent) = if first {
                (die_after.unwrap_or(usize::MAX), silent_after.unwrap_or(usize::MAX))
            } else {
                (usize::MAX, usize::MAX)
            };
            first = false;
            let reader = BufReader::new(conn.try_clone().unwrap());
            let mut answered = 0usize;
            for line in reader.lines() {
                let Ok(line) = line else { break };
                if answered >= silent {
                    continue; // play dead without closing the socket
                }
                let response = if line == "PING" {
                    "PONG\n".to_string()
                } else {
                    let mut it = line.split_ascii_whitespace().skip(1);
                    let s: u32 = it.next().unwrap().parse().unwrap();
                    let t: u32 = it.next().unwrap().parse().unwrap();
                    match answers[&(s, t)] {
                        Some(d) => format!("DIST {d}\n"),
                        None => "INF\n".to_string(),
                    }
                };
                if conn.write_all(response.as_bytes()).is_err() {
                    break;
                }
                if line != "PING" {
                    answered += 1;
                    if answered >= die {
                        break; // drop the connection with requests in flight
                    }
                }
            }
        }
    });
    addr
}

/// Polls the router's `METRICS` until one replica reports the wanted
/// state.
fn wait_for_replica_state(
    client: &mut Client,
    shard: u32,
    addr: std::net::SocketAddr,
    state: &str,
) {
    let needle =
        format!("\"shard\":{shard},\"replica\":0,\"addr\":\"{addr}\",\"state\":\"{state}\"");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let json = client.metrics().unwrap();
        if json.contains(&needle) {
            return;
        }
        assert!(std::time::Instant::now() < deadline, "replica never {state}: {json}");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

/// Tentpole: a replica dying with a pipelined window in flight. The
/// surrendered requests are re-dispatched verbatim to the sibling, so
/// every position of the pipeline is answered *exactly* and the client
/// sees zero errors; the failover is visible in `METRICS`.
#[test]
fn replica_death_mid_pipeline_fails_over_exactly_with_zero_client_errors() {
    let (g, hubs) = bridged_communities(7);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let mut oracle = HlOracle::new(&g, labelling.clone());

    // 64 shard-0 pairs, all answered exactly by both the fake and the
    // real replica.
    let pairs: Vec<(u32, u32)> = (0..64).map(|i| (10 + i, 20 + (i * 3) % 90)).collect();
    let truth: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    let answers = pairs.iter().zip(&truth).map(|(&p, &d)| (p, d)).collect();
    // Replica 0 of shard 0 dies abruptly after 5 answers.
    let fake = fake_replica(answers, Some(5), None);

    let real: Vec<ServerHandle> = (0..2)
        .map(|shard| {
            let service = Arc::new(QueryService::from_parts(
                Arc::new(map.shard_graph(&g, shard)),
                Arc::new(labelling.clone()),
                1 << 10,
            ));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let groups = vec![vec![fake, real[0].local_addr()], vec![real[1].local_addr()]];
    let router =
        Router::bind_replicated(map, &groups, "127.0.0.1:0", RouterConfig::default()).unwrap();

    let mut client = Client::connect(router.local_addr()).unwrap();
    // Make sure the doomed replica is the one taking the traffic.
    wait_for_replica_state(&mut client, 0, fake, "connected");

    let got = client.pipelined_queries(&pairs).unwrap();
    assert_eq!(got, truth, "every pipeline position exact across the failover");

    let json = client.metrics().unwrap();
    assert!(metric(&json, "failovers") >= 1, "failover not recorded: {json}");
    assert!(metric(&json, "retries") >= 1, "re-dispatches not recorded: {json}");
    assert_eq!(metric(&json, "errors"), 0, "client saw no errors: {json}");
    assert_eq!(metric(&json, "degraded"), 0, "a sibling served; nothing degraded: {json}");
}

/// A replica that stops answering *without closing its socket* is caught
/// by the idle health probe, failed over, and traffic lands on the
/// sibling exactly.
#[test]
fn silent_replica_is_probed_out_and_the_sibling_takes_over() {
    let (g, hubs) = bridged_communities(9);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let mut oracle = HlOracle::new(&g, labelling.clone());

    let pairs: Vec<(u32, u32)> = vec![(10, 20), (30, 40), (50, 60)];
    let truth: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    let answers = pairs.iter().zip(&truth).map(|(&p, &d)| (p, d)).collect();
    // Replica 0 of shard 0 goes mute after 2 answers (socket stays open).
    let fake = fake_replica(answers, None, Some(2));

    let real: Vec<ServerHandle> = (0..2)
        .map(|shard| {
            let service = Arc::new(QueryService::from_parts(
                Arc::new(map.shard_graph(&g, shard)),
                Arc::new(labelling.clone()),
                1 << 10,
            ));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let groups = vec![vec![fake, real[0].local_addr()], vec![real[1].local_addr()]];
    let config = RouterConfig {
        probe_interval: std::time::Duration::from_millis(50),
        probe_timeout: std::time::Duration::from_millis(150),
        ..RouterConfig::default()
    };
    let router = Router::bind_replicated(map, &groups, "127.0.0.1:0", config).unwrap();

    let mut client = Client::connect(router.local_addr()).unwrap();
    wait_for_replica_state(&mut client, 0, fake, "connected");

    // Two answers flow, then the replica goes mute while idle.
    assert_eq!(client.query(10, 20).unwrap(), truth[0]);
    assert_eq!(client.query(30, 40).unwrap(), truth[1]);

    // With zero client traffic, only the probe can notice the corpse.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let json = client.metrics().unwrap();
        if metric(&json, "probe_failures") >= 1 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "probe never fired the replica: {json}");
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    // The sibling answers the same shard exactly — not degraded.
    assert_eq!(client.query_tagged(50, 60).unwrap(), (truth[2], false));
    let json = client.metrics().unwrap();
    assert!(metric(&json, "probes") >= 1, "{json}");
    assert_eq!(metric(&json, "degraded"), 0, "{json}");
}

/// The regression the blocking connect caused: with one shard address
/// blackholed (SYN queue full, connects hang in progress), an unrelated
/// client `PING` must still complete in well under 50 ms, and queries for
/// the unreachable shard degrade to a tagged upper bound instead of
/// hanging or erroring.
#[test]
fn blackholed_shard_never_blocks_the_reactor_and_queries_degrade() {
    use hcl_server::transport::sys;

    let (g, hubs) = bridged_communities(4);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let mut oracle = HlOracle::new(&g, labelling.clone());

    // A listener that never accepts, its accept queue pre-filled so
    // further connects sit in SYN retry limbo — the shape of a dead or
    // partitioned host, as opposed to a refused port.
    let blackhole = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dark_addr = blackhole.local_addr().unwrap();
    let mut filler = Vec::new();
    for _ in 0..300 {
        if let Ok((stream, _)) = sys::connect_nonblocking(&dark_addr) {
            filler.push(stream);
        }
    }

    let real = {
        let service = Arc::new(QueryService::from_parts(
            Arc::new(map.shard_graph(&g, 1)),
            Arc::new(labelling.clone()),
            1 << 10,
        ));
        Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
    };
    let config = RouterConfig {
        park_timeout: std::time::Duration::from_millis(200),
        ..RouterConfig::default()
    };
    let router = Router::bind(map, &[dark_addr, real.local_addr()], "127.0.0.1:0", config).unwrap();

    // The reactor is mid-connect to the blackhole right now; an
    // unrelated connection must not feel it. (The old blocking
    // `connect_timeout` stalled the whole reactor for 500 ms per
    // attempt.)
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let mut probe_client = Client::connect(router.local_addr()).unwrap();
        probe_client.ping().unwrap();
        let elapsed = t0.elapsed();
        assert!(
            elapsed < std::time::Duration::from_millis(50),
            "PING stalled {elapsed:?} behind a blackholed connect"
        );
        std::thread::sleep(std::time::Duration::from_millis(100));
    }

    // Shard-0 queries degrade to a tagged upper bound via shard 1's
    // labels — bounded latency, no ERR, never an under-report.
    let mut client = Client::connect(router.local_addr()).unwrap();
    let t0 = std::time::Instant::now();
    let (bound, approx) = client.query_tagged(10, 20).unwrap();
    assert!(t0.elapsed() < std::time::Duration::from_secs(3), "degrade not bounded");
    assert!(approx, "unreachable home shard must tag the answer approximate");
    let truth = oracle.query(10, 20);
    match (bound, truth) {
        (Some(b), Some(t)) => assert!(b >= t, "under-report: bound {b} < true {t}"),
        (None, _) => {}
        (Some(b), None) => panic!("bound {b} for a disconnected pair"),
    }
    // The healthy shard still answers exactly, untagged.
    assert_eq!(client.query_tagged(200, 210).unwrap(), (oracle.query(200, 210), false));
    let json = client.metrics().unwrap();
    assert!(metric(&json, "degraded") >= 1, "{json}");
    drop(filler);
}

/// Overload protection while a shard flaps: with every replica of a
/// blackholed shard mid-connect, at most `max_parked` requests wait for
/// the reconnect — the overflow is refused `ERR busy` immediately and
/// counted in `parked_dropped`, instead of growing the parked queue
/// without bound.
#[test]
fn parked_queue_is_bounded_and_overflow_is_refused_busy() {
    use hcl_server::transport::sys;
    use std::io::{BufRead, BufReader, Write};

    let (g, hubs) = bridged_communities(4);
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);

    // Every replica of every shard blackholed (SYN queue pre-filled):
    // connects hang in progress, so incoming requests can only park.
    let blackhole = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let dark = blackhole.local_addr().unwrap();
    let mut filler = Vec::new();
    for _ in 0..300 {
        if let Ok((stream, _)) = sys::connect_nonblocking(&dark) {
            filler.push(stream);
        }
    }

    let config = RouterConfig {
        max_parked: 2,
        park_timeout: std::time::Duration::from_millis(200),
        ..RouterConfig::default()
    };
    let router = Router::bind(map, &[dark, dark], "127.0.0.1:0", config).unwrap();

    // A pipelined flood of 10 same-shard queries: 2 park behind the
    // in-progress connect, 8 overflow.
    let mut stream = std::net::TcpStream::connect(router.local_addr()).unwrap();
    stream.set_read_timeout(Some(std::time::Duration::from_secs(10))).unwrap();
    stream.write_all("QUERY 10 20\n".repeat(10).as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let (mut busy, mut unavailable) = (0, 0);
    for _ in 0..10 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line == "ERR busy" {
            busy += 1;
        } else if line.starts_with("ERR shard 0 unavailable") {
            unavailable += 1;
        } else {
            panic!("unexpected response: {line:?}");
        }
    }
    assert_eq!(busy, 8, "overflow past max_parked=2 is refused busy");
    assert_eq!(unavailable, 2, "the parked pair expires to unavailable");

    let mut client = Client::connect(router.local_addr()).unwrap();
    let json = client.metrics().unwrap();
    assert_eq!(metric(&json, "parked_dropped"), 8, "{json}");
    drop(filler);
}

/// Single-replica shards with no sibling: a dead shard *degrades* its
/// queries (tagged upper bounds from the surviving shard's labels)
/// instead of erroring; control-plane requests report the failure; and
/// once every shard is gone queries finally fail with `ERR`.
#[test]
fn dead_shard_degrades_queries_and_errs_the_control_plane() {
    let (g, hubs) = bridged_communities(5);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let deployment = Deployment::start(&g, &labelling, &map);
    let mut oracle = HlOracle::new(&g, labelling.clone());
    let mut client = deployment.client();
    client.ping().unwrap();

    // Kill shard 0. Early queries may still ride the not-yet-torn-down
    // socket and answer exactly; once the router notices the EOF they
    // must degrade — promptly, never hanging in an unresolved slot.
    deployment.shards[0].shutdown();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let truth = oracle.query(10, 20);
    loop {
        // (10, 20): both owned by the dead shard 0.
        let (d, approx) = client.query_tagged(10, 20).unwrap();
        if approx {
            if let (Some(b), Some(t)) = (d, truth) {
                assert!(b >= t, "degraded bound {b} under-reports true {t}");
            }
            break;
        }
        assert_eq!(d, truth, "exact answers must stay exact");
        assert!(std::time::Instant::now() < deadline, "queries to the dead shard never degraded");
        std::thread::yield_now();
    }

    // The connection is still usable and the healthy shard is exact.
    client.ping().unwrap();
    let (s, t) = (200, 210); // both owned by shard 1
    assert_eq!(client.query_tagged(s, t).unwrap(), (oracle.query(s, t), false));
    // Scattered queries touching the dead shard degrade too: the healthy
    // half plus a label bound for the dead half is still an upper bound.
    let (d, approx) = client.query_tagged(10, 200).unwrap();
    assert!(approx, "scatter with a dead half must be tagged");
    if let (Some(b), Some(t)) = (d, oracle.query(10, 200)) {
        assert!(b >= t, "scattered bound {b} under-reports true {t}");
    }
    // The control plane does not degrade: STATS reports the failure.
    let err = client.stats().unwrap_err();
    assert!(err.to_string().contains("shard 0 unavailable"), "{err}");
    assert!(metric(&client.metrics().unwrap(), "degraded") >= 1);

    // With every shard gone there is no label holder left to bound the
    // answer: now — and only now — queries fail.
    deployment.shards[1].shutdown();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match client.query_tagged(200, 210) {
            Err(e) => {
                assert!(e.to_string().contains("unavailable"), "{e}");
                break;
            }
            Ok(_) => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "queries kept answering with every shard dead"
                );
                std::thread::yield_now();
            }
        }
    }
    client.ping().unwrap();
}

#[test]
fn router_rejects_empty_replica_groups() {
    let (g, hubs) = hub_star();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    let groups: Vec<Vec<String>> = vec![vec!["127.0.0.1:1".to_string()], vec![]];
    let err = Router::bind_replicated(map, &groups, "127.0.0.1:0", RouterConfig::default())
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("empty replica group"), "{err}");
}

#[test]
fn router_rejects_mismatched_shard_count() {
    let (g, hubs) = hub_star();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    let err =
        Router::bind(map, &["127.0.0.1:1".to_string()], "127.0.0.1:0", RouterConfig::default())
            .map(|_| ())
            .unwrap_err();
    assert!(err.to_string().contains("2 shards"), "{err}");
}
