//! Router integration suite: a real 2-shard deployment over loopback —
//! two `hcl_server::Server`s on shard graphs plus the replicated global
//! labelling, fronted by one `Router` — checked against a single
//! unsharded `HlOracle` on the full graph, including `RELOAD` fan-out
//! under live traffic.

use hcl_core::partition::{self, PartitionMap};
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::{CsrGraph, VertexId};
use hcl_router::{Router, RouterConfig};
use hcl_server::{Client, QueryService, Server, ServerConfig, ServerHandle};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Two communities (ids 3..120 and 120..240) whose only inter-community
/// edges run through the three hub landmarks 0/1/2 — so a contiguous
/// range partition at 120 respects the components of `G[V∖R]` and every
/// sharded answer must be exact.
fn bridged_communities(seed: u64) -> (CsrGraph, Vec<VertexId>) {
    let hubs: Vec<VertexId> = vec![0, 1, 2];
    let n = 240u32;
    let mut edges = BTreeSet::new();
    let mut add = |a: u32, b: u32| {
        if a != b {
            edges.insert(if a < b { (a, b) } else { (b, a) });
        }
    };
    add(0, 1);
    add(1, 2);
    for (start, end) in [(3u32, 120u32), (120, 240)] {
        let span = end - start;
        for v in start..end {
            // A ring keeps each community connected; the seeded chords
            // vary the distances between fixtures.
            add(v, start + (v + 1 - start) % span);
            add(v, start + ((v - start) * 7 + seed as u32) % span);
            // Every 5th vertex reaches a hub, so cross-community paths
            // exist but all pass through landmarks.
            if v % 5 == 0 {
                add(v, hubs[(v % 3) as usize]);
            }
        }
    }
    let edges: Vec<(u32, u32)> = edges.into_iter().collect();
    (CsrGraph::from_edges(n as usize, &edges), hubs)
}

/// A hub-and-spoke graph where every edge touches a landmark, so
/// `G[V∖R]` is edgeless and *any* partition — including hash — answers
/// every query exactly.
fn hub_star() -> (CsrGraph, Vec<VertexId>) {
    let hubs: Vec<VertexId> = (0..6).collect();
    let n = 150u32;
    let mut edges = Vec::new();
    for h in 1..6u32 {
        edges.push((h - 1, h));
    }
    for v in 6..n {
        edges.push((v, v % 6));
        edges.push((v, (v + 2) % 6));
    }
    (CsrGraph::from_edges(n as usize, &edges), hubs)
}

/// A deterministic mixed workload: same-shard, cross-shard, landmark and
/// identical-endpoint pairs.
fn workload(n: u32, count: usize) -> Vec<(VertexId, VertexId)> {
    (0..count as u32)
        .map(|i| match i % 4 {
            0 => ((i * 7) % (n / 2), (i * 13 + 1) % (n / 2)), // same shard (low)
            1 => (n / 2 + (i * 5) % (n / 2), n / 2 + (i * 11 + 3) % (n / 2)), // same shard (high)
            2 => ((i * 3) % (n / 2), n / 2 + (i * 17 + 2) % (n / 2)), // cross shard
            _ => (i % 3, (i * 19) % n),                       // landmark endpoint
        })
        .collect()
}

struct Deployment {
    shards: Vec<ServerHandle>,
    router: hcl_router::RouterHandle,
}

impl Deployment {
    /// Starts one server per shard graph (replicated labelling) and a
    /// router in front of them.
    fn start(g: &CsrGraph, labelling: &HighwayCoverLabelling, map: &PartitionMap) -> Deployment {
        let shards: Vec<ServerHandle> = (0..map.num_shards())
            .map(|shard| {
                let shard_graph = Arc::new(map.shard_graph(g, shard));
                let service = Arc::new(QueryService::from_parts(
                    shard_graph,
                    Arc::new(labelling.clone()),
                    1 << 10,
                ));
                Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
            })
            .collect();
        let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
        let router =
            Router::bind(map.clone(), &addrs, "127.0.0.1:0", RouterConfig::default()).unwrap();
        Deployment { shards, router }
    }

    fn client(&self) -> Client {
        Client::connect(self.router.local_addr()).unwrap()
    }
}

#[test]
fn range_sharded_router_matches_unsharded_oracle() {
    let (g, hubs) = bridged_communities(1);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g), "fixture must be component-closed");

    let deployment = Deployment::start(&g, &labelling, &map);
    let mut oracle = HlOracle::new(&g, labelling.clone());
    let mut client = deployment.client();

    let pairs = workload(g.num_vertices() as u32, 600);
    // Single queries, one at a time.
    for &(s, t) in pairs.iter().take(200) {
        assert_eq!(client.query(s, t).unwrap(), oracle.query(s, t), "QUERY {s} {t}");
    }
    // One big batch (split/scatter/merge path).
    let expect: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    assert_eq!(client.batch(&pairs).unwrap(), expect);
    // Pipelined singles (response-ordering across scattered queries).
    assert_eq!(client.pipelined_queries(&pairs[..128]).unwrap(), &expect[..128]);
}

#[test]
fn hash_sharded_router_matches_unsharded_oracle() {
    let (g, hubs) = hub_star();
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g), "edgeless G[V∖R] is trivially component-closed");

    let deployment = Deployment::start(&g, &labelling, &map);
    let mut oracle = HlOracle::new(&g, labelling.clone());
    let mut client = deployment.client();

    let pairs = workload(g.num_vertices() as u32, 400);
    let expect: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| oracle.query(s, t)).collect();
    assert_eq!(client.batch(&pairs).unwrap(), expect);
    for &(s, t) in pairs.iter().take(100) {
        assert_eq!(client.query(s, t).unwrap(), oracle.query(s, t), "QUERY {s} {t}");
    }
}

#[test]
fn stats_epoch_and_errors_through_the_router() {
    let (g, hubs) = bridged_communities(2);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let deployment = Deployment::start(&g, &labelling, &map);
    let mut client = deployment.client();

    client.ping().unwrap();
    assert_eq!(client.epoch().unwrap(), 0, "fresh shards agree at epoch 0");

    // One same-shard and one cross-shard query, then check aggregation.
    client.query(10, 20).unwrap();
    client.query(10, 200).unwrap();
    let stats = client.stats().unwrap();
    let get = |key: &str| -> u64 {
        stats
            .split_ascii_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(get("shards"), 2);
    assert_eq!(get("router_queries"), 2);
    assert_eq!(get("router_scatter_queries"), 1);
    // The scattered query hits both shards: 3 shard-side queries total.
    assert_eq!(get("queries"), 3);
    assert_eq!(get("epoch"), 0);
    assert!(get("index_bytes") > 0, "summed shard sizes survive aggregation");

    // Out-of-range queries fail with the server's error shape and leave
    // the connection usable.
    let err = client.query(0, 9999).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    let err = client.batch(&[(0, 1), (9999, 2)]).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
    client.ping().unwrap();

    // Router metrics track the failures.
    assert_eq!(deployment.router.metrics().errors.load(Ordering::Relaxed), 2);
}

#[test]
fn reload_fans_out_under_live_traffic_with_all_or_nothing_confirmation() {
    let dir = std::env::temp_dir().join(format!("hcl_router_reload_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (g1, hubs) = bridged_communities(3);
    let (g2, _) = bridged_communities(11);
    let (l1, _) = HighwayCoverLabelling::build(&g1, &hubs).unwrap();
    let (l2, _) = HighwayCoverLabelling::build(&g2, &hubs).unwrap();
    let map = PartitionMap::range(g1.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g1) && map.respects_components(&g2));

    let dir1 = dir.join("v1");
    let dir2 = dir.join("v2");
    partition::write_deployment(&dir1, &g1, &l1, &map).unwrap();
    partition::write_deployment(&dir2, &g2, &l2, &map).unwrap();

    // Shards start the way `hcl serve` would: from the v1 files.
    let shards: Vec<ServerHandle> = (0..2)
        .map(|shard| {
            let (graph_path, index_path) = partition::shard_paths(dir1.to_str().unwrap(), shard);
            let shard_graph = Arc::new(hcl_graph::io::load_binary(&graph_path).unwrap());
            let index = hcl_core::io::load_labelling(&index_path).unwrap();
            let service = Arc::new(QueryService::from_parts(shard_graph, Arc::new(index), 1 << 10));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
    let router = Router::bind(map.clone(), &addrs, "127.0.0.1:0", RouterConfig::default()).unwrap();

    let pairs = workload(g1.num_vertices() as u32, 200);
    let mut o1 = HlOracle::new(&g1, l1.clone());
    let mut o2 = HlOracle::new(&g2, l2.clone());
    let truth1: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o1.query(s, t)).collect();
    let truth2: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o2.query(s, t)).collect();
    assert_ne!(truth1, truth2, "the two fixtures must differ on this workload");

    // Live traffic across the swap. Shard swaps are not atomic across
    // the deployment, so a batch straddling the reload window may mix
    // generations *across shards* — but every individual answer must
    // come from one valid generation (each pair resolves on one shard's
    // pinned snapshot, or the min of two valid generations).
    let stop = AtomicBool::new(false);
    let addr = router.local_addr();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let (stop, pairs, truth1, truth2) = (&stop, &pairs, &truth1, &truth2);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let got = client.batch(pairs).unwrap();
                    for (i, d) in got.iter().enumerate() {
                        assert!(
                            *d == truth1[i] || *d == truth2[i],
                            "pair {i}: {d:?} matches neither generation \
                             ({:?} / {:?})",
                            truth1[i],
                            truth2[i]
                        );
                    }
                }
            });
        }

        let mut client = Client::connect(addr).unwrap();
        // A reload from a directory that does not exist fails on every
        // shard and must not move any epoch.
        let missing = dir.join("nope");
        let err = client.reload(missing.to_str().unwrap(), None).unwrap_err();
        assert!(err.to_string().contains("reload incomplete"), "{err}");
        assert_eq!(client.epoch().unwrap(), 0, "failed fan-out leaves epochs untouched");

        // The real fan-out: all-or-nothing confirmation of the new epoch.
        let epoch = client.reload(dir2.to_str().unwrap(), None).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(client.epoch().unwrap(), 1, "all shards agree after the fan-out");
        stop.store(true, Ordering::Relaxed);
    });

    // After the swap everything answers on the new deployment.
    let mut client = Client::connect(router.local_addr()).unwrap();
    assert_eq!(client.batch(&pairs).unwrap(), truth2);
    let stats = client.stats().unwrap();
    assert!(stats.contains("router_reloads=1"), "{stats}");

    drop(router);
    drop(shards);
    std::fs::remove_dir_all(&dir).ok();
}

/// The packed flavour of the fan-out: shards serve `.hclx` files
/// zero-copy, the router detects `shard0.hclx` in the target directory
/// and reloads every shard with the single-path `RELOAD dir/shardI.hclx`
/// form — a remap, not a rebuild — with the same all-or-nothing epoch
/// confirmation.
#[test]
fn reload_fans_out_packed_deployments_as_single_path_remaps() {
    let dir = std::env::temp_dir().join(format!("hcl_router_packed_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let (g1, hubs) = bridged_communities(5);
    let (g2, _) = bridged_communities(13);
    let (l1, _) = HighwayCoverLabelling::build(&g1, &hubs).unwrap();
    let (l2, _) = HighwayCoverLabelling::build(&g2, &hubs).unwrap();
    let map = PartitionMap::range(g1.num_vertices(), 2, &hubs);
    assert!(map.respects_components(&g1) && map.respects_components(&g2));

    let dir1 = dir.join("v1");
    let dir2 = dir.join("v2");
    hcl_store::write_packed_deployment(&dir1, &g1, &l1, &map).unwrap();
    hcl_store::write_packed_deployment(&dir2, &g2, &l2, &map).unwrap();

    // Shards start the way `hcl serve dir/shardI.hclx` would: packed.
    let shards: Vec<ServerHandle> = (0..2)
        .map(|shard| {
            let path = partition::shard_packed_path(dir1.to_str().unwrap(), shard);
            let oracle = hcl_store::PackedOracle::open(&path).unwrap();
            let service = Arc::new(QueryService::with_index(
                hcl_server::ServingIndex::Packed(oracle),
                1 << 10,
            ));
            Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap()
        })
        .collect();
    let addrs: Vec<_> = shards.iter().map(|s| s.local_addr()).collect();
    let router = Router::bind(map.clone(), &addrs, "127.0.0.1:0", RouterConfig::default()).unwrap();

    let pairs = workload(g1.num_vertices() as u32, 200);
    let mut o1 = HlOracle::new(&g1, l1.clone());
    let mut o2 = HlOracle::new(&g2, l2.clone());
    let truth1: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o1.query(s, t)).collect();
    let truth2: Vec<Option<u32>> = pairs.iter().map(|&(s, t)| o2.query(s, t)).collect();
    assert_ne!(truth1, truth2, "the two fixtures must differ on this workload");

    let mut client = Client::connect(router.local_addr()).unwrap();
    assert_eq!(client.batch(&pairs).unwrap(), truth1, "packed shards serve v1 exactly");

    let epoch = client.reload(dir2.to_str().unwrap(), None).unwrap();
    assert_eq!(epoch, 1);
    assert_eq!(client.epoch().unwrap(), 1, "all shards agree after the packed fan-out");
    assert_eq!(client.batch(&pairs).unwrap(), truth2, "answers swap to the v2 deployment");

    drop(router);
    drop(shards);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_shutdown_leaves_shards_running() {
    let (g, hubs) = hub_star();
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    let deployment = Deployment::start(&g, &labelling, &map);

    let mut client = deployment.client();
    client.query(7, 8).unwrap();
    client.shutdown_server().unwrap();
    deployment.router.join();
    assert!(deployment.router.is_shutting_down());

    // The shards never saw the SHUTDOWN.
    for shard in &deployment.shards {
        assert!(!shard.is_shutting_down());
        let mut direct = Client::connect(shard.local_addr()).unwrap();
        direct.ping().unwrap();
    }
}

#[test]
fn dead_shard_fails_fast_with_err_and_spares_the_other_shard() {
    let (g, hubs) = bridged_communities(5);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
    let map = PartitionMap::range(g.num_vertices(), 2, &hubs);
    let deployment = Deployment::start(&g, &labelling, &map);
    let mut oracle = HlOracle::new(&g, labelling.clone());
    let mut client = deployment.client();
    client.ping().unwrap();

    // Kill shard 0. Requests owned by it must be answered with an ERR
    // line promptly — never left hanging in an unresolved slot (the
    // synchronous-submit-failure path: the router reconnect fails while
    // the client's Conn is held on the reactor's stack).
    deployment.shards[0].shutdown();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        // (10, 20): both owned by shard 0. The first attempts may still
        // ride the not-yet-torn-down socket; once the router notices the
        // EOF every attempt must fail fast.
        match client.query(10, 20) {
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains("shard 0 unavailable"), "{msg}");
                break;
            }
            Ok(_) if std::time::Instant::now() > deadline => {
                panic!("queries to the dead shard kept succeeding");
            }
            Ok(_) => std::thread::yield_now(),
        }
        assert!(std::time::Instant::now() < deadline, "no ERR before deadline");
    }

    // The connection is still usable and the healthy shard still answers.
    client.ping().unwrap();
    let (s, t) = (200, 210); // both owned by shard 1
    assert_eq!(client.query(s, t).unwrap(), oracle.query(s, t));
    // Scattered queries touching the dead shard also fail with ERR.
    let err = client.query(10, 200).unwrap_err();
    assert!(err.to_string().contains("shard 0 unavailable"), "{err}");
}

#[test]
fn router_rejects_mismatched_shard_count() {
    let (g, hubs) = hub_star();
    let map = PartitionMap::hash(g.num_vertices(), 2, &hubs);
    let err =
        Router::bind(map, &["127.0.0.1:1".to_string()], "127.0.0.1:0", RouterConfig::default())
            .map(|_| ())
            .unwrap_err();
    assert!(err.to_string().contains("2 shards"), "{err}");
}
