//! The router entry point: [`Router::bind`] /
//! [`Router::bind_replicated`] wire a partition map and the shard
//! (replica) addresses onto a listening socket and run the proxy on one
//! reactor thread owned by the returned [`RouterHandle`].

use crate::reactor;
use hcl_core::PartitionMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Router::bind`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Most client connections held open at once; overflow is answered
    /// with one `ERR` line and closed (counted in
    /// `router_rejected_connections`).
    pub max_connections: usize,
    /// Close client connections with no progress for this long. Zero
    /// disables the timeout.
    pub idle_timeout: Duration,
    /// Once shutdown begins, how long client connections may take to
    /// drain before being force-closed.
    pub drain_grace: Duration,
    /// Requests in flight per replica connection; excess requests queue
    /// at the router and dispatch as responses drain the window.
    pub shard_window: usize,
    /// How often an idle, connected replica is sent a `PING` health
    /// probe (traffic doubles as liveness, so probes only flow on quiet
    /// connections). Zero disables probing.
    pub probe_interval: Duration,
    /// How long an unanswered probe may sit before the replica is
    /// declared dead and failed over.
    pub probe_timeout: Duration,
    /// How long a request may wait parked behind an in-progress replica
    /// connect before it degrades (or errors).
    pub park_timeout: Duration,
    /// Bound on how long a client connection may sit with in-flight
    /// requests making **no completion progress** before it is reaped —
    /// the router-side cover for a completion lost beyond the retry and
    /// backoff budget. Zero leaves the exemption unbounded.
    pub completion_deadline: Duration,
    /// Most requests parked per replica group while its replicas
    /// reconnect; overflow is answered `ERR busy` immediately (counted
    /// in `router_parked_dropped`) instead of growing the parked queue
    /// without bound while a shard flaps. Zero disables the bound.
    pub max_parked: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_connections: 1024,
            idle_timeout: Duration::from_secs(600),
            drain_grace: Duration::from_secs(5),
            shard_window: 256,
            probe_interval: Duration::from_secs(2),
            probe_timeout: Duration::from_secs(1),
            park_timeout: Duration::from_secs(3),
            completion_deadline: Duration::from_secs(15),
            max_parked: 1024,
        }
    }
}

/// The router's own lock-free counters, reported as `router_*` keys in
/// aggregated `STATS` responses and in full under `METRICS`.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Client connections accepted over the router's lifetime.
    pub connections: AtomicU64,
    /// Client connections currently open.
    pub active_connections: AtomicU64,
    /// Client connections refused at `max_connections`.
    pub rejected_connections: AtomicU64,
    /// Client connections reaped by the idle timer or the completion
    /// deadline.
    pub timed_out_connections: AtomicU64,
    /// `QUERY` requests routed.
    pub queries: AtomicU64,
    /// `QUERY` requests that needed two shards (cross-shard pairs).
    pub scatter_queries: AtomicU64,
    /// `BATCH` requests routed.
    pub batch_requests: AtomicU64,
    /// Requests answered with an `ERR` line (including shard failures).
    pub errors: AtomicU64,
    /// `RELOAD` fan-outs confirmed by every replica.
    pub reloads: AtomicU64,
    /// `UPDATE` fan-outs confirmed by every replica of every owning
    /// shard (all-or-nothing, like reloads).
    pub updates: AtomicU64,
    /// Replica connections torn down after a failure (each surrenders
    /// its in-flight requests for re-dispatch).
    pub failovers: AtomicU64,
    /// Requests re-dispatched to a sibling replica after a failure.
    pub retries: AtomicU64,
    /// Requests answered from a foreign shard's labels (`DIST~` /
    /// `DISTS~`) because their home shard had no healthy replica.
    pub degraded: AtomicU64,
    /// Health probes sent.
    pub probes: AtomicU64,
    /// Health probes that timed out (each fails its replica over).
    pub probe_failures: AtomicU64,
    /// Requests refused `ERR busy` because their replica group's parked
    /// queue was full (every replica reconnecting and `max_parked`
    /// already waiting).
    pub parked_dropped: AtomicU64,
}

impl RouterMetrics {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn drop_one(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// The `router_* … shards=N` prefix of an aggregated `STATS` body.
    pub(crate) fn stats_prefix(&self, shards: u32) -> String {
        format!(
            "router_connections={} router_active_connections={} \
             router_rejected_connections={} router_queries={} router_scatter_queries={} \
             router_batch_requests={} router_errors={} router_reloads={} \
             router_updates={} router_failovers={} router_degraded={} \
             router_parked_dropped={} shards={shards}",
            self.connections.load(Ordering::Relaxed),
            self.active_connections.load(Ordering::Relaxed),
            self.rejected_connections.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.scatter_queries.load(Ordering::Relaxed),
            self.batch_requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.reloads.load(Ordering::Relaxed),
            self.updates.load(Ordering::Relaxed),
            self.failovers.load(Ordering::Relaxed),
            self.degraded.load(Ordering::Relaxed),
            self.parked_dropped.load(Ordering::Relaxed),
        )
    }
}

/// State shared by the reactor thread and the handle.
pub(crate) struct Shared {
    pub partition: PartitionMap,
    /// `replica_addrs[shard]` lists the interchangeable replicas serving
    /// that shard (every replica holds the same shard index).
    pub replica_addrs: Vec<Vec<SocketAddr>>,
    pub config: RouterConfig,
    pub metrics: RouterMetrics,
    pub shutdown: AtomicBool,
    pub local_addr: SocketAddr,
    /// Wakes the reactor's epoll wait for shutdown.
    pub wake: hcl_server::transport::EventFd,
}

impl Shared {
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.wake.signal();
        }
    }

    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The router entry point.
pub struct Router;

impl Router {
    /// Binds `addr` and starts proxying for `partition` across `shards`
    /// (one address per shard, indexed by shard id) — the single-replica
    /// special case of [`bind_replicated`](Self::bind_replicated).
    ///
    /// Shard connections are established *asynchronously* by the reactor
    /// with backoff and retry: a dead shard no longer fails the bind,
    /// it degrades the affected queries until it comes back.
    ///
    /// # Errors
    ///
    /// Fails when the shard count does not match the partition, an
    /// address does not resolve, or the listening socket cannot be
    /// bound.
    pub fn bind(
        partition: PartitionMap,
        shards: &[impl ToSocketAddrs],
        addr: impl ToSocketAddrs,
        config: RouterConfig,
    ) -> io::Result<RouterHandle> {
        let mut groups = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            groups.push(vec![resolve(shard, i, 0)?]);
        }
        Self::bind_resolved(partition, groups, addr, config)
    }

    /// Binds `addr` and starts proxying for `partition` across replica
    /// `groups`: `groups[shard]` lists the interchangeable replicas
    /// serving that shard (each holds the same shard index). Requests go
    /// to the first healthy replica of their shard and fail over to
    /// siblings mid-flight; when none is healthy, queries degrade to a
    /// label-only upper bound (`DIST~`) from any live replica.
    ///
    /// # Errors
    ///
    /// Fails when the group count does not match the partition, a group
    /// is empty, an address does not resolve, or the listening socket
    /// cannot be bound.
    pub fn bind_replicated<S: ToSocketAddrs>(
        partition: PartitionMap,
        groups: &[Vec<S>],
        addr: impl ToSocketAddrs,
        config: RouterConfig,
    ) -> io::Result<RouterHandle> {
        let mut resolved_groups = Vec::with_capacity(groups.len());
        for (shard, group) in groups.iter().enumerate() {
            if group.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("shard {shard}: empty replica group"),
                ));
            }
            let mut replicas = Vec::with_capacity(group.len());
            for (r, replica) in group.iter().enumerate() {
                replicas.push(resolve(replica, shard, r)?);
            }
            resolved_groups.push(replicas);
        }
        Self::bind_resolved(partition, resolved_groups, addr, config)
    }

    fn bind_resolved(
        partition: PartitionMap,
        replica_addrs: Vec<Vec<SocketAddr>>,
        addr: impl ToSocketAddrs,
        config: RouterConfig,
    ) -> io::Result<RouterHandle> {
        if replica_addrs.len() != partition.num_shards() as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "partition expects {} shards, {} addresses given",
                    partition.num_shards(),
                    replica_addrs.len()
                ),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            partition,
            replica_addrs,
            config,
            metrics: RouterMetrics::default(),
            shutdown: AtomicBool::new(false),
            local_addr,
            wake: hcl_server::transport::EventFd::new()?,
        });
        let thread = reactor::spawn(Arc::clone(&shared), listener)?;
        Ok(RouterHandle { shared, thread: Mutex::new(Some(thread)) })
    }
}

fn resolve(addr: &impl ToSocketAddrs, shard: usize, replica: usize) -> io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("shard {shard} replica {replica}: no address"),
        )
    })
}

/// Owns the reactor thread; dropping it shuts the router down (backend
/// shards are left running — they are managed independently).
pub struct RouterHandle {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl RouterHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The router's own counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Initiates graceful shutdown and waits for client connections to
    /// drain. Idempotent. Shards keep running.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Blocks until the router stops (via [`shutdown`](Self::shutdown) or
    /// a client `SHUTDOWN` request).
    pub fn join(&self) {
        let handle = self.thread.lock().expect("reactor handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join();
    }
}
