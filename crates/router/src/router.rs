//! The router entry point: [`Router::bind`] wires a partition map and a
//! list of shard addresses onto a listening socket and runs the proxy on
//! one reactor thread owned by the returned [`RouterHandle`].

use crate::reactor;
use hcl_core::PartitionMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables for [`Router::bind`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Most client connections held open at once; overflow is answered
    /// with one `ERR` line and closed (counted in
    /// `router_rejected_connections`).
    pub max_connections: usize,
    /// Close client connections with no progress for this long. Zero
    /// disables the timeout.
    pub idle_timeout: Duration,
    /// Once shutdown begins, how long client connections may take to
    /// drain before being force-closed.
    pub drain_grace: Duration,
    /// Requests in flight per shard connection; excess requests queue at
    /// the router and dispatch as responses drain the window.
    pub shard_window: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_connections: 1024,
            idle_timeout: Duration::from_secs(600),
            drain_grace: Duration::from_secs(5),
            shard_window: 256,
        }
    }
}

/// The router's own lock-free counters, reported as `router_*` keys in
/// aggregated `STATS` responses.
#[derive(Debug, Default)]
pub struct RouterMetrics {
    /// Client connections accepted over the router's lifetime.
    pub connections: AtomicU64,
    /// Client connections currently open.
    pub active_connections: AtomicU64,
    /// Client connections refused at `max_connections`.
    pub rejected_connections: AtomicU64,
    /// `QUERY` requests routed.
    pub queries: AtomicU64,
    /// `QUERY` requests that needed two shards (cross-shard pairs).
    pub scatter_queries: AtomicU64,
    /// `BATCH` requests routed.
    pub batch_requests: AtomicU64,
    /// Requests answered with an `ERR` line (including shard failures).
    pub errors: AtomicU64,
    /// `RELOAD` fan-outs confirmed by every shard.
    pub reloads: AtomicU64,
}

impl RouterMetrics {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn drop_one(counter: &AtomicU64) {
        counter.fetch_sub(1, Ordering::Relaxed);
    }

    /// The `router_* … shards=N` prefix of an aggregated `STATS` body.
    pub(crate) fn stats_prefix(&self, shards: u32) -> String {
        format!(
            "router_connections={} router_active_connections={} \
             router_rejected_connections={} router_queries={} router_scatter_queries={} \
             router_batch_requests={} router_errors={} router_reloads={} shards={shards}",
            self.connections.load(Ordering::Relaxed),
            self.active_connections.load(Ordering::Relaxed),
            self.rejected_connections.load(Ordering::Relaxed),
            self.queries.load(Ordering::Relaxed),
            self.scatter_queries.load(Ordering::Relaxed),
            self.batch_requests.load(Ordering::Relaxed),
            self.errors.load(Ordering::Relaxed),
            self.reloads.load(Ordering::Relaxed),
        )
    }
}

/// State shared by the reactor thread and the handle.
pub(crate) struct Shared {
    pub partition: PartitionMap,
    pub shard_addrs: Vec<SocketAddr>,
    pub config: RouterConfig,
    pub metrics: RouterMetrics,
    pub shutdown: AtomicBool,
    pub local_addr: SocketAddr,
    /// Wakes the reactor's epoll wait for shutdown.
    pub wake: hcl_server::transport::EventFd,
}

impl Shared {
    pub fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.wake.signal();
        }
    }

    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// The router entry point.
pub struct Router;

impl Router {
    /// Binds `addr` and starts proxying for `partition` across `shards`
    /// (one address per shard, indexed by shard id). Every shard's data
    /// connection is established here, so a dead shard fails the bind
    /// instead of the first query. Returns immediately; proxying happens
    /// on the reactor thread owned by the returned handle.
    ///
    /// # Errors
    ///
    /// Fails when the shard count does not match the partition, an
    /// address does not resolve, a shard is unreachable, or the listening
    /// socket cannot be bound.
    pub fn bind(
        partition: PartitionMap,
        shards: &[impl ToSocketAddrs],
        addr: impl ToSocketAddrs,
        config: RouterConfig,
    ) -> io::Result<RouterHandle> {
        if shards.len() != partition.num_shards() as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "partition expects {} shards, {} addresses given",
                    partition.num_shards(),
                    shards.len()
                ),
            ));
        }
        let mut shard_addrs = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter().enumerate() {
            let resolved = shard.to_socket_addrs()?.next().ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("shard {i}: no address"))
            })?;
            shard_addrs.push(resolved);
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            partition,
            shard_addrs,
            config,
            metrics: RouterMetrics::default(),
            shutdown: AtomicBool::new(false),
            local_addr,
            wake: hcl_server::transport::EventFd::new()?,
        });
        let thread = reactor::spawn(Arc::clone(&shared), listener)?;
        Ok(RouterHandle { shared, thread: Mutex::new(Some(thread)) })
    }
}

/// Owns the reactor thread; dropping it shuts the router down (backend
/// shards are left running — they are managed independently).
pub struct RouterHandle {
    shared: Arc<Shared>,
    thread: Mutex<Option<JoinHandle<()>>>,
}

impl RouterHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The router's own counters.
    pub fn metrics(&self) -> &RouterMetrics {
        &self.shared.metrics
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }

    /// Initiates graceful shutdown and waits for client connections to
    /// drain. Idempotent. Shards keep running.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
        self.join();
    }

    /// Blocks until the router stops (via [`shutdown`](Self::shutdown) or
    /// a client `SHUTDOWN` request).
    pub fn join(&self) {
        let handle = self.thread.lock().expect("reactor handle poisoned").take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        self.join();
    }
}
