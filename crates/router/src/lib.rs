//! `hcl-router` — a horizontal sharding router for the `hcl-serve` line
//! protocol.
//!
//! One `hcl serve` process tops out at one machine's memory. This crate
//! is the first step past that: a thin, std-only proxy that spreads the
//! vertex set across N backend shards (each an *ordinary* `hcl serve`
//! process over its slice of the graph plus the replicated global
//! labelling — see [`hcl_core::partition`]) while exposing the **same**
//! wire protocol to clients, so `hcl client` works unchanged against a
//! sharded deployment.
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`router`] | [`Router::bind`], [`RouterConfig`], [`RouterHandle`], [`RouterMetrics`] |
//! | [`aggregate`] | the pure merge logic: batch splitting by shard, min-merge of scattered answers, `STATS` summing, epoch agreement |
//! | `reactor` | the single-threaded epoll event loop multiplexing client connections onto pooled upstream connections |
//! | `upstream` | one pipelined shard connection: write buffer, in-flight window with backlog, in-order response matching |
//!
//! # How requests route
//!
//! * `QUERY s t` — same owner (or a landmark endpoint): forwarded to one
//!   shard and its response relayed verbatim. Different owners:
//!   scattered to both owning shards and answered with the minimum
//!   (`INF`-aware) of the two distances.
//! * `BATCH` — split into at most one sub-batch per shard (cross-shard
//!   pairs appear in both owners' sub-batches), scattered, and re-merged
//!   into input order.
//! * `STATS` — fanned out to every shard; numeric counters are summed
//!   (`epoch` is reported as the minimum) and the router prepends its own
//!   `router_*` counters plus `shards=N`.
//! * `EPOCH` — fanned out; answered only when every shard agrees.
//! * `RELOAD dir` — fanned out as `RELOAD dir/shardI.hclg dir/index.hcl`,
//!   or as the single-path `RELOAD dir/shardI.hclx` when the directory
//!   holds a packed (`hcl-store`) deployment (detected by `shard0.hclx`;
//!   shards then reload by remapping, not rebuilding), each over a
//!   dedicated control connection per shard (so seconds-long
//!   rebuilds never stall pipelined query traffic), with all-or-nothing
//!   **confirmation**: the router replies `RELOADED e` only when every
//!   shard swapped to the same new epoch, and otherwise reports each
//!   shard's outcome in one `ERR` line.
//! * `PING` / malformed input — handled locally, exactly like the server.
//!
//! Exactness of sharded answers is a property of the partition, not the
//! router; see [`hcl_core::partition`] for the conditions and
//! `docs/PROTOCOL.md` for the normative wire behaviour.
//!
//! # Ordering
//!
//! Upstream responses are matched to requests by position: the protocol
//! guarantees per-connection responses in request order, so each upstream
//! connection keeps a FIFO of in-flight request ids. Client-facing order
//! is restored per connection by the same ordered response slots the
//! server uses ([`hcl_server::transport::Conn`]), so pipelined clients
//! observe request order no matter how shard responses interleave.

pub mod aggregate;
mod reactor;
pub mod router;
mod upstream;

pub use router::{Router, RouterConfig, RouterHandle, RouterMetrics};
