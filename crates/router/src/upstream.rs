//! One pipelined connection to a backend shard **replica**, as a
//! non-blocking state machine.
//!
//! The router multiplexes every client onto a small, fixed set of
//! replica connections: requests are appended to a write buffer and
//! answered in order (the protocol guarantees per-connection responses
//! in request order), so matching is a FIFO of [`PendingRequest`]
//! descriptors — no request-id needs to cross the wire. An in-flight
//! *window* bounds how many requests may be outstanding per replica;
//! excess requests queue in a backlog and dispatch as responses drain
//! the window.
//!
//! Connection management never blocks the reactor:
//!
//! ```text
//!             start_connect()                try_complete_connect()
//!   Idle ──────────────────────▶ Connecting ───────────────────────▶ Connected
//!    ▲                              │  (EPOLLOUT + SO_ERROR == 0)        │
//!    │                              │                                    │
//!    │  backoff elapses ◀── BackingOff ◀──── fail(): connect timeout /   │
//!    │  (can_attempt)               ▲        refusal / socket error ◀────┘
//!    └──────────────────────────────┘
//! ```
//!
//! A failed replica enters [`State::BackingOff`] with jittered
//! exponential backoff (50 ms doubling to a 2 s cap, uniform jitter in
//! `[d/2, d]` so a restarted shard is not hit by every waiter at once).
//! [`fail`](Upstream::fail) surrenders every request the connection
//! still owed an answer — **with the encoded bytes retained** — so the
//! reactor can re-dispatch them verbatim to a sibling replica.

use hcl_server::transport::{fault, sys};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Longest response line accepted from a shard. `DISTS` for a maximal
/// batch dominates; anything past this is a corrupt upstream.
pub(crate) const MAX_UPSTREAM_LINE: usize = 64 * 1024 * 1024;

/// How long an in-progress connect may sit without a verdict before the
/// attempt is failed. Shards are LAN/loopback neighbours; a replica that
/// cannot accept within this is down (or blackholed) and affected
/// requests fail over. The reactor enforces this via
/// [`connect_deadline`](Upstream::connect_deadline) — nothing blocks.
pub(crate) const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// First retry delay after a failure.
const BACKOFF_BASE_MS: u64 = 50;

/// Backoff ceiling.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Sentinel `request_id` for router-originated health probes (`PING`):
/// their responses update replica state and never feed a client
/// aggregation.
pub(crate) const PROBE_ID: u64 = u64::MAX;

/// One request owed a response: the aggregation entry it feeds, where
/// its answers land, and everything needed to re-dispatch it to a
/// sibling replica if this one dies first.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Key into the reactor's in-flight aggregation map ([`PROBE_ID`]
    /// for health probes).
    pub request_id: u64,
    /// The shard this request was routed to — failover re-dispatches to
    /// a sibling replica of the *same* shard.
    pub home_shard: u32,
    /// For `BATCH` slices: client-response positions, in slice order
    /// (also fixes the expected answer count).
    pub positions: Option<Vec<u32>>,
    /// The raw request bytes, including every newline — retained while
    /// in flight so failover can resend verbatim.
    pub bytes: Vec<u8>,
    /// How many replicas have already failed to answer this request.
    pub retries: u32,
    /// Set when the request was re-routed to a foreign shard for a
    /// label-only upper bound (no healthy replica of `home_shard`); the
    /// response is tagged `DIST~` / `DISTS~`.
    pub degraded: bool,
}

/// Live socket state of a connected replica.
#[derive(Debug)]
struct Wire {
    stream: TcpStream,
    out: Vec<u8>,
    out_pos: usize,
    /// Incoming bytes not yet consumed as complete lines.
    rbuf: Vec<u8>,
    /// Prefix of `rbuf` already consumed.
    rstart: usize,
    /// Responses owed, in request order.
    pending: VecDeque<PendingRequest>,
}

impl Wire {
    fn new(stream: TcpStream) -> Wire {
        Wire {
            stream,
            out: Vec::new(),
            out_pos: 0,
            rbuf: Vec::new(),
            rstart: 0,
            pending: VecDeque::new(),
        }
    }
}

/// Where a replica connection currently stands; see the module docs.
#[derive(Debug)]
enum State {
    /// Never attempted (or freshly reset); may connect immediately.
    Idle,
    /// Non-blocking connect in flight (`EINPROGRESS`); the verdict
    /// arrives as `EPOLLOUT` + `SO_ERROR`, or the deadline fails it.
    Connecting { stream: TcpStream, deadline: Instant },
    /// Established and exchanging requests.
    Connected(Wire),
    /// Recently failed; no reconnect until `until`.
    BackingOff { until: Instant },
}

/// One replica connection with windowed pipelining and non-blocking
/// reconnect; see the module docs.
#[derive(Debug)]
pub(crate) struct Upstream {
    addr: SocketAddr,
    window: usize,
    state: State,
    backlog: VecDeque<PendingRequest>,
    /// epoll interest bits currently registered for the live fd.
    registered: u32,
    /// Consecutive failures since the replica last proved alive
    /// (controls the backoff exponent; reset by
    /// [`note_alive`](Self::note_alive), **not** by a mere connect — a
    /// replica that accepts and immediately dies must keep escalating).
    attempt: u32,
    /// splitmix64 state for backoff jitter.
    rng: u64,
    /// Lifetime connection/transport failures (metrics).
    pub failures: u64,
    /// When the next health probe is due (`None` = not scheduled; the
    /// reactor schedules it on connect and after each response).
    pub next_probe_at: Option<Instant>,
    /// When the currently outstanding probe was written (`None` = no
    /// probe in flight); also the probe's timeout anchor.
    pub probe_sent_at: Option<Instant>,
    /// Latency of the last completed probe, microseconds (metrics).
    pub last_probe_us: u64,
}

impl Upstream {
    /// A replica in [`State::Idle`] — nothing connects until the
    /// reactor calls [`start_connect`](Self::start_connect).
    pub fn new(addr: SocketAddr, window: usize) -> Upstream {
        // Seed jitter from the address and the clock so co-located
        // routers (and a router's own replicas) don't share a schedule.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64 ^ u64::from(addr.port());
        if let Ok(t) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            seed ^= u64::from(t.subsec_nanos()) ^ (t.as_secs() << 32);
        }
        Upstream {
            addr,
            window,
            state: State::Idle,
            backlog: VecDeque::new(),
            registered: 0,
            attempt: 0,
            rng: seed,
            failures: 0,
            next_probe_at: None,
            probe_sent_at: None,
            last_probe_us: 0,
        }
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn is_connected(&self) -> bool {
        matches!(self.state, State::Connected(_))
    }

    pub fn is_connecting(&self) -> bool {
        matches!(self.state, State::Connecting { .. })
    }

    /// The state as a stable lowercase word (for `METRICS`).
    pub fn state_name(&self) -> &'static str {
        match self.state {
            State::Idle => "idle",
            State::Connecting { .. } => "connecting",
            State::Connected(_) => "connected",
            State::BackingOff { .. } => "backoff",
        }
    }

    /// The live socket's fd (connecting or connected), if any.
    pub fn fd(&self) -> Option<RawFd> {
        match &self.state {
            State::Connecting { stream, .. } => Some(stream.as_raw_fd()),
            State::Connected(wire) => Some(wire.stream.as_raw_fd()),
            _ => None,
        }
    }

    /// Currently registered epoll interest bits.
    pub fn registered(&self) -> u32 {
        self.registered
    }

    /// Records the interest bits the caller just registered.
    pub fn set_registered(&mut self, bits: u32) {
        self.registered = bits;
    }

    /// Whether a connect attempt is allowed right now (idle, or the
    /// backoff has elapsed).
    pub fn can_attempt(&self, now: Instant) -> bool {
        match self.state {
            State::Idle => true,
            State::BackingOff { until } => now >= until,
            _ => false,
        }
    }

    /// Kicks off a non-blocking connect. On success returns the new fd
    /// for the caller to register with epoll (the connect may already
    /// have completed — loopback often does — check
    /// [`is_connected`](Self::is_connected)). On error the caller
    /// should [`fail`](Self::fail) the replica to start its backoff.
    pub fn start_connect(&mut self, now: Instant) -> io::Result<RawFd> {
        debug_assert!(self.can_attempt(now));
        let (stream, in_progress) = sys::connect_nonblocking(&self.addr)?;
        let fd = stream.as_raw_fd();
        self.registered = 0;
        self.probe_sent_at = None;
        self.state = if in_progress {
            State::Connecting { stream, deadline: now + CONNECT_TIMEOUT }
        } else {
            stream.set_nodelay(true).ok();
            State::Connected(Wire::new(stream))
        };
        Ok(fd)
    }

    /// Checks an in-progress connect after `EPOLLOUT` (or any event) on
    /// its fd. `Ok(true)`: now connected. `Ok(false)`: still in
    /// progress (spurious wakeup). `Err`: the connect failed — the
    /// caller should [`fail`](Self::fail) the replica.
    pub fn try_complete_connect(&mut self) -> io::Result<bool> {
        let State::Connecting { stream, .. } = &self.state else {
            return Ok(self.is_connected());
        };
        sys::socket_error(stream.as_raw_fd())?;
        // SO_ERROR is 0 while the handshake is still in flight too;
        // only a real peer address proves completion.
        match stream.peer_addr() {
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::NotConnected => return Ok(false),
            Err(e) => return Err(e),
        }
        let State::Connecting { stream, .. } = std::mem::replace(&mut self.state, State::Idle)
        else {
            unreachable!()
        };
        stream.set_nodelay(true).ok();
        self.state = State::Connected(Wire::new(stream));
        Ok(true)
    }

    /// The in-progress connect's give-up time, if connecting.
    pub fn connect_deadline(&self) -> Option<Instant> {
        match self.state {
            State::Connecting { deadline, .. } => Some(deadline),
            _ => None,
        }
    }

    /// When backoff ends and a reconnect may be attempted, if backing
    /// off.
    pub fn backoff_until(&self) -> Option<Instant> {
        match self.state {
            State::BackingOff { until } => Some(until),
            _ => None,
        }
    }

    /// The replica answered something: reset the backoff escalation.
    pub fn note_alive(&mut self) {
        self.attempt = 0;
    }

    /// Consecutive failures since the replica last answered (metrics).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Tears down whatever the state holds (closing the fd deregisters
    /// it from epoll automatically), starts the next backoff window,
    /// and returns every request still owed an answer — in flight
    /// first, then backlog — with their bytes intact so the caller can
    /// fail them over to a sibling replica. Router-originated probes
    /// are dropped, not surrendered: their "response" is this failure.
    pub fn fail(&mut self, now: Instant) -> Vec<PendingRequest> {
        let mut owed = Vec::new();
        if let State::Connected(wire) = std::mem::replace(&mut self.state, State::Idle) {
            owed.extend(wire.pending);
        }
        owed.extend(self.backlog.drain(..));
        owed.retain(|p| p.request_id != PROBE_ID);
        let shift = self.attempt.min(5);
        let base = (BACKOFF_BASE_MS << shift).min(BACKOFF_CAP_MS);
        let jitter = base / 2 + self.next_rand() % (base / 2 + 1);
        self.state = State::BackingOff { until: now + Duration::from_millis(jitter) };
        self.attempt = self.attempt.saturating_add(1);
        self.failures += 1;
        self.registered = 0;
        self.probe_sent_at = None;
        self.next_probe_at = None;
        owed
    }

    /// Queues a request; it reaches the wire once the replica is
    /// connected and the in-flight window has room (callers follow up
    /// with [`pump`](Self::pump) / [`try_write`](Self::try_write)).
    pub fn submit(&mut self, request: PendingRequest) {
        self.backlog.push_back(request);
    }

    /// Moves backlogged requests onto the write buffer while the window
    /// allows.
    pub fn pump(&mut self) {
        let State::Connected(wire) = &mut self.state else { return };
        while wire.pending.len() < self.window {
            let Some(request) = self.backlog.pop_front() else { break };
            wire.out.extend_from_slice(&request.bytes);
            wire.pending.push_back(request);
        }
    }

    /// Nonblocking flush of the write buffer. `Err` means the
    /// connection is unusable ([`fail`](Self::fail) it).
    pub fn try_write(&mut self) -> io::Result<()> {
        let State::Connected(wire) = &mut self.state else { return Ok(()) };
        while wire.out_pos < wire.out.len() {
            // Fault hook at the syscall result, inside the retry loop, so
            // injected EINTR/EAGAIN/resets take the same arms real ones do.
            let pending = wire.out.len() - wire.out_pos;
            let result = match fault::check(fault::Op::UpstreamWrite) {
                fault::Verdict::Proceed => (&wire.stream).write(&wire.out[wire.out_pos..]),
                fault::Verdict::Short(n) => {
                    let n = n.clamp(1, pending);
                    (&wire.stream).write(&wire.out[wire.out_pos..wire.out_pos + n])
                }
                fault::Verdict::Fail(e) => Err(e),
                fault::Verdict::Eof => Ok(0),
            };
            match result {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => wire.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if wire.out_pos == wire.out.len() {
            wire.out.clear();
            wire.out_pos = 0;
        }
        Ok(())
    }

    /// Reads whatever the replica sent and resolves complete response
    /// lines against the pending FIFO, appending `(pending, line)`
    /// pairs to `resolved`. `Err` means the connection is unusable
    /// (EOF, transport error, oversized or unsolicited response line) —
    /// [`fail`](Self::fail) it.
    pub fn try_read(
        &mut self,
        scratch: &mut [u8],
        resolved: &mut Vec<(PendingRequest, String)>,
    ) -> io::Result<()> {
        let State::Connected(wire) = &mut self.state else { return Ok(()) };
        loop {
            let result = match fault::check(fault::Op::UpstreamRead) {
                fault::Verdict::Proceed => (&wire.stream).read(scratch),
                fault::Verdict::Short(n) => {
                    let n = n.clamp(1, scratch.len());
                    (&wire.stream).read(&mut scratch[..n])
                }
                fault::Verdict::Fail(e) => Err(e),
                fault::Verdict::Eof => Ok(0),
            };
            match result {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => wire.rbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
            while let Some(nl) = wire.rbuf[wire.rstart..].iter().position(|&b| b == b'\n') {
                let end = wire.rstart + nl;
                let mut line_end = end;
                while line_end > wire.rstart && wire.rbuf[line_end - 1] == b'\r' {
                    line_end -= 1;
                }
                let line = String::from_utf8_lossy(&wire.rbuf[wire.rstart..line_end]).into_owned();
                wire.rstart = end + 1;
                match wire.pending.pop_front() {
                    Some(pending) => resolved.push((pending, line)),
                    // A response nothing asked for: protocol desync.
                    None => return Err(io::ErrorKind::InvalidData.into()),
                }
            }
            if wire.rstart > 0 {
                wire.rbuf.drain(..wire.rstart);
                wire.rstart = 0;
            }
            if wire.rbuf.len() > MAX_UPSTREAM_LINE {
                return Err(io::ErrorKind::InvalidData.into());
            }
        }
        Ok(())
    }

    /// Responses currently owed by the wire (in-flight requests).
    pub fn pending_len(&self) -> usize {
        match &self.state {
            State::Connected(wire) => wire.pending.len(),
            _ => 0,
        }
    }

    /// Requests queued behind the window (or behind a reconnect).
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// The epoll interest matching the current state: a connecting
    /// socket waits for writability (the connect verdict); a connected
    /// one is always readable (responses arrive unprompted once
    /// requests are in flight), plus writable while output is buffered.
    pub fn desired_interest(&self) -> u32 {
        match &self.state {
            State::Connecting { .. } => sys::EPOLLOUT,
            State::Connected(wire) => {
                let mut bits = sys::EPOLLIN | sys::EPOLLRDHUP;
                if wire.out_pos < wire.out.len() {
                    bits |= sys::EPOLLOUT;
                }
                bits
            }
            _ => 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_server::transport::{sys::EpollEvent, Epoll};
    use std::net::TcpListener;

    fn request(id: u64, text: &str) -> PendingRequest {
        PendingRequest {
            request_id: id,
            home_shard: 0,
            positions: None,
            bytes: format!("{text}\n").into_bytes(),
            retries: 0,
            degraded: false,
        }
    }

    /// Drives the non-blocking connect to completion (test convenience;
    /// the reactor does this via its epoll loop).
    fn connect_sync(addr: SocketAddr, window: usize) -> Upstream {
        let mut upstream = Upstream::new(addr, window);
        upstream.start_connect(Instant::now()).unwrap();
        if !upstream.is_connected() {
            let epoll = Epoll::new().unwrap();
            epoll.add(upstream.fd().unwrap(), sys::EPOLLOUT, 7).unwrap();
            let mut events = [EpollEvent::default(); 4];
            let deadline = Instant::now() + Duration::from_secs(5);
            while !upstream.is_connected() {
                assert!(Instant::now() < deadline, "connect never completed");
                epoll.wait(&mut events, 100).unwrap();
                upstream.try_complete_connect().unwrap();
            }
        }
        upstream
    }

    #[test]
    fn window_limits_in_flight_and_backlog_drains_on_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = connect_sync(listener.local_addr().unwrap(), 2);
        let (peer, _) = listener.accept().unwrap();

        for i in 0..5 {
            upstream.submit(request(i, &format!("PING{i}")));
        }
        upstream.pump();
        upstream.try_write().unwrap();
        // Only the window's worth went out.
        peer.set_nonblocking(true).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        while let Ok(n) = (&peer).read(&mut buf) {
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"PING0\nPING1\n");

        // Two responses free the window for the next two requests.
        (&peer).write_all(b"PONG\nPONG\n").unwrap();
        let mut scratch = vec![0u8; 1024];
        let mut resolved = Vec::new();
        upstream.try_read(&mut scratch, &mut resolved).unwrap();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].0.request_id, 0);
        assert_eq!(resolved[1].0.request_id, 1);
        upstream.pump();
        upstream.try_write().unwrap();
        got.clear();
        while let Ok(n) = (&peer).read(&mut buf) {
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"PING2\nPING3\n");
    }

    #[test]
    fn failure_surrenders_every_owed_request_with_bytes_for_redispatch() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = connect_sync(listener.local_addr().unwrap(), 1);
        let (peer, _) = listener.accept().unwrap();
        for i in 0..3 {
            upstream.submit(request(i, &format!("QUERY {i} {i}")));
        }
        upstream.pump();
        upstream.try_write().unwrap();
        drop(peer); // replica dies
        let mut resolved = Vec::new();
        let err = upstream.try_read(&mut [0u8; 64], &mut resolved);
        assert!(err.is_err());
        let owed = upstream.fail(Instant::now());
        assert_eq!(owed.len(), 3, "in-flight + backlog all surrendered");
        for (i, p) in owed.iter().enumerate() {
            assert_eq!(p.bytes, format!("QUERY {i} {i}\n").into_bytes(), "bytes retained");
        }
        assert!(upstream.fd().is_none());
        assert_eq!(upstream.state_name(), "backoff");
        assert_eq!(upstream.failures, 1);
    }

    #[test]
    fn unsolicited_response_is_a_protocol_failure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = connect_sync(listener.local_addr().unwrap(), 4);
        let (peer, _) = listener.accept().unwrap();
        (&peer).write_all(b"SURPRISE\n").unwrap();
        let mut resolved = Vec::new();
        // Poll until the bytes arrive (loopback, effectively immediate).
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match upstream.try_read(&mut [0u8; 64], &mut resolved) {
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                    break;
                }
                Ok(()) if Instant::now() > deadline => panic!("no desync detected"),
                Ok(()) => std::thread::yield_now(),
            }
        }
        assert!(resolved.is_empty());
    }

    #[test]
    fn backoff_escalates_with_jitter_and_resets_on_liveness() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let mut upstream = Upstream::new(addr, 4);
        for attempt in 0u32..8 {
            let now = Instant::now();
            upstream.fail(now);
            let until = upstream.backoff_until().expect("backing off");
            let base = (BACKOFF_BASE_MS << attempt.min(5)).min(BACKOFF_CAP_MS);
            let delay = until - now;
            assert!(
                delay >= Duration::from_millis(base / 2) && delay <= Duration::from_millis(base),
                "attempt {attempt}: delay {delay:?} outside [{base}/2, {base}] ms",
            );
            // Let the next attempt through regardless of wall time.
            upstream.state = State::BackingOff { until: now };
        }
        assert_eq!(upstream.failures, 8);
        // A successful exchange resets the escalation to the floor.
        upstream.note_alive();
        let now = Instant::now();
        upstream.fail(now);
        let delay = upstream.backoff_until().unwrap() - now;
        assert!(delay <= Duration::from_millis(BACKOFF_BASE_MS));
    }

    #[test]
    fn probe_pendings_are_dropped_on_failure_not_surrendered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = connect_sync(listener.local_addr().unwrap(), 4);
        let (_peer, _) = listener.accept().unwrap();
        upstream.submit(request(PROBE_ID, "PING"));
        upstream.submit(request(7, "QUERY 1 2"));
        upstream.pump();
        let owed = upstream.fail(Instant::now());
        assert_eq!(owed.len(), 1);
        assert_eq!(owed[0].request_id, 7);
    }
}
