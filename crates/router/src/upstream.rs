//! One pipelined upstream connection to a backend shard.
//!
//! The router multiplexes every client onto a small, fixed set of shard
//! connections: requests are appended to a write buffer and answered in
//! order (the protocol guarantees per-connection responses in request
//! order), so matching is a FIFO of [`Pending`] descriptors — no
//! request-id needs to cross the wire. An in-flight *window* bounds how
//! many requests may be outstanding per shard; excess requests queue in a
//! backlog and dispatch as responses drain the window.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Longest response line accepted from a shard. `DISTS` for a maximal
/// batch dominates; anything past this is a corrupt upstream.
pub(crate) const MAX_UPSTREAM_LINE: usize = 64 * 1024 * 1024;

/// How long a (re)connect to a shard may block the reactor. Shards are
/// LAN/loopback neighbours; a shard that cannot accept within this is
/// treated as down and the affected requests fail fast.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// What a shard's next response line resolves: the aggregation entry it
/// feeds and, for batch slices, where each answer lands in the client
/// response.
#[derive(Debug)]
pub(crate) struct Pending {
    /// Key into the reactor's in-flight aggregation map.
    pub request_id: u64,
    /// For `BATCH` slices: client-response positions, in slice order
    /// (also fixes the expected answer count).
    pub positions: Option<Vec<u32>>,
}

/// An encoded request waiting to go (or in flight) to one shard.
#[derive(Debug)]
pub(crate) struct OutboundRequest {
    /// The raw request bytes, including every newline.
    pub bytes: Vec<u8>,
    /// The response descriptor to enqueue once the request is on the
    /// write buffer.
    pub pending: Pending,
}

/// Live socket state of a connected upstream.
#[derive(Debug)]
struct Wire {
    stream: TcpStream,
    out: Vec<u8>,
    out_pos: usize,
    /// Incoming bytes not yet consumed as complete lines.
    rbuf: Vec<u8>,
    /// Prefix of `rbuf` already consumed.
    rstart: usize,
    /// Responses owed, in request order.
    pending: VecDeque<Pending>,
    /// epoll interest bits currently registered for this socket.
    registered: u32,
}

/// One shard connection with windowed pipelining; see the module docs.
#[derive(Debug)]
pub(crate) struct Upstream {
    addr: SocketAddr,
    window: usize,
    wire: Option<Wire>,
    backlog: VecDeque<OutboundRequest>,
}

impl Upstream {
    /// A connected upstream (blocking connect — used at router startup so
    /// a dead shard fails `Router::bind` fast).
    pub fn connect(addr: SocketAddr, window: usize) -> io::Result<Upstream> {
        let mut upstream = Upstream::disconnected(addr, window);
        upstream.ensure_connected()?;
        Ok(upstream)
    }

    /// An upstream that will connect on first use (control connections).
    pub fn disconnected(addr: SocketAddr, window: usize) -> Upstream {
        Upstream { addr, window, wire: None, backlog: VecDeque::new() }
    }

    /// Connects if currently disconnected. Returns `true` when a **new**
    /// socket was created — the caller must register its
    /// [`fd`](Self::fd) with epoll and then
    /// [`set_registered`](Self::set_registered).
    pub fn ensure_connected(&mut self) -> io::Result<bool> {
        if self.wire.is_some() {
            return Ok(false);
        }
        let stream = TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        self.wire = Some(Wire {
            stream,
            out: Vec::new(),
            out_pos: 0,
            rbuf: Vec::new(),
            rstart: 0,
            pending: VecDeque::new(),
            registered: 0,
        });
        Ok(true)
    }

    /// The connected socket's fd, if any.
    pub fn fd(&self) -> Option<RawFd> {
        self.wire.as_ref().map(|w| w.stream.as_raw_fd())
    }

    /// Currently registered epoll interest bits.
    pub fn registered(&self) -> u32 {
        self.wire.as_ref().map_or(0, |w| w.registered)
    }

    /// Records the interest bits the caller just registered.
    pub fn set_registered(&mut self, bits: u32) {
        if let Some(wire) = &mut self.wire {
            wire.registered = bits;
        }
    }

    /// Queues a request; it reaches the wire once the in-flight window
    /// has room (callers follow up with [`pump`](Self::pump) /
    /// [`try_write`](Self::try_write)).
    pub fn submit(&mut self, request: OutboundRequest) {
        self.backlog.push_back(request);
    }

    /// Moves backlogged requests onto the write buffer while the window
    /// allows.
    pub fn pump(&mut self) {
        let Some(wire) = &mut self.wire else { return };
        while wire.pending.len() < self.window {
            let Some(request) = self.backlog.pop_front() else { break };
            wire.out.extend_from_slice(&request.bytes);
            wire.pending.push_back(request.pending);
        }
    }

    /// Nonblocking flush of the write buffer. `Err` means the connection
    /// is unusable (fail it with [`take_failed`](Self::take_failed)).
    pub fn try_write(&mut self) -> io::Result<()> {
        let Some(wire) = &mut self.wire else { return Ok(()) };
        while wire.out_pos < wire.out.len() {
            match (&wire.stream).write(&wire.out[wire.out_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => wire.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if wire.out_pos == wire.out.len() {
            wire.out.clear();
            wire.out_pos = 0;
        }
        Ok(())
    }

    /// Reads whatever the shard sent and resolves complete response
    /// lines against the pending FIFO, appending `(pending, line)` pairs
    /// to `resolved`. `Err` means the connection is unusable (EOF,
    /// transport error, oversized or unsolicited response line).
    pub fn try_read(
        &mut self,
        scratch: &mut [u8],
        resolved: &mut Vec<(Pending, String)>,
    ) -> io::Result<()> {
        let Some(wire) = &mut self.wire else { return Ok(()) };
        loop {
            match (&wire.stream).read(scratch) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => wire.rbuf.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
            while let Some(nl) = wire.rbuf[wire.rstart..].iter().position(|&b| b == b'\n') {
                let end = wire.rstart + nl;
                let mut line_end = end;
                while line_end > wire.rstart && wire.rbuf[line_end - 1] == b'\r' {
                    line_end -= 1;
                }
                let line = String::from_utf8_lossy(&wire.rbuf[wire.rstart..line_end]).into_owned();
                wire.rstart = end + 1;
                match wire.pending.pop_front() {
                    Some(pending) => resolved.push((pending, line)),
                    // A response nothing asked for: protocol desync.
                    None => return Err(io::ErrorKind::InvalidData.into()),
                }
            }
            if wire.rstart > 0 {
                wire.rbuf.drain(..wire.rstart);
                wire.rstart = 0;
            }
            if wire.rbuf.len() > MAX_UPSTREAM_LINE {
                return Err(io::ErrorKind::InvalidData.into());
            }
        }
        Ok(())
    }

    /// Tears the connection down and returns every request it still owed
    /// an answer (in flight first, then backlog) so the caller can fail
    /// them. A later [`ensure_connected`](Self::ensure_connected)
    /// reconnects fresh.
    pub fn take_failed(&mut self) -> Vec<Pending> {
        let mut failed = Vec::new();
        if let Some(wire) = self.wire.take() {
            failed.extend(wire.pending);
        }
        failed.extend(self.backlog.drain(..).map(|r| r.pending));
        failed
    }

    /// The epoll interest matching the current state: always readable
    /// (responses arrive unprompted once requests are in flight), plus
    /// writable while output is buffered.
    pub fn desired_interest(&self) -> u32 {
        use hcl_server::transport::sys;
        let Some(wire) = &self.wire else { return 0 };
        let mut bits = sys::EPOLLIN | sys::EPOLLRDHUP;
        if wire.out_pos < wire.out.len() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn request(id: u64, text: &str) -> OutboundRequest {
        OutboundRequest {
            bytes: format!("{text}\n").into_bytes(),
            pending: Pending { request_id: id, positions: None },
        }
    }

    #[test]
    fn window_limits_in_flight_and_backlog_drains_on_responses() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = Upstream::connect(listener.local_addr().unwrap(), 2).unwrap();
        let (peer, _) = listener.accept().unwrap();

        for i in 0..5 {
            upstream.submit(request(i, &format!("PING{i}")));
        }
        upstream.pump();
        upstream.try_write().unwrap();
        // Only the window's worth went out.
        peer.set_nonblocking(true).unwrap();
        let mut got = Vec::new();
        let mut buf = [0u8; 256];
        while let Ok(n) = (&peer).read(&mut buf) {
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"PING0\nPING1\n");

        // Two responses free the window for the next two requests.
        (&peer).write_all(b"PONG\nPONG\n").unwrap();
        let mut scratch = vec![0u8; 1024];
        let mut resolved = Vec::new();
        upstream.try_read(&mut scratch, &mut resolved).unwrap();
        assert_eq!(resolved.len(), 2);
        assert_eq!(resolved[0].0.request_id, 0);
        assert_eq!(resolved[1].0.request_id, 1);
        upstream.pump();
        upstream.try_write().unwrap();
        got.clear();
        while let Ok(n) = (&peer).read(&mut buf) {
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, b"PING2\nPING3\n");
    }

    #[test]
    fn failure_surrenders_every_owed_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = Upstream::connect(listener.local_addr().unwrap(), 1).unwrap();
        let (peer, _) = listener.accept().unwrap();
        for i in 0..3 {
            upstream.submit(request(i, "PING"));
        }
        upstream.pump();
        upstream.try_write().unwrap();
        drop(peer); // shard dies
        let mut resolved = Vec::new();
        let err = upstream.try_read(&mut [0u8; 64], &mut resolved);
        assert!(err.is_err());
        let failed = upstream.take_failed();
        assert_eq!(failed.len(), 3, "in-flight + backlog all surrendered");
        assert!(upstream.fd().is_none());
    }

    #[test]
    fn unsolicited_response_is_a_protocol_failure() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut upstream = Upstream::connect(listener.local_addr().unwrap(), 4).unwrap();
        let (peer, _) = listener.accept().unwrap();
        (&peer).write_all(b"SURPRISE\n").unwrap();
        let mut resolved = Vec::new();
        // Poll until the bytes arrive (loopback, effectively immediate).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            match upstream.try_read(&mut [0u8; 64], &mut resolved) {
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                    break;
                }
                Ok(()) if std::time::Instant::now() > deadline => panic!("no desync detected"),
                Ok(()) => std::thread::yield_now(),
            }
        }
        assert!(resolved.is_empty());
    }
}
