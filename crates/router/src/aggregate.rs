//! The pure merge logic of the router: splitting batches by shard
//! ownership, min-merging scattered answers, merging `STATS` bodies by
//! per-key aggregation class, and epoch agreement. Everything here is
//! deterministic and free of I/O so the routing semantics are
//! unit-testable without sockets.

use hcl_core::{PartitionMap, ShardRoute};
use hcl_graph::{VertexId, INF};

/// One shard's slice of a client `BATCH`: the pairs it must answer and,
/// for each, the position in the client's response the answer feeds
/// (cross-shard pairs appear in two shards' slices and min-merge at the
/// shared position).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardBatch {
    /// The shard this slice goes to.
    pub shard: u32,
    /// `positions[i]` is the client-response index `pairs[i]` answers.
    pub positions: Vec<u32>,
    /// The pairs forwarded to this shard, in client order.
    pub pairs: Vec<(VertexId, VertexId)>,
}

/// Splits a client batch into per-shard sub-batches by
/// [`PartitionMap::route`]. Returns only non-empty slices, ordered by
/// shard id.
pub fn split_batch(map: &PartitionMap, pairs: &[(VertexId, VertexId)]) -> Vec<ShardBatch> {
    let mut slices: Vec<Option<ShardBatch>> = vec![None; map.num_shards() as usize];
    let mut push = |shard: u32, position: u32, pair: (VertexId, VertexId)| {
        let slice = slices[shard as usize].get_or_insert_with(|| ShardBatch {
            shard,
            positions: Vec::new(),
            pairs: Vec::new(),
        });
        slice.positions.push(position);
        slice.pairs.push(pair);
    };
    for (i, &(s, t)) in pairs.iter().enumerate() {
        match map.route(s, t) {
            ShardRoute::Single(a) => push(a, i as u32, (s, t)),
            ShardRoute::Scatter(a, b) => {
                push(a, i as u32, (s, t));
                push(b, i as u32, (s, t));
            }
        }
    }
    slices.into_iter().flatten().collect()
}

/// The `INF`-aware minimum of two scattered answers (`None` =
/// unreachable on that shard).
pub fn merge_min(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

/// Accumulates one shard's `DISTS` answers into the client response
/// being assembled (`out` uses the raw [`INF`] sentinel for
/// unreachable-so-far).
pub fn fold_batch_answers(out: &mut [u32], positions: &[u32], answers: &[Option<u32>]) {
    debug_assert_eq!(positions.len(), answers.len());
    for (&pos, &d) in positions.iter().zip(answers) {
        let d = d.unwrap_or(INF);
        let slot = &mut out[pos as usize];
        *slot = (*slot).min(d);
    }
}

/// Converts an assembled sentinel vector back to the protocol's
/// `Option<u32>` form.
pub fn finish_batch(out: Vec<u32>) -> Vec<Option<u32>> {
    out.into_iter().map(|d| (d != INF).then_some(d)).collect()
}

/// Reports the deployment-wide epoch: `Ok` only when every responder
/// agrees, otherwise a one-line description of the divergence (labels
/// are responder names, e.g. `shard0`).
pub fn epoch_agreement(epochs: &[(String, u64)]) -> Result<u64, String> {
    let Some(&(_, first)) = epochs.first() else {
        return Err("no shards responded".to_string());
    };
    if epochs.iter().all(|(_, e)| *e == first) {
        Ok(first)
    } else {
        let detail: Vec<String> = epochs.iter().map(|(label, e)| format!("{label}={e}")).collect();
        Err(format!("shards at divergent epochs: {}", detail.join(" ")))
    }
}

/// Renders the router's verdict on a `RELOAD` fan-out: `RELOADED <e>`
/// only when **every** replica of every shard confirmed the same new
/// epoch (all-or-nothing confirmation); any failure or epoch divergence
/// yields one `ERR` line naming each responder's outcome.
pub fn reload_verdict(results: &[(String, Result<u64, String>)]) -> Result<u64, String> {
    let mut confirmed = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (label, outcome) in results {
        match outcome {
            Ok(epoch) => confirmed.push((label.clone(), *epoch)),
            Err(msg) => failures.push(format!("{label}: {msg}")),
        }
    }
    if failures.is_empty() {
        return epoch_agreement(&confirmed)
            .map_err(|divergence| format!("reload incomplete: {divergence}"));
    }
    let mut parts = failures;
    for (label, epoch) in confirmed {
        parts.push(format!("{label}: RELOADED {epoch}"));
    }
    Err(format!("reload incomplete: {}", parts.join("; ")))
}

/// One responder's labelled outcome in an `UPDATE` fan-out: the replica
/// label plus either its `(epoch, affected)` confirmation or its error.
pub type UpdateOutcome = (String, Result<(u64, u64), String>);

/// Renders the router's verdict on an `UPDATE` fan-out: `UPDATED <e> <a>`
/// only when **every** replica of every owning shard confirmed the edit
/// (all-or-nothing, like [`reload_verdict`]); any failure yields one
/// `ERR` line naming each responder's outcome. On success the reported
/// epoch is the fleet floor (owning shards may sit at different
/// generations) and the affected count is the fleet's worst case.
pub fn update_verdict(results: &[UpdateOutcome]) -> Result<(u64, u64), String> {
    let mut confirmed: Vec<(String, (u64, u64))> = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (label, outcome) in results {
        match outcome {
            Ok(pair) => confirmed.push((label.clone(), *pair)),
            Err(msg) => failures.push(format!("{label}: {msg}")),
        }
    }
    if failures.is_empty() {
        let Some(&(_, first)) = confirmed.first() else {
            return Err("update incomplete: no shards responded".to_string());
        };
        let epoch = confirmed.iter().map(|&(_, (e, _))| e).min().unwrap_or(first.0);
        let affected = confirmed.iter().map(|&(_, (_, a))| a).max().unwrap_or(first.1);
        return Ok((epoch, affected));
    }
    let mut parts = failures;
    for (label, (epoch, affected)) in confirmed {
        parts.push(format!("{label}: UPDATED {epoch} {affected}"));
    }
    Err(format!("update incomplete: {}", parts.join("; ")))
}

/// How one `STATS` key combines across shards.
///
/// Summing everything numeric — the old behaviour — is wrong for two
/// whole classes of keys: configuration echoes (`max_connections=1024`
/// across 4 shards is still 1024, not 4096) and high-water readings
/// (`load_us` of the fleet is its slowest loader, not the sum of all
/// loads). Each key declares its class in [`stat_class`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StatClass {
    /// Additive counters and sizes: total across the fleet.
    Sum,
    /// Generation floors: the value every shard has reached (`epoch`).
    Min,
    /// High-water readings: the fleet's worst case (`load_us`).
    Max,
    /// Per-process configuration echoes: identical everywhere by
    /// deployment construction, so report the first (also the fallback
    /// for non-numeric values).
    First,
}

/// The aggregation class of one `STATS` key.
pub fn stat_class(key: &str) -> StatClass {
    match key {
        "epoch" => StatClass::Min,
        "load_us" | "index_bytes" | "plain_index_bytes" => StatClass::Max,
        // `sparse_relabelled` is a format flag, not a quantity: every
        // shard reports the same 1, and a fleet-wide sum would read as a
        // shard count.
        "max_connections" | "idle_timeout_ms" | "sparse_relabelled" => StatClass::First,
        // Counters, cache totals, `sparse_bytes`/`store_bytes` (each
        // shard holds a distinct slice, so fleet totals add), and
        // anything future shards report that we don't know: Sum keeps
        // the old behaviour.
        _ => StatClass::Sum,
    }
}

/// Merges shard `STATS` bodies (`key=value` pairs) into one body, each
/// key combined by its [`StatClass`]. Key order follows the first body,
/// with stragglers appended; non-numeric values are passed through from
/// the first shard reporting them.
pub fn merge_stats_bodies(bodies: &[String]) -> String {
    struct Slot {
        key: String,
        acc: Option<u64>,
        raw: String,
    }
    let mut slots: Vec<Slot> = Vec::new();
    for body in bodies {
        for kv in body.split_ascii_whitespace() {
            let Some((key, value)) = kv.split_once('=') else { continue };
            let idx = match slots.iter().position(|s| s.key == key) {
                Some(idx) => idx,
                None => {
                    slots.push(Slot { key: key.to_string(), acc: None, raw: value.to_string() });
                    slots.len() - 1
                }
            };
            if let Ok(number) = value.parse::<u64>() {
                let slot = &mut slots[idx].acc;
                *slot = Some(match (*slot, stat_class(key)) {
                    (None, _) => number,
                    (Some(acc), StatClass::Sum) => acc.saturating_add(number),
                    (Some(acc), StatClass::Min) => acc.min(number),
                    (Some(acc), StatClass::Max) => acc.max(number),
                    (Some(acc), StatClass::First) => acc,
                });
            }
        }
    }
    let mut out = String::new();
    for slot in slots {
        if !out.is_empty() {
            out.push(' ');
        }
        match slot.acc {
            Some(total) => out.push_str(&format!("{}={total}", slot.key)),
            None => out.push_str(&format!("{}={}", slot.key, slot.raw)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PartitionMap {
        // 100 vertices, 2 range shards (0..50 | 50..100), landmarks 0 and 50.
        PartitionMap::range(100, 2, &[0, 50])
    }

    fn labelled(pairs: &[(&str, u64)]) -> Vec<(String, u64)> {
        pairs.iter().map(|(l, e)| (l.to_string(), *e)).collect()
    }

    #[test]
    fn split_batch_routes_and_duplicates_cross_shard_pairs() {
        let slices = split_batch(&map(), &[(1, 2), (60, 70), (1, 70), (0, 80), (3, 3)]);
        assert_eq!(slices.len(), 2);
        let s0 = &slices[0];
        let s1 = &slices[1];
        assert_eq!(s0.shard, 0);
        assert_eq!(s1.shard, 1);
        // Shard 0: same-shard (1,2), scatter half of (1,70), same-shard (3,3).
        assert_eq!(s0.pairs, vec![(1, 2), (1, 70), (3, 3)]);
        assert_eq!(s0.positions, vec![0, 2, 4]);
        // Shard 1: (60,70), scatter half of (1,70), landmark-endpoint (0,80).
        assert_eq!(s1.pairs, vec![(60, 70), (1, 70), (0, 80)]);
        assert_eq!(s1.positions, vec![1, 2, 3]);
    }

    #[test]
    fn split_batch_skips_unused_shards() {
        let slices = split_batch(&map(), &[(1, 2), (3, 4)]);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].shard, 0);
    }

    #[test]
    fn min_merge_handles_inf() {
        assert_eq!(merge_min(Some(3), Some(5)), Some(3));
        assert_eq!(merge_min(None, Some(5)), Some(5));
        assert_eq!(merge_min(Some(2), None), Some(2));
        assert_eq!(merge_min(None, None), None);
    }

    #[test]
    fn batch_fold_round_trips() {
        let mut out = vec![INF; 4];
        fold_batch_answers(&mut out, &[0, 2], &[Some(7), None]);
        fold_batch_answers(&mut out, &[1, 2, 3], &[Some(1), Some(9), None]);
        // Position 2 got None from one shard and 9 from the other.
        assert_eq!(finish_batch(out), vec![Some(7), Some(1), Some(9), None]);
    }

    #[test]
    fn epoch_agreement_requires_unanimity() {
        assert_eq!(epoch_agreement(&labelled(&[("shard0", 3), ("shard1", 3)])), Ok(3));
        let err = epoch_agreement(&labelled(&[("shard0", 3), ("shard1", 4)])).unwrap_err();
        assert!(err.contains("shard0=3") && err.contains("shard1=4"), "{err}");
        assert!(epoch_agreement(&[]).is_err());
    }

    #[test]
    fn reload_verdict_is_all_or_nothing() {
        let ok = |l: &str, e: u64| (l.to_string(), Ok(e));
        let bad = |l: &str, m: &str| (l.to_string(), Err(m.to_string()));
        assert_eq!(reload_verdict(&[ok("shard0", 2), ok("shard1", 2)]), Ok(2));
        let err = reload_verdict(&[ok("shard0", 2), bad("shard1", "no such file")]).unwrap_err();
        assert!(err.contains("shard1: no such file"), "{err}");
        assert!(err.contains("shard0: RELOADED 2"), "{err}");
        let err = reload_verdict(&[ok("shard0", 2), ok("shard1", 3)]).unwrap_err();
        assert!(err.contains("divergent"), "{err}");
        // A replica lagging its siblings is divergence too: all-or-nothing
        // covers every replica of every shard.
        let err = reload_verdict(&[ok("shard0/r0", 2), ok("shard0/r1", 1)]).unwrap_err();
        assert!(err.contains("shard0/r1=1"), "{err}");
    }

    #[test]
    fn update_verdict_is_all_or_nothing() {
        let ok = |l: &str, e: u64, a: u64| (l.to_string(), Ok((e, a)));
        let bad = |l: &str, m: &str| (l.to_string(), Err(m.to_string()));
        // Fleet floor epoch, worst-case affected count.
        assert_eq!(update_verdict(&[ok("shard0", 4, 12), ok("shard1", 3, 7)]), Ok((3, 12)));
        // Replicas of one owning shard: all must confirm.
        assert_eq!(update_verdict(&[ok("shard0/r0", 2, 5), ok("shard0/r1", 2, 5)]), Ok((2, 5)));
        let err = update_verdict(&[
            ok("shard0", 2, 5),
            bad("shard1", "update rejected: edge already present"),
        ])
        .unwrap_err();
        assert!(err.contains("shard1: update rejected"), "{err}");
        assert!(err.contains("shard0: UPDATED 2 5"), "{err}");
        assert!(update_verdict(&[]).is_err());
    }

    /// One row per aggregation class: inputs across two shards and the
    /// value the merged body must report.
    #[test]
    fn stats_merge_combines_each_key_by_its_class() {
        let cases: &[(&str, &str, &str, &str)] = &[
            // (key, shard A value, shard B value, merged)
            ("queries", "10", "7", "17"),          // Sum: fleet total
            ("cache_hits", "5", "0", "5"),         // Sum
            ("sparse_bytes", "100", "200", "300"), // Sum: distinct slices
            ("epoch", "2", "3", "2"),              // Min: generation floor
            ("load_us", "900", "1500", "1500"),    // Max: slowest loader
            ("index_bytes", "64", "80", "80"),     // Max: replicated label bytes
            ("max_connections", "1024", "1024", "1024"), // First: config echo
            ("idle_timeout_ms", "600000", "600000", "600000"), // First
        ];
        for (key, a, b, want) in cases {
            let merged = merge_stats_bodies(&[format!("{key}={a}"), format!("{key}={b}")]);
            assert_eq!(merged, format!("{key}={want}"), "class of {key}");
        }
    }

    #[test]
    fn stats_merge_sums_counters_and_mins_epoch() {
        let merged = merge_stats_bodies(&[
            "queries=10 epoch=2 cache_hits=5".to_string(),
            "queries=7 epoch=3 cache_hits=0 extra=1".to_string(),
        ]);
        assert_eq!(merged, "queries=17 epoch=2 cache_hits=5 extra=1");
    }

    #[test]
    fn stats_merge_does_not_multiply_config_echoes() {
        // The regression the classes exist for: four shards echoing the
        // same limit must not report a 4× limit.
        let bodies: Vec<String> =
            (0..4).map(|_| "max_connections=1024 idle_timeout_ms=600000".to_string()).collect();
        assert_eq!(merge_stats_bodies(&bodies), "max_connections=1024 idle_timeout_ms=600000");
    }

    #[test]
    fn stats_merge_passes_non_numeric_through() {
        let merged = merge_stats_bodies(&["mode=fast queries=1".to_string()]);
        assert_eq!(merged, "mode=fast queries=1");
    }
}
