//! The pure merge logic of the router: splitting batches by shard
//! ownership, min-merging scattered answers, summing `STATS` bodies, and
//! epoch agreement. Everything here is deterministic and free of I/O so
//! the routing semantics are unit-testable without sockets.

use hcl_core::{PartitionMap, ShardRoute};
use hcl_graph::{VertexId, INF};

/// One shard's slice of a client `BATCH`: the pairs it must answer and,
/// for each, the position in the client's response the answer feeds
/// (cross-shard pairs appear in two shards' slices and min-merge at the
/// shared position).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardBatch {
    /// The shard this slice goes to.
    pub shard: u32,
    /// `positions[i]` is the client-response index `pairs[i]` answers.
    pub positions: Vec<u32>,
    /// The pairs forwarded to this shard, in client order.
    pub pairs: Vec<(VertexId, VertexId)>,
}

/// Splits a client batch into per-shard sub-batches by
/// [`PartitionMap::route`]. Returns only non-empty slices, ordered by
/// shard id.
pub fn split_batch(map: &PartitionMap, pairs: &[(VertexId, VertexId)]) -> Vec<ShardBatch> {
    let mut slices: Vec<Option<ShardBatch>> = vec![None; map.num_shards() as usize];
    let mut push = |shard: u32, position: u32, pair: (VertexId, VertexId)| {
        let slice = slices[shard as usize].get_or_insert_with(|| ShardBatch {
            shard,
            positions: Vec::new(),
            pairs: Vec::new(),
        });
        slice.positions.push(position);
        slice.pairs.push(pair);
    };
    for (i, &(s, t)) in pairs.iter().enumerate() {
        match map.route(s, t) {
            ShardRoute::Single(a) => push(a, i as u32, (s, t)),
            ShardRoute::Scatter(a, b) => {
                push(a, i as u32, (s, t));
                push(b, i as u32, (s, t));
            }
        }
    }
    slices.into_iter().flatten().collect()
}

/// The `INF`-aware minimum of two scattered answers (`None` =
/// unreachable on that shard).
pub fn merge_min(a: Option<u32>, b: Option<u32>) -> Option<u32> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}

/// Accumulates one shard's `DISTS` answers into the client response
/// being assembled (`out` uses the raw [`INF`] sentinel for
/// unreachable-so-far).
pub fn fold_batch_answers(out: &mut [u32], positions: &[u32], answers: &[Option<u32>]) {
    debug_assert_eq!(positions.len(), answers.len());
    for (&pos, &d) in positions.iter().zip(answers) {
        let d = d.unwrap_or(INF);
        let slot = &mut out[pos as usize];
        *slot = (*slot).min(d);
    }
}

/// Converts an assembled sentinel vector back to the protocol's
/// `Option<u32>` form.
pub fn finish_batch(out: Vec<u32>) -> Vec<Option<u32>> {
    out.into_iter().map(|d| (d != INF).then_some(d)).collect()
}

/// Reports the deployment-wide epoch: `Ok` only when every shard agrees,
/// otherwise a one-line description of the divergence.
pub fn epoch_agreement(epochs: &[(u32, u64)]) -> Result<u64, String> {
    let Some(&(_, first)) = epochs.first() else {
        return Err("no shards responded".to_string());
    };
    if epochs.iter().all(|&(_, e)| e == first) {
        Ok(first)
    } else {
        let detail: Vec<String> =
            epochs.iter().map(|(shard, e)| format!("shard{shard}={e}")).collect();
        Err(format!("shards at divergent epochs: {}", detail.join(" ")))
    }
}

/// Renders the router's verdict on a `RELOAD` fan-out: `RELOADED <e>`
/// only when **every** shard confirmed the same new epoch (all-or-nothing
/// confirmation); any failure or epoch divergence yields one `ERR` line
/// naming each shard's outcome.
pub fn reload_verdict(results: &[(u32, Result<u64, String>)]) -> Result<u64, String> {
    let mut confirmed = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (shard, outcome) in results {
        match outcome {
            Ok(epoch) => confirmed.push((*shard, *epoch)),
            Err(msg) => failures.push(format!("shard{shard}: {msg}")),
        }
    }
    if failures.is_empty() {
        return epoch_agreement(&confirmed)
            .map_err(|divergence| format!("reload incomplete: {divergence}"));
    }
    let mut parts = failures;
    for (shard, epoch) in confirmed {
        parts.push(format!("shard{shard}: RELOADED {epoch}"));
    }
    Err(format!("reload incomplete: {}", parts.join("; ")))
}

/// Merges shard `STATS` bodies (`key=value` pairs) into one body:
/// numeric values are summed across shards, except `epoch`, which is
/// reported as the minimum (the generation every shard has reached). Key
/// order follows the first body, with stragglers appended; non-numeric
/// values are passed through from the first shard reporting them.
pub fn merge_stats_bodies(bodies: &[String]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut sums: Vec<(String, Option<u64>, String)> = Vec::new();
    for body in bodies {
        for kv in body.split_ascii_whitespace() {
            let Some((key, value)) = kv.split_once('=') else { continue };
            let idx = match sums.iter().position(|(k, _, _)| k == key) {
                Some(idx) => idx,
                None => {
                    order.push(key.to_string());
                    sums.push((key.to_string(), None, value.to_string()));
                    sums.len() - 1
                }
            };
            if let Ok(number) = value.parse::<u64>() {
                let slot = &mut sums[idx].1;
                *slot = Some(match (key, *slot) {
                    ("epoch", Some(acc)) => acc.min(number),
                    (_, Some(acc)) => acc.saturating_add(number),
                    (_, None) => number,
                });
            }
        }
    }
    let mut out = String::new();
    for key in order {
        let (_, sum, raw) = sums.iter().find(|(k, _, _)| *k == key).expect("key recorded");
        if !out.is_empty() {
            out.push(' ');
        }
        match sum {
            Some(total) => out.push_str(&format!("{key}={total}")),
            None => out.push_str(&format!("{key}={raw}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PartitionMap {
        // 100 vertices, 2 range shards (0..50 | 50..100), landmarks 0 and 50.
        PartitionMap::range(100, 2, &[0, 50])
    }

    #[test]
    fn split_batch_routes_and_duplicates_cross_shard_pairs() {
        let slices = split_batch(&map(), &[(1, 2), (60, 70), (1, 70), (0, 80), (3, 3)]);
        assert_eq!(slices.len(), 2);
        let s0 = &slices[0];
        let s1 = &slices[1];
        assert_eq!(s0.shard, 0);
        assert_eq!(s1.shard, 1);
        // Shard 0: same-shard (1,2), scatter half of (1,70), same-shard (3,3).
        assert_eq!(s0.pairs, vec![(1, 2), (1, 70), (3, 3)]);
        assert_eq!(s0.positions, vec![0, 2, 4]);
        // Shard 1: (60,70), scatter half of (1,70), landmark-endpoint (0,80).
        assert_eq!(s1.pairs, vec![(60, 70), (1, 70), (0, 80)]);
        assert_eq!(s1.positions, vec![1, 2, 3]);
    }

    #[test]
    fn split_batch_skips_unused_shards() {
        let slices = split_batch(&map(), &[(1, 2), (3, 4)]);
        assert_eq!(slices.len(), 1);
        assert_eq!(slices[0].shard, 0);
    }

    #[test]
    fn min_merge_handles_inf() {
        assert_eq!(merge_min(Some(3), Some(5)), Some(3));
        assert_eq!(merge_min(None, Some(5)), Some(5));
        assert_eq!(merge_min(Some(2), None), Some(2));
        assert_eq!(merge_min(None, None), None);
    }

    #[test]
    fn batch_fold_round_trips() {
        let mut out = vec![INF; 4];
        fold_batch_answers(&mut out, &[0, 2], &[Some(7), None]);
        fold_batch_answers(&mut out, &[1, 2, 3], &[Some(1), Some(9), None]);
        // Position 2 got None from one shard and 9 from the other.
        assert_eq!(finish_batch(out), vec![Some(7), Some(1), Some(9), None]);
    }

    #[test]
    fn epoch_agreement_requires_unanimity() {
        assert_eq!(epoch_agreement(&[(0, 3), (1, 3)]), Ok(3));
        let err = epoch_agreement(&[(0, 3), (1, 4)]).unwrap_err();
        assert!(err.contains("shard0=3") && err.contains("shard1=4"), "{err}");
        assert!(epoch_agreement(&[]).is_err());
    }

    #[test]
    fn reload_verdict_is_all_or_nothing() {
        assert_eq!(reload_verdict(&[(0, Ok(2)), (1, Ok(2))]), Ok(2));
        let err = reload_verdict(&[(0, Ok(2)), (1, Err("no such file".to_string()))]).unwrap_err();
        assert!(err.contains("shard1: no such file"), "{err}");
        assert!(err.contains("shard0: RELOADED 2"), "{err}");
        let err = reload_verdict(&[(0, Ok(2)), (1, Ok(3))]).unwrap_err();
        assert!(err.contains("divergent"), "{err}");
    }

    #[test]
    fn stats_merge_sums_counters_and_mins_epoch() {
        let merged = merge_stats_bodies(&[
            "queries=10 epoch=2 cache_hits=5".to_string(),
            "queries=7 epoch=3 cache_hits=0 extra=1".to_string(),
        ]);
        assert_eq!(merged, "queries=17 epoch=2 cache_hits=5 extra=1");
    }

    #[test]
    fn stats_merge_passes_non_numeric_through() {
        let merged = merge_stats_bodies(&["mode=fast queries=1".to_string()]);
        assert_eq!(merged, "mode=fast queries=1");
    }
}
