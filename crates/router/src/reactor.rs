//! The router's single-threaded epoll event loop.
//!
//! One thread owns the listening socket, every client connection, an
//! eventfd (shutdown wakeup), and two pipelined connections per shard —
//! *data* (queries, batches, stats, epoch) and *control* (`RELOAD`, so a
//! seconds-long index rebuild never stalls query traffic behind it in the
//! shard's per-connection response order). Client connections run the
//! same [`Conn`] state machine as the server: incremental decoding,
//! ordered response slots, write-buffer backpressure. The router performs
//! no graph computation — every frame either resolves locally (`PING`,
//! errors) or becomes one or two upstream request lines whose responses
//! are merged by [`aggregate`](crate::aggregate) and completed into the
//! client's response slot.

use crate::aggregate;
use crate::router::{RouterMetrics, Shared};
use crate::upstream::{OutboundRequest, Pending, Upstream};
use hcl_core::partition::{shard_packed_path, shard_paths};
use hcl_core::ShardRoute;
use hcl_graph::VertexId;
use hcl_server::protocol::{self, Frame, ResponseError};
use hcl_server::transport::conn::Conn;
use hcl_server::transport::sys::{self, Epoll, EpollEvent};
use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::Arc;
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
/// Upstream tokens: data = `2 + 2·shard`, control = `3 + 2·shard`.
const TOKEN_UPSTREAM_BASE: u64 = 2;

const MAX_READS_PER_EVENT: usize = 16;
const READ_CHUNK: usize = 16 * 1024;
const ACCEPT_BACKOFF: Duration = Duration::from_millis(50);
/// Interest registered for a fresh upstream socket.
const UPSTREAM_BASE_INTEREST: u32 = sys::EPOLLIN | sys::EPOLLRDHUP;

fn upstream_token(ctl: bool, shard: u32) -> u64 {
    TOKEN_UPSTREAM_BASE + 2 * shard as u64 + ctl as u64
}

/// How the responses of one client request are being assembled.
enum AggKind {
    /// Single-shard request: relay the shard's response line verbatim
    /// (including `ERR`).
    Passthrough,
    /// Cross-shard `QUERY`: the `INF`-aware minimum of both answers.
    MinDist { best: Option<u32>, error: Option<String> },
    /// Scattered `BATCH`: answers folded into client positions with the
    /// raw `INF` sentinel.
    Batch { dists: Vec<u32>, error: Option<String> },
    /// `STATS` fan-out: shard bodies to merge under the router prefix.
    Stats { prefix: String, bodies: Vec<String>, error: Option<String> },
    /// `EPOCH` fan-out: answered only on unanimity.
    Epoch { epochs: Vec<(u32, u64)>, error: Option<String> },
    /// `RELOAD` fan-out: per-shard outcomes, all-or-nothing confirmation.
    Reload { results: Vec<(u32, Result<u64, String>)> },
}

/// One in-flight client request spanning one or more shard responses.
struct Agg {
    conn: u64,
    seq: u64,
    outstanding: u32,
    kind: AggKind,
}

pub(crate) struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    listener: Option<TcpListener>,
    relisten_at: Option<Instant>,
    conns: HashMap<u64, Conn>,
    data: Vec<Upstream>,
    ctl: Vec<Upstream>,
    requests: HashMap<u64, Agg>,
    next_conn_id: u64,
    next_request_id: u64,
    first_conn_id: u64,
    draining: bool,
    drain_deadline: Option<Instant>,
    reload_busy: bool,
    /// Completions whose connection was detached from `conns` when they
    /// resolved — a request can fail *synchronously* inside
    /// [`handle_frame`](Self::handle_frame) (dead shard, failed
    /// reconnect) while `conn_event` holds the `Conn` on its stack, so
    /// the `ERR` line parks here and the frame dispatcher drains it into
    /// the connection before settling. Entries for any other id belong
    /// to connections that no longer exist and are dropped.
    deferred: Vec<(u64, u64, String)>,
    scratch: Vec<u8>,
}

impl Reactor {
    pub fn new(shared: Arc<Shared>, listener: TcpListener) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(shared.wake.raw(), sys::EPOLLIN, TOKEN_WAKE)?;
        let window = shared.config.shard_window;
        let mut data = Vec::with_capacity(shared.shard_addrs.len());
        let mut ctl = Vec::with_capacity(shared.shard_addrs.len());
        for (shard, &addr) in shared.shard_addrs.iter().enumerate() {
            // Data connections are eager so a dead shard fails the bind;
            // control connections open on the first RELOAD.
            let upstream = Upstream::connect(addr, window)?;
            let fd = upstream.fd().expect("connected");
            epoll.add(fd, UPSTREAM_BASE_INTEREST, upstream_token(false, shard as u32))?;
            data.push(upstream);
            data[shard].set_registered(UPSTREAM_BASE_INTEREST);
            ctl.push(Upstream::disconnected(addr, 1));
        }
        let first_conn_id = TOKEN_UPSTREAM_BASE + 2 * shared.shard_addrs.len() as u64;
        Ok(Reactor {
            shared,
            epoll,
            listener: Some(listener),
            relisten_at: None,
            conns: HashMap::new(),
            data,
            ctl,
            requests: HashMap::new(),
            next_conn_id: first_conn_id,
            next_request_id: 0,
            first_conn_id,
            draining: false,
            drain_deadline: None,
            reload_busy: false,
            deferred: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    pub fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        loop {
            let timeout = self.poll_timeout();
            let fired = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            let now = Instant::now();
            for event in &events[..fired] {
                let (token, bits) = (event.data, event.events);
                match token {
                    TOKEN_LISTENER => self.accept_ready(now),
                    TOKEN_WAKE => self.shared.wake.drain(),
                    t if t < self.first_conn_id => {
                        let slot = t - TOKEN_UPSTREAM_BASE;
                        self.upstream_event((slot % 2) == 1, (slot / 2) as u32, now);
                    }
                    id => self.conn_event(id, bits, now),
                }
            }
            self.flush_upstreams(now);
            // Deferred completions for a live connection are drained
            // inside its own frame dispatch; anything still here is
            // addressed to a connection that no longer exists.
            self.deferred.clear();
            if self.shared.shutting_down() && !self.draining {
                self.begin_drain(now);
            }
            self.expire(now);
            if self.draining && self.conns.is_empty() {
                return;
            }
        }
    }

    /// Milliseconds until the nearest deadline, or −1 to block forever.
    fn poll_timeout(&self) -> i32 {
        let mut deadline: Option<Instant> = self.drain_deadline;
        if let Some(at) = self.relisten_at {
            deadline = Some(deadline.map_or(at, |d| d.min(at)));
        }
        let idle = self.shared.config.idle_timeout;
        if !idle.is_zero() && !self.draining {
            let soonest = self
                .conns
                .values()
                .filter(|c| !c.awaiting_completions())
                .map(|c| c.last_activity + idle)
                .min();
            if let Some(soonest) = soonest {
                deadline = Some(deadline.map_or(soonest, |d| d.min(soonest)));
            }
        }
        match deadline {
            Some(at) => {
                let ms = at.saturating_duration_since(Instant::now()).as_millis() as i64 + 1;
                ms.min(i32::MAX as i64) as i32
            }
            None => -1,
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        let metrics = &self.shared.metrics;
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.conns.len() >= self.shared.config.max_connections {
                        RouterMetrics::bump(&metrics.rejected_connections);
                        let _ = stream.set_nonblocking(true);
                        use std::io::Write;
                        let _ = (&stream).write(b"ERR router at connection capacity\n");
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    stream.set_nodelay(true).ok();
                    let id = self.next_conn_id;
                    self.next_conn_id += 1;
                    let mut conn = Conn::new(stream, now);
                    let interest = conn.desired_interest();
                    if self.epoll.add(conn.stream.as_raw_fd(), interest, id).is_err() {
                        continue;
                    }
                    conn.registered = interest;
                    RouterMetrics::bump(&metrics.connections);
                    RouterMetrics::bump(&metrics.active_connections);
                    self.conns.insert(id, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    let listener = self.listener.take().expect("listener present");
                    let _ = self.epoll.delete(listener.as_raw_fd());
                    self.listener = Some(listener);
                    self.relisten_at = Some(now + ACCEPT_BACKOFF);
                    return;
                }
            }
        }
    }

    // ---- client side ----------------------------------------------------

    fn conn_event(&mut self, id: u64, bits: u32, now: Instant) {
        let Some(mut conn) = self.conns.remove(&id) else { return };
        let mut alive = true;
        if bits & (sys::EPOLLIN | sys::EPOLLRDHUP | sys::EPOLLHUP | sys::EPOLLERR) != 0 {
            alive = self.read_and_decode(&mut conn, id, now);
        }
        if alive {
            alive = self.settle(&mut conn, id, now);
        }
        if alive {
            self.conns.insert(id, conn);
        } else {
            self.destroy(conn);
        }
    }

    fn read_and_decode(&mut self, conn: &mut Conn, id: u64, now: Instant) -> bool {
        for _ in 0..MAX_READS_PER_EVENT {
            if !conn.wants_read() {
                break;
            }
            match conn.try_read(&mut self.scratch) {
                Ok(Some(0)) => {
                    conn.decoder.finish();
                    conn.draining = true;
                }
                Ok(Some(n)) => {
                    conn.last_activity = now;
                    conn.decoder.feed(&self.scratch[..n]);
                }
                Ok(None) => break,
                Err(_) => return false,
            }
            while let Some(frame) = conn.decoder.next_frame() {
                self.handle_frame(conn, id, frame);
                self.drain_deferred(conn, id);
                if conn.draining {
                    break;
                }
            }
            if conn.draining {
                break;
            }
            conn.promote_ready();
            conn.update_backpressure();
        }
        true
    }

    /// Dispatches one decoded client frame: local answers fill their slot
    /// now, everything else fans out to shards with an [`Agg`] keyed by a
    /// fresh request id.
    fn handle_frame(&mut self, conn: &mut Conn, id: u64, frame: Frame) {
        let metrics = &self.shared.metrics;
        match frame {
            Frame::Ping => conn.push_ready("PONG".to_string()),
            Frame::Invalid(e) => {
                RouterMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
            }
            Frame::Corrupt(e) => {
                RouterMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
                conn.draining = true;
            }
            Frame::Shutdown => {
                conn.push_ready("BYE".to_string());
                conn.draining = true;
                self.shared.begin_shutdown();
            }
            Frame::Query(s, t) => self.route_query(conn, id, s, t),
            Frame::Batch(pairs) => self.route_batch(conn, id, pairs),
            Frame::Stats => self.fan_out_simple(
                conn,
                id,
                "STATS",
                AggKind::Stats {
                    prefix: self.shared.metrics.stats_prefix(self.shared.partition.num_shards()),
                    bodies: Vec::new(),
                    error: None,
                },
            ),
            Frame::Epoch => self.fan_out_simple(
                conn,
                id,
                "EPOCH",
                AggKind::Epoch { epochs: Vec::new(), error: None },
            ),
            Frame::Reload { graph, index } => self.fan_out_reload(conn, id, graph, index),
        }
    }

    /// Range-validates a pair against the partitioned id space, matching
    /// the server's error string.
    fn check_pair(&self, s: VertexId, t: VertexId) -> Result<(), String> {
        let n = self.shared.partition.num_vertices();
        for v in [s, t] {
            if v as usize >= n {
                return Err(format!("vertex {v} out of range for graph with {n} vertices"));
            }
        }
        Ok(())
    }

    fn next_request(&mut self, conn: u64, seq: u64, outstanding: u32, kind: AggKind) -> u64 {
        let rid = self.next_request_id;
        self.next_request_id += 1;
        self.requests.insert(rid, Agg { conn, seq, outstanding, kind });
        rid
    }

    fn route_query(&mut self, conn: &mut Conn, id: u64, s: VertexId, t: VertexId) {
        let metrics = &self.shared.metrics;
        if let Err(msg) = self.check_pair(s, t) {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error(msg));
            return;
        }
        RouterMetrics::bump(&metrics.queries);
        let seq = conn.push_waiting();
        let line = format!("QUERY {s} {t}\n");
        match self.shared.partition.route(s, t) {
            ShardRoute::Single(shard) => {
                let rid = self.next_request(id, seq, 1, AggKind::Passthrough);
                self.submit_upstream(false, shard, rid, None, line.into_bytes());
            }
            ShardRoute::Scatter(a, b) => {
                RouterMetrics::bump(&self.shared.metrics.scatter_queries);
                let rid =
                    self.next_request(id, seq, 2, AggKind::MinDist { best: None, error: None });
                self.submit_upstream(false, a, rid, None, line.clone().into_bytes());
                self.submit_upstream(false, b, rid, None, line.into_bytes());
            }
        }
    }

    fn route_batch(&mut self, conn: &mut Conn, id: u64, pairs: Vec<(VertexId, VertexId)>) {
        let metrics = &self.shared.metrics;
        for &(s, t) in &pairs {
            if let Err(msg) = self.check_pair(s, t) {
                RouterMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(msg));
                return;
            }
        }
        RouterMetrics::bump(&metrics.batch_requests);
        if pairs.is_empty() {
            conn.push_ready(protocol::format_batch_response(&[]));
            return;
        }
        let seq = conn.push_waiting();
        let slices = aggregate::split_batch(&self.shared.partition, &pairs);
        let rid = self.next_request(
            id,
            seq,
            slices.len() as u32,
            AggKind::Batch { dists: vec![hcl_graph::INF; pairs.len()], error: None },
        );
        for slice in slices {
            let mut bytes = format!("BATCH {}\n", slice.pairs.len()).into_bytes();
            for (s, t) in &slice.pairs {
                bytes.extend_from_slice(format!("{s} {t}\n").as_bytes());
            }
            self.submit_upstream(false, slice.shard, rid, Some(slice.positions), bytes);
        }
    }

    /// Fans one argument-less request line out to every shard's data
    /// connection.
    fn fan_out_simple(&mut self, conn: &mut Conn, id: u64, command: &str, kind: AggKind) {
        let shards = self.shared.partition.num_shards();
        let seq = conn.push_waiting();
        let rid = self.next_request(id, seq, shards, kind);
        for shard in 0..shards {
            self.submit_upstream(false, shard, rid, None, format!("{command}\n").into_bytes());
        }
    }

    fn fan_out_reload(&mut self, conn: &mut Conn, id: u64, dir: String, index: Option<String>) {
        let metrics = &self.shared.metrics;
        if index.is_some() {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error(
                "router RELOAD takes one deployment directory (see docs/PROTOCOL.md)",
            ));
            return;
        }
        if self.reload_busy {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error("reload already in progress"));
            return;
        }
        self.reload_busy = true;
        let shards = self.shared.partition.num_shards();
        let seq = conn.push_waiting();
        let rid = self.next_request(id, seq, shards, AggKind::Reload { results: Vec::new() });
        // A packed deployment (`hcl partition --format packed`) ships one
        // self-contained `shardN.hclx` per shard; its presence selects the
        // single-path remap reload over the legacy graph + index pair.
        let packed = std::path::Path::new(&shard_packed_path(&dir, 0)).is_file();
        for shard in 0..shards {
            let line = if packed {
                format!("RELOAD {}\n", shard_packed_path(&dir, shard))
            } else {
                let (graph, index) = shard_paths(&dir, shard);
                format!("RELOAD {graph} {index}\n")
            };
            // Control connection: a slow rebuild must not sit in front of
            // pipelined query responses on the data connection.
            self.submit_upstream(true, shard, rid, None, line.into_bytes());
        }
    }

    // ---- upstream side --------------------------------------------------

    /// Queues one encoded request on a shard connection, connecting the
    /// (lazy) control channel when needed. Failures resolve the request
    /// immediately through the normal response path as an `ERR`.
    fn submit_upstream(
        &mut self,
        ctl: bool,
        shard: u32,
        request_id: u64,
        positions: Option<Vec<u32>>,
        bytes: Vec<u8>,
    ) {
        let token = upstream_token(ctl, shard);
        let failure: Option<String> = {
            let ups =
                if ctl { &mut self.ctl[shard as usize] } else { &mut self.data[shard as usize] };
            match ups.ensure_connected() {
                Err(e) => Some(format!("shard {shard} unavailable: {e}")),
                Ok(false) => None,
                Ok(true) => {
                    let fd = ups.fd().expect("just connected");
                    if self.epoll.add(fd, UPSTREAM_BASE_INTEREST, token).is_err() {
                        ups.take_failed();
                        Some(format!("shard {shard} unavailable: registration failed"))
                    } else {
                        ups.set_registered(UPSTREAM_BASE_INTEREST);
                        None
                    }
                }
            }
        };
        let pending = Pending { request_id, positions };
        match failure {
            None => {
                let ups = if ctl {
                    &mut self.ctl[shard as usize]
                } else {
                    &mut self.data[shard as usize]
                };
                ups.submit(OutboundRequest { bytes, pending });
            }
            Some(msg) => self.apply_response(shard, pending, protocol::format_error(msg)),
        }
    }

    fn upstream_event(&mut self, ctl: bool, shard: u32, now: Instant) {
        let mut resolved: Vec<(Pending, String)> = Vec::new();
        let outcome = {
            let ups =
                if ctl { &mut self.ctl[shard as usize] } else { &mut self.data[shard as usize] };
            ups.try_read(&mut self.scratch, &mut resolved)
        };
        for (pending, line) in resolved {
            self.apply_response(shard, pending, line);
        }
        if outcome.is_err() {
            self.fail_shard(ctl, shard, "connection lost");
        }
        // Settling of the affected client conns happened inside
        // apply_response; writes/interest sync happen in flush_upstreams.
        let _ = now;
    }

    /// Tears down one shard connection and resolves everything it owed
    /// with `ERR` lines.
    fn fail_shard(&mut self, ctl: bool, shard: u32, why: &str) {
        let failed = {
            let ups =
                if ctl { &mut self.ctl[shard as usize] } else { &mut self.data[shard as usize] };
            ups.take_failed()
        };
        let line = protocol::format_error(format!("shard {shard} unavailable: {why}"));
        for pending in failed {
            self.apply_response(shard, pending, line.clone());
        }
    }

    /// Pumps windows, flushes write buffers, and re-syncs epoll interest
    /// for every upstream; a write failure fails the shard.
    fn flush_upstreams(&mut self, _now: Instant) {
        for ctl in [false, true] {
            for shard in 0..self.shared.partition.num_shards() {
                let (write_failed, fd, desired, registered) = {
                    let ups = if ctl {
                        &mut self.ctl[shard as usize]
                    } else {
                        &mut self.data[shard as usize]
                    };
                    ups.pump();
                    let failed = ups.try_write().is_err();
                    (failed, ups.fd(), ups.desired_interest(), ups.registered())
                };
                if write_failed {
                    self.fail_shard(ctl, shard, "write failed");
                    continue;
                }
                let Some(fd) = fd else { continue };
                if desired != registered
                    && self.epoll.modify(fd, desired, upstream_token(ctl, shard)).is_ok()
                {
                    let ups = if ctl {
                        &mut self.ctl[shard as usize]
                    } else {
                        &mut self.data[shard as usize]
                    };
                    ups.set_registered(desired);
                }
            }
        }
    }

    // ---- aggregation ----------------------------------------------------

    /// Feeds one shard response line (or synthesised `ERR`) into its
    /// aggregation entry; completes the client slot when the last
    /// outstanding shard reports.
    fn apply_response(&mut self, shard: u32, pending: Pending, line: String) {
        let Some(agg) = self.requests.get_mut(&pending.request_id) else { return };
        match &mut agg.kind {
            AggKind::Passthrough => {}
            AggKind::MinDist { best, error } => match protocol::parse_query_response(&line) {
                Ok(d) => *best = aggregate::merge_min(*best, d),
                Err(e) => record_error(error, e),
            },
            AggKind::Batch { dists, error } => {
                let positions = pending.positions.as_deref().unwrap_or(&[]);
                match protocol::parse_batch_response(&line, positions.len()) {
                    Ok(answers) => aggregate::fold_batch_answers(dists, positions, &answers),
                    Err(e) => record_error(error, e),
                }
            }
            AggKind::Stats { bodies, error, .. } => match line.strip_prefix("STATS") {
                Some(body) => bodies.push(body.trim().to_string()),
                None => record_error(
                    error,
                    ResponseError::Server(line.strip_prefix("ERR ").unwrap_or(&line).to_string()),
                ),
            },
            AggKind::Epoch { epochs, error } => match protocol::parse_epoch_response(&line) {
                Ok(e) => epochs.push((shard, e)),
                Err(e) => record_error(error, e),
            },
            AggKind::Reload { results } => match protocol::parse_reload_response(&line) {
                Ok(e) => results.push((shard, Ok(e))),
                Err(ResponseError::Server(msg)) => results.push((shard, Err(msg))),
                Err(ResponseError::Malformed(raw)) => {
                    results.push((shard, Err(format!("malformed response {raw:?}"))));
                }
            },
        }
        agg.outstanding -= 1;
        let passthrough_line =
            if matches!(agg.kind, AggKind::Passthrough) { Some(line) } else { None };
        if agg.outstanding == 0 {
            let agg = self.requests.remove(&pending.request_id).expect("agg present");
            self.finish_request(agg, passthrough_line);
        }
    }

    /// Renders the final response for a fully gathered request and
    /// completes it into the owning client connection (if still open).
    fn finish_request(&mut self, agg: Agg, passthrough_line: Option<String>) {
        let metrics = &self.shared.metrics;
        let line = match agg.kind {
            AggKind::Passthrough => passthrough_line.expect("passthrough carries its line"),
            AggKind::MinDist { best, error } => match error {
                None => protocol::format_query_response(best),
                Some(msg) => protocol::format_error(msg),
            },
            AggKind::Batch { dists, error } => match error {
                None => protocol::format_batch_response(&aggregate::finish_batch(dists)),
                Some(msg) => protocol::format_error(msg),
            },
            AggKind::Stats { prefix, bodies, error } => match error {
                None => {
                    let merged = aggregate::merge_stats_bodies(&bodies);
                    if merged.is_empty() {
                        format!("STATS {prefix}")
                    } else {
                        format!("STATS {prefix} {merged}")
                    }
                }
                Some(msg) => protocol::format_error(msg),
            },
            AggKind::Epoch { epochs, error } => {
                let verdict = match error {
                    None => aggregate::epoch_agreement(&epochs),
                    Some(msg) => Err(msg),
                };
                match verdict {
                    Ok(e) => protocol::format_epoch_response(e),
                    Err(msg) => protocol::format_error(msg),
                }
            }
            AggKind::Reload { results } => {
                self.reload_busy = false;
                match aggregate::reload_verdict(&results) {
                    Ok(e) => {
                        RouterMetrics::bump(&metrics.reloads);
                        protocol::format_reload_response(e)
                    }
                    Err(msg) => protocol::format_error(msg),
                }
            }
        };
        if line.starts_with("ERR ") {
            RouterMetrics::bump(&self.shared.metrics.errors);
        }
        let now = Instant::now();
        match self.conns.remove(&agg.conn) {
            Some(mut conn) => {
                conn.complete(agg.seq, line);
                if self.settle(&mut conn, agg.conn, now) {
                    self.conns.insert(agg.conn, conn);
                } else {
                    self.destroy(conn);
                }
            }
            // The owning connection is not in the map: either it is held
            // on `conn_event`'s stack right now (a synchronous submit
            // failure during frame dispatch) — park the line for
            // `drain_deferred` — or it was closed, in which case the
            // dispatcher drops the entry on its next drain.
            None => self.deferred.push((agg.conn, agg.seq, line)),
        }
    }

    /// Applies completions that resolved while `conn` (id `id`) was
    /// detached from the map. Entries addressed to any other connection
    /// belong to sockets that no longer exist and are dropped.
    fn drain_deferred(&mut self, conn: &mut Conn, id: u64) {
        if self.deferred.is_empty() {
            return;
        }
        for (conn_id, seq, line) in std::mem::take(&mut self.deferred) {
            if conn_id == id {
                conn.complete(seq, line);
            }
        }
    }

    // ---- lifecycle ------------------------------------------------------

    /// Promotes/flushes responses and re-syncs epoll interest. Returns
    /// `false` when the connection should be closed.
    fn settle(&mut self, conn: &mut Conn, id: u64, now: Instant) -> bool {
        conn.promote_ready();
        if conn.write_pending() > 0 {
            match conn.try_write() {
                Ok(written) => {
                    if written > 0 {
                        conn.last_activity = now;
                    }
                }
                Err(_) => return false,
            }
        }
        conn.update_backpressure();
        if conn.draining && !conn.has_work() {
            return false;
        }
        let want = conn.desired_interest();
        if want != conn.registered && self.epoll.modify(conn.stream.as_raw_fd(), want, id).is_err()
        {
            return false;
        }
        conn.registered = want;
        true
    }

    fn begin_drain(&mut self, now: Instant) {
        self.draining = true;
        self.drain_deadline = Some(now + self.shared.config.drain_grace);
        self.relisten_at = None;
        if let Some(listener) = self.listener.take() {
            let _ = self.epoll.delete(listener.as_raw_fd());
        }
        let ids: Vec<u64> = self.conns.keys().copied().collect();
        for id in ids {
            let Some(mut conn) = self.conns.remove(&id) else { continue };
            conn.draining = true;
            if self.settle(&mut conn, id, now) {
                self.conns.insert(id, conn);
            } else {
                self.destroy(conn);
            }
        }
    }

    fn expire(&mut self, now: Instant) {
        if let Some(at) = self.relisten_at {
            if now >= at && !self.draining {
                self.relisten_at = None;
                if let Some(listener) = &self.listener {
                    let _ = self.epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER);
                }
            }
        }
        if self.draining {
            if self.drain_deadline.is_some_and(|at| now >= at) {
                for (_, conn) in std::mem::take(&mut self.conns) {
                    self.destroy(conn);
                }
            }
            return;
        }
        let idle = self.shared.config.idle_timeout;
        if idle.is_zero() {
            return;
        }
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                now.saturating_duration_since(c.last_activity) >= idle && !c.awaiting_completions()
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some(conn) = self.conns.remove(&id) {
                self.destroy(conn);
            }
        }
    }

    fn destroy(&mut self, conn: Conn) {
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        RouterMetrics::drop_one(&self.shared.metrics.active_connections);
        drop(conn);
    }
}

fn record_error(slot: &mut Option<String>, e: ResponseError) {
    if slot.is_none() {
        *slot = Some(match e {
            ResponseError::Server(msg) => msg,
            ResponseError::Malformed(raw) => format!("malformed shard response {raw:?}"),
        });
    }
}

/// Wires a [`Reactor`] onto a (nonblocking) listener and runs it on the
/// one router thread. Upstream data connections are established before
/// the spawn so setup errors surface from `Router::bind`.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    listener: TcpListener,
) -> io::Result<std::thread::JoinHandle<()>> {
    let reactor = Reactor::new(shared, listener)?;
    Ok(std::thread::spawn(move || reactor.run()))
}
