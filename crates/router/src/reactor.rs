//! The router's single-threaded epoll event loop.
//!
//! One thread owns the listening socket, every client connection, an
//! eventfd (shutdown wakeup), and two pipelined connections per shard
//! **replica** — *data* (queries, batches, stats, epoch) and *control*
//! (`RELOAD` / `UPDATE`, so a seconds-long index rebuild never stalls
//! query traffic behind it in the replica's per-connection response
//! order). Client
//! connections run on the shared
//! [`ClientDriver`](hcl_server::transport::ClientDriver) — the same
//! accept/read/settle/expiry loop as the server — with this module's
//! [`Core`] plugged in as the
//! [`DriverHooks`](hcl_server::transport::DriverHooks) policy. The
//! router performs no graph computation — every frame either resolves
//! locally (`PING`, `METRICS`, errors) or becomes upstream request
//! lines whose responses are merged by [`aggregate`](crate::aggregate)
//! and completed into the client's response slot.
//!
//! # Resilience
//!
//! Each shard is served by a *replica group* of interchangeable
//! backends (every replica holds the same shard index). Dispatch goes
//! to the first connected replica; on failure the connection's owed
//! requests are re-dispatched verbatim to a sibling (their encoded
//! bytes are retained in flight), bounded by [`MAX_RETRIES`]. Connects
//! are non-blocking with jittered exponential backoff
//! ([`upstream`](crate::upstream)); requests arriving while a replica
//! group is mid-connect park briefly instead of failing. Idle connected
//! replicas get periodic `PING` probes; an unanswered probe fails the
//! replica over before a real request has to discover the corpse.
//!
//! When a shard has **no** healthy replica at all, queries degrade
//! instead of erroring: any live replica of any shard holds the full
//! landmark labelling, so its answer is a true *upper bound* on the
//! distance (never an under-report). Degraded answers are tagged
//! `DIST~` / `DISTS~` so clients can tell exact from approximate.
//! `STATS`, `EPOCH`, `RELOAD`, and `UPDATE` never degrade — they
//! report the failure.

use crate::aggregate;
use crate::router::{RouterMetrics, Shared};
use crate::upstream::{PendingRequest, Upstream, PROBE_ID};
use hcl_core::partition::{shard_packed_path, shard_paths};
use hcl_core::ShardRoute;
use hcl_graph::VertexId;
use hcl_server::protocol::{self, Frame, ResponseError};
use hcl_server::transport::conn::Conn;
use hcl_server::transport::driver::{
    deadline_to_timeout_ms, ClientDriver, DriverConfig, DriverHooks, TOKEN_LISTENER, TOKEN_WAKE,
};
use hcl_server::transport::sys::{self, Epoll, EpollEvent};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

/// Upstream tokens: `2 + 2·(shard·max_replicas + replica) + ctl`.
const TOKEN_UPSTREAM_BASE: u64 = 2;

/// Scratch buffer size for upstream reads.
const READ_CHUNK: usize = 16 * 1024;

/// How many replicas may fail one request before it errors out.
const MAX_RETRIES: u32 = 4;

/// How the responses of one client request are being assembled.
enum AggKind {
    /// Single-shard `QUERY`: relay the replica's response line verbatim
    /// (including `ERR`); re-tagged `DIST~` when answered degraded.
    Passthrough { line: Option<String>, degraded: bool },
    /// Cross-shard `QUERY`: the `INF`-aware minimum of both answers —
    /// exact only if both home shards answered, an upper bound (and
    /// tagged) otherwise.
    MinDist { best: Option<u32>, degraded: bool, error: Option<String> },
    /// Scattered `BATCH`: answers folded into client positions with the
    /// raw `INF` sentinel.
    Batch { dists: Vec<u32>, degraded: bool, error: Option<String> },
    /// `STATS` fan-out: shard bodies to merge under the router prefix.
    Stats { prefix: String, bodies: Vec<String>, error: Option<String> },
    /// `EPOCH` fan-out: answered only on unanimity.
    Epoch { epochs: Vec<(String, u64)>, error: Option<String> },
    /// `RELOAD` fan-out to every replica: all-or-nothing confirmation.
    Reload { results: Vec<(String, Result<u64, String>)> },
    /// `UPDATE` fan-out to every replica of every owning shard:
    /// all-or-nothing confirmation carrying `(epoch, affected)`.
    Update { results: Vec<aggregate::UpdateOutcome> },
}

/// One in-flight client request spanning one or more shard responses.
struct Agg {
    conn: u64,
    seq: u64,
    outstanding: u32,
    kind: AggKind,
}

/// One shard's replica connections plus the requests waiting for any of
/// them to finish connecting.
struct ReplicaGroup {
    replicas: Vec<Upstream>,
    /// Requests that arrived while no replica was connected but one was
    /// mid-connect, each with its give-up deadline.
    parked: VecDeque<(PendingRequest, Instant)>,
}

/// The routing policy and upstream fleet, plugged into the shared
/// client-connection driver as its [`DriverHooks`].
struct Core {
    shared: Arc<Shared>,
    groups: Vec<ReplicaGroup>,
    /// Control (`RELOAD`) connections, lazily connected, mirroring the
    /// replica layout of `groups`.
    ctl: Vec<Vec<Upstream>>,
    requests: HashMap<u64, Agg>,
    next_request_id: u64,
    reload_busy: bool,
    /// Finished responses addressed to client slots; drained into
    /// [`ClientDriver::complete`] by the run loop after each dispatch
    /// pass (a request can resolve synchronously inside `on_frame`,
    /// while the driver holds the owning connection on its stack).
    outbox: Vec<(u64, u64, String)>,
    scratch: Vec<u8>,
    /// Token stride: the widest replica group.
    max_replicas: usize,
}

impl Core {
    fn data_token(&self, shard: usize, replica: usize) -> u64 {
        TOKEN_UPSTREAM_BASE + 2 * (shard * self.max_replicas + replica) as u64
    }

    fn ctl_token(&self, shard: usize, replica: usize) -> u64 {
        self.data_token(shard, replica) + 1
    }

    fn ctl_label(&self, shard: usize, replica: usize) -> String {
        if self.ctl[shard].len() == 1 {
            format!("shard{shard}")
        } else {
            format!("shard{shard}/r{replica}")
        }
    }

    fn next_request(&mut self, conn: u64, seq: u64, outstanding: u32, kind: AggKind) -> u64 {
        let rid = self.next_request_id;
        self.next_request_id += 1;
        self.requests.insert(rid, Agg { conn, seq, outstanding, kind });
        rid
    }

    /// Range-validates a pair against the partitioned id space, matching
    /// the server's error string.
    fn check_pair(&self, s: VertexId, t: VertexId) -> Result<(), String> {
        let n = self.shared.partition.num_vertices();
        for v in [s, t] {
            if v as usize >= n {
                return Err(format!("vertex {v} out of range for graph with {n} vertices"));
            }
        }
        Ok(())
    }

    // ---- dispatch -------------------------------------------------------

    /// Routes one encoded data request to its home shard: the first
    /// connected replica takes it; otherwise connects are kicked, the
    /// request parks behind an in-progress connect, or it resolves
    /// unroutable (degrade / `ERR`).
    fn dispatch_data(&mut self, epoll: &Epoll, req: PendingRequest, now: Instant) {
        let shard = req.home_shard as usize;
        if let Some(r) = self.connected_replica(shard) {
            self.groups[shard].replicas[r].submit(req);
            return;
        }
        for r in 0..self.groups[shard].replicas.len() {
            if self.groups[shard].replicas[r].can_attempt(now) {
                self.start_replica_connect(epoll, false, shard, r, now);
            }
        }
        if let Some(r) = self.connected_replica(shard) {
            self.groups[shard].replicas[r].submit(req);
            return;
        }
        if self.groups[shard].replicas.iter().any(Upstream::is_connecting) {
            // Bounded parking: while a shard flaps, at most `max_parked`
            // requests wait for its reconnect; the rest are refused
            // `ERR busy` right away rather than queueing without bound.
            let cap = self.shared.config.max_parked;
            if cap != 0 && self.groups[shard].parked.len() >= cap {
                RouterMetrics::bump(&self.shared.metrics.parked_dropped);
                self.apply_response(format!("shard{shard}"), req, protocol::format_error("busy"));
                return;
            }
            let deadline = now + self.shared.config.park_timeout;
            self.groups[shard].parked.push_back((req, deadline));
            return;
        }
        self.resolve_unroutable(req);
    }

    fn connected_replica(&self, shard: usize) -> Option<usize> {
        self.groups[shard].replicas.iter().position(Upstream::is_connected)
    }

    /// Last resort for a request whose home shard has no healthy (or
    /// inbound) replica: queries re-route to *any* live replica for a
    /// label-only upper bound, tagged degraded; everything else gets an
    /// `ERR`. Probes simply vanish — their failure already counted.
    fn resolve_unroutable(&mut self, mut req: PendingRequest) {
        if req.request_id == PROBE_ID {
            return;
        }
        let degradable = matches!(
            self.requests.get(&req.request_id).map(|a| &a.kind),
            Some(AggKind::Passthrough { .. } | AggKind::MinDist { .. } | AggKind::Batch { .. })
        );
        let home = req.home_shard;
        if degradable {
            let foreign = self.groups.iter().enumerate().find_map(|(s, g)| {
                g.replicas.iter().position(|u| u.is_connected()).map(|r| (s, r))
            });
            if let Some((s, r)) = foreign {
                if !req.degraded {
                    req.degraded = true;
                    RouterMetrics::bump(&self.shared.metrics.degraded);
                }
                self.groups[s].replicas[r].submit(req);
                return;
            }
        }
        self.apply_response(
            format!("shard{home}"),
            req,
            protocol::format_error(format!("shard {home} unavailable: no healthy replica")),
        );
    }

    /// Kicks a non-blocking connect on one replica and registers the fd.
    fn start_replica_connect(
        &mut self,
        epoll: &Epoll,
        ctl: bool,
        shard: usize,
        replica: usize,
        now: Instant,
    ) {
        let token =
            if ctl { self.ctl_token(shard, replica) } else { self.data_token(shard, replica) };
        enum Outcome {
            Started(bool),
            RegFailed,
            Failed(String),
        }
        let outcome = {
            let ups = if ctl {
                &mut self.ctl[shard][replica]
            } else {
                &mut self.groups[shard].replicas[replica]
            };
            match ups.start_connect(now) {
                Ok(fd) => {
                    let interest = ups.desired_interest();
                    if epoll.add(fd, interest, token).is_ok() {
                        ups.set_registered(interest);
                        Outcome::Started(ups.is_connected())
                    } else {
                        Outcome::RegFailed
                    }
                }
                Err(e) => Outcome::Failed(e.to_string()),
            }
        };
        match outcome {
            Outcome::Started(true) => self.on_replica_connected(ctl, shard, replica, now),
            Outcome::Started(false) => {}
            Outcome::RegFailed => {
                self.fail_replica(epoll, ctl, shard, replica, now, "epoll registration failed");
            }
            Outcome::Failed(e) => {
                self.fail_replica(epoll, ctl, shard, replica, now, &format!("connect failed: {e}"));
            }
        }
    }

    /// A replica's connect just completed: schedule its first probe and
    /// take over any requests parked waiting for the group.
    fn on_replica_connected(&mut self, ctl: bool, shard: usize, replica: usize, now: Instant) {
        if ctl {
            return;
        }
        let interval = self.shared.config.probe_interval;
        let group = &mut self.groups[shard];
        if !interval.is_zero() {
            group.replicas[replica].next_probe_at = Some(now + interval);
        }
        let parked: Vec<_> = group.parked.drain(..).collect();
        for (req, _) in parked {
            self.groups[shard].replicas[replica].submit(req);
        }
    }

    /// Tears one replica connection down (starting its backoff) and
    /// deals with every request it still owed: control requests error
    /// out (`RELOAD` must never silently run twice), data requests fail
    /// over to a sibling within the retry budget.
    fn fail_replica(
        &mut self,
        epoll: &Epoll,
        ctl: bool,
        shard: usize,
        replica: usize,
        now: Instant,
        why: &str,
    ) {
        let owed = {
            let ups = if ctl {
                &mut self.ctl[shard][replica]
            } else {
                &mut self.groups[shard].replicas[replica]
            };
            ups.fail(now)
        };
        if !ctl && !owed.is_empty() {
            RouterMetrics::bump(&self.shared.metrics.failovers);
        }
        for mut req in owed {
            if ctl {
                let label = self.ctl_label(shard, replica);
                let line = protocol::format_error(format!("shard {shard} unavailable: {why}"));
                self.apply_response(label, req, line);
                continue;
            }
            req.retries += 1;
            if req.retries > MAX_RETRIES {
                let line = protocol::format_error(format!(
                    "shard {shard} unavailable: {why} (gave up after {} attempts)",
                    req.retries
                ));
                self.apply_response(format!("shard{shard}"), req, line);
            } else {
                RouterMetrics::bump(&self.shared.metrics.retries);
                self.dispatch_data(epoll, req, now);
            }
        }
    }

    // ---- upstream events ------------------------------------------------

    fn upstream_event(
        &mut self,
        epoll: &Epoll,
        ctl: bool,
        shard: usize,
        replica: usize,
        now: Instant,
    ) {
        let connecting = {
            let ups =
                if ctl { &self.ctl[shard][replica] } else { &self.groups[shard].replicas[replica] };
            ups.is_connecting()
        };
        if connecting {
            let verdict = {
                let ups = if ctl {
                    &mut self.ctl[shard][replica]
                } else {
                    &mut self.groups[shard].replicas[replica]
                };
                ups.try_complete_connect()
            };
            match verdict {
                Ok(true) => self.on_replica_connected(ctl, shard, replica, now),
                Ok(false) => {}
                Err(e) => self.fail_replica(
                    epoll,
                    ctl,
                    shard,
                    replica,
                    now,
                    &format!("connect failed: {e}"),
                ),
            }
            // Freshly connected (or not): nothing to read yet; the flush
            // pass pumps queued requests and re-syncs interest.
            return;
        }
        let mut resolved: Vec<(PendingRequest, String)> = Vec::new();
        let outcome = {
            let ups = if ctl {
                &mut self.ctl[shard][replica]
            } else {
                &mut self.groups[shard].replicas[replica]
            };
            if !ups.is_connected() {
                return; // stale event for an already-failed socket
            }
            let outcome = ups.try_read(&mut self.scratch, &mut resolved);
            if !resolved.is_empty() {
                // Any response is proof of life: reset the backoff
                // escalation and push the next probe out.
                ups.note_alive();
                let interval = self.shared.config.probe_interval;
                if !ctl && !interval.is_zero() {
                    ups.next_probe_at = Some(now + interval);
                }
                for (pending, _) in &resolved {
                    if pending.request_id == PROBE_ID {
                        if let Some(sent) = ups.probe_sent_at.take() {
                            ups.last_probe_us =
                                now.saturating_duration_since(sent).as_micros() as u64;
                        }
                    }
                }
            }
            outcome
        };
        for (pending, line) in resolved {
            if pending.request_id == PROBE_ID {
                continue;
            }
            let label = if ctl {
                self.ctl_label(shard, replica)
            } else {
                format!("shard{}", pending.home_shard)
            };
            self.apply_response(label, pending, line);
        }
        if outcome.is_err() {
            self.fail_replica(epoll, ctl, shard, replica, now, "connection lost");
        }
    }

    /// Timer-driven upstream maintenance: connect timeouts, probe
    /// timeouts, proactive reconnects (recovery needs no traffic),
    /// probe sends, and parked-request expiry.
    fn tick(&mut self, epoll: &Epoll, now: Instant) {
        let probe_timeout = self.shared.config.probe_timeout;
        let probe_interval = self.shared.config.probe_interval;
        for shard in 0..self.groups.len() {
            for r in 0..self.groups[shard].replicas.len() {
                if self.groups[shard].replicas[r].connect_deadline().is_some_and(|d| now >= d) {
                    self.fail_replica(epoll, false, shard, r, now, "connect timed out");
                }
                let probe_dead = self.groups[shard].replicas[r]
                    .probe_sent_at
                    .is_some_and(|t| now.saturating_duration_since(t) >= probe_timeout);
                if probe_dead {
                    RouterMetrics::bump(&self.shared.metrics.probe_failures);
                    self.fail_replica(epoll, false, shard, r, now, "probe timed out");
                }
                if self.groups[shard].replicas[r].can_attempt(now) {
                    self.start_replica_connect(epoll, false, shard, r, now);
                }
                let send_probe = {
                    let ups = &self.groups[shard].replicas[r];
                    !probe_interval.is_zero()
                        && ups.is_connected()
                        && ups.probe_sent_at.is_none()
                        && ups.pending_len() == 0
                        && ups.backlog_len() == 0
                        && ups.next_probe_at.is_some_and(|t| now >= t)
                };
                if send_probe {
                    RouterMetrics::bump(&self.shared.metrics.probes);
                    let ups = &mut self.groups[shard].replicas[r];
                    ups.probe_sent_at = Some(now);
                    ups.next_probe_at = Some(now + probe_interval);
                    ups.submit(PendingRequest {
                        request_id: PROBE_ID,
                        home_shard: shard as u32,
                        positions: None,
                        bytes: b"PING\n".to_vec(),
                        retries: 0,
                        degraded: false,
                    });
                }
            }
            // Parked requests: drain into a now-connected replica, give
            // up early once nothing is even connecting, or expire at
            // their individual deadlines.
            let any_connected = self.groups[shard].replicas.iter().any(Upstream::is_connected);
            let any_connecting = self.groups[shard].replicas.iter().any(Upstream::is_connecting);
            if any_connected || !any_connecting {
                let parked: Vec<_> = self.groups[shard].parked.drain(..).collect();
                for (req, _) in parked {
                    if any_connected {
                        self.dispatch_data(epoll, req, now);
                    } else {
                        self.resolve_unroutable(req);
                    }
                }
            } else {
                while self.groups[shard].parked.front().is_some_and(|(_, d)| now >= *d) {
                    let (req, _) = self.groups[shard].parked.pop_front().expect("front checked");
                    self.resolve_unroutable(req);
                }
            }
            for r in 0..self.ctl[shard].len() {
                if self.ctl[shard][r].connect_deadline().is_some_and(|d| now >= d) {
                    self.fail_replica(epoll, true, shard, r, now, "connect timed out");
                }
                if self.ctl[shard][r].backlog_len() > 0 && self.ctl[shard][r].can_attempt(now) {
                    self.start_replica_connect(epoll, true, shard, r, now);
                }
            }
        }
    }

    /// Pumps windows, flushes write buffers, and re-syncs epoll interest
    /// for every upstream; a write failure fails the replica over.
    fn flush_upstreams(&mut self, epoll: &Epoll, now: Instant) {
        for shard in 0..self.groups.len() {
            for ctl in [false, true] {
                let count =
                    if ctl { self.ctl[shard].len() } else { self.groups[shard].replicas.len() };
                for r in 0..count {
                    let token =
                        if ctl { self.ctl_token(shard, r) } else { self.data_token(shard, r) };
                    let (write_failed, fd, desired, registered) = {
                        let ups = if ctl {
                            &mut self.ctl[shard][r]
                        } else {
                            &mut self.groups[shard].replicas[r]
                        };
                        ups.pump();
                        let failed = ups.try_write().is_err();
                        (failed, ups.fd(), ups.desired_interest(), ups.registered())
                    };
                    if write_failed {
                        self.fail_replica(epoll, ctl, shard, r, now, "write failed");
                        continue;
                    }
                    let Some(fd) = fd else { continue };
                    if desired != registered && epoll.modify(fd, desired, token).is_ok() {
                        let ups = if ctl {
                            &mut self.ctl[shard][r]
                        } else {
                            &mut self.groups[shard].replicas[r]
                        };
                        ups.set_registered(desired);
                    }
                }
            }
        }
    }

    /// The nearest upstream-side deadline (connect/probe timeouts,
    /// backoff expiries, probe schedules, parked requests).
    fn next_deadline(&self) -> Option<Instant> {
        let probe_timeout = self.shared.config.probe_timeout;
        let mut deadline: Option<Instant> = None;
        let mut fold = |at: Option<Instant>| {
            if let Some(at) = at {
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
        };
        for (shard, group) in self.groups.iter().enumerate() {
            if let Some((_, d)) = group.parked.front() {
                fold(Some(*d));
            }
            for ups in &group.replicas {
                fold(ups.connect_deadline());
                // Proactive reconnects fire as soon as backoff ends.
                fold(ups.backoff_until());
                if ups.is_connected() && ups.probe_sent_at.is_none() {
                    fold(ups.next_probe_at);
                }
                fold(ups.probe_sent_at.map(|t| t + probe_timeout));
            }
            for ups in &self.ctl[shard] {
                fold(ups.connect_deadline());
                if ups.backlog_len() > 0 {
                    fold(ups.backoff_until());
                }
            }
        }
        deadline
    }

    // ---- frame routing --------------------------------------------------

    fn route_query(&mut self, epoll: &Epoll, conn: &mut Conn, id: u64, s: VertexId, t: VertexId) {
        let metrics = &self.shared.metrics;
        if let Err(msg) = self.check_pair(s, t) {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error(msg));
            return;
        }
        RouterMetrics::bump(&metrics.queries);
        let now = Instant::now();
        let seq = conn.push_waiting();
        let line = format!("QUERY {s} {t}\n");
        match self.shared.partition.route(s, t) {
            ShardRoute::Single(shard) => {
                let rid = self.next_request(
                    id,
                    seq,
                    1,
                    AggKind::Passthrough { line: None, degraded: false },
                );
                self.dispatch_data(epoll, data_request(rid, shard, None, line.into_bytes()), now);
            }
            ShardRoute::Scatter(a, b) => {
                RouterMetrics::bump(&self.shared.metrics.scatter_queries);
                let rid = self.next_request(
                    id,
                    seq,
                    2,
                    AggKind::MinDist { best: None, degraded: false, error: None },
                );
                self.dispatch_data(
                    epoll,
                    data_request(rid, a, None, line.clone().into_bytes()),
                    now,
                );
                self.dispatch_data(epoll, data_request(rid, b, None, line.into_bytes()), now);
            }
        }
    }

    fn route_batch(
        &mut self,
        epoll: &Epoll,
        conn: &mut Conn,
        id: u64,
        pairs: Vec<(VertexId, VertexId)>,
    ) {
        let metrics = &self.shared.metrics;
        for &(s, t) in &pairs {
            if let Err(msg) = self.check_pair(s, t) {
                RouterMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(msg));
                return;
            }
        }
        RouterMetrics::bump(&metrics.batch_requests);
        if pairs.is_empty() {
            conn.push_ready(protocol::format_batch_response(&[]));
            return;
        }
        let now = Instant::now();
        let seq = conn.push_waiting();
        let slices = aggregate::split_batch(&self.shared.partition, &pairs);
        let rid = self.next_request(
            id,
            seq,
            slices.len() as u32,
            AggKind::Batch {
                dists: vec![hcl_graph::INF; pairs.len()],
                degraded: false,
                error: None,
            },
        );
        for slice in slices {
            let mut bytes = format!("BATCH {}\n", slice.pairs.len()).into_bytes();
            for (s, t) in &slice.pairs {
                bytes.extend_from_slice(format!("{s} {t}\n").as_bytes());
            }
            self.dispatch_data(
                epoll,
                data_request(rid, slice.shard, Some(slice.positions), bytes),
                now,
            );
        }
    }

    /// Fans one argument-less request line out to (the first healthy
    /// replica of) every shard's data connection.
    fn fan_out_simple(
        &mut self,
        epoll: &Epoll,
        conn: &mut Conn,
        id: u64,
        command: &str,
        kind: AggKind,
    ) {
        let shards = self.shared.partition.num_shards();
        let now = Instant::now();
        let seq = conn.push_waiting();
        let rid = self.next_request(id, seq, shards, kind);
        for shard in 0..shards {
            self.dispatch_data(
                epoll,
                data_request(rid, shard, None, format!("{command}\n").into_bytes()),
                now,
            );
        }
    }

    /// Fans `RELOAD` out to **every replica of every shard** on the
    /// control connections: replicas answer identical data only while
    /// they serve identical epochs, so the confirmation is
    /// all-or-nothing across the whole fleet.
    fn fan_out_reload(
        &mut self,
        epoll: &Epoll,
        conn: &mut Conn,
        id: u64,
        dir: String,
        index: Option<String>,
    ) {
        let metrics = &self.shared.metrics;
        if index.is_some() {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error(
                "router RELOAD takes one deployment directory (see docs/PROTOCOL.md)",
            ));
            return;
        }
        if self.reload_busy {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error("reload already in progress"));
            return;
        }
        self.reload_busy = true;
        let now = Instant::now();
        let seq = conn.push_waiting();
        let replicas_total: u32 = self.ctl.iter().map(|g| g.len() as u32).sum();
        let rid =
            self.next_request(id, seq, replicas_total, AggKind::Reload { results: Vec::new() });
        // A packed deployment (`hcl partition --format packed`) ships one
        // self-contained `shardN.hclx` per shard; its presence selects the
        // single-path remap reload over the legacy graph + index pair.
        let packed = std::path::Path::new(&shard_packed_path(&dir, 0)).is_file();
        for shard in 0..self.ctl.len() {
            let line = if packed {
                format!("RELOAD {}\n", shard_packed_path(&dir, shard as u32))
            } else {
                let (graph, index) = shard_paths(&dir, shard as u32);
                format!("RELOAD {graph} {index}\n")
            };
            for r in 0..self.ctl[shard].len() {
                // Control connection: a slow rebuild must not sit in
                // front of pipelined query responses on the data
                // connection.
                self.ctl[shard][r].submit(data_request(
                    rid,
                    shard as u32,
                    None,
                    line.clone().into_bytes(),
                ));
                if self.ctl[shard][r].can_attempt(now) {
                    self.start_replica_connect(epoll, true, shard, r, now);
                }
            }
        }
    }

    /// Fans one incremental edit out to **every replica of each shard
    /// owning an endpoint** on the control connections. Replicas of an
    /// owning shard serve interchangeable answers only while they hold
    /// identical indexes, so — like `RELOAD` — the confirmation is
    /// all-or-nothing: any replica failing to apply the edit turns the
    /// whole fan-out into an `ERR` naming each responder's outcome.
    /// Shards owning neither endpoint are untouched (their labels cannot
    /// change: the edit's endpoints bound every affected vertex).
    fn fan_out_update(
        &mut self,
        epoll: &Epoll,
        conn: &mut Conn,
        id: u64,
        add: bool,
        u: VertexId,
        v: VertexId,
    ) {
        let metrics = &self.shared.metrics;
        if let Err(msg) = self.check_pair(u, v) {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error(msg));
            return;
        }
        // UPDATE shares the reload gate: both are whole-index swaps on
        // the replicas, and interleaving two fan-outs could commit them
        // in different orders on different replicas.
        if self.reload_busy {
            RouterMetrics::bump(&metrics.errors);
            conn.push_ready(protocol::format_error("reload or update already in progress"));
            return;
        }
        self.reload_busy = true;
        let now = Instant::now();
        let seq = conn.push_waiting();
        let mut shards = vec![self.shared.partition.shard_of(u) as usize];
        let shard_v = self.shared.partition.shard_of(v) as usize;
        if !shards.contains(&shard_v) {
            shards.push(shard_v);
        }
        let replicas_total: u32 = shards.iter().map(|&s| self.ctl[s].len() as u32).sum();
        let rid =
            self.next_request(id, seq, replicas_total, AggKind::Update { results: Vec::new() });
        let op = if add { "ADD" } else { "DEL" };
        let line = format!("UPDATE {op} {u} {v}\n");
        for &shard in &shards {
            for r in 0..self.ctl[shard].len() {
                // Control connection, same as RELOAD: an index swap must
                // not sit in front of pipelined query responses on the
                // data connection.
                self.ctl[shard][r].submit(data_request(
                    rid,
                    shard as u32,
                    None,
                    line.clone().into_bytes(),
                ));
                if self.ctl[shard][r].can_attempt(now) {
                    self.start_replica_connect(epoll, true, shard, r, now);
                }
            }
        }
    }

    // ---- aggregation ----------------------------------------------------

    /// Feeds one replica response line (or synthesised `ERR`) into its
    /// aggregation entry; moves the final response to the outbox when
    /// the last outstanding responder reports.
    fn apply_response(&mut self, label: String, pending: PendingRequest, line: String) {
        let Some(agg) = self.requests.get_mut(&pending.request_id) else { return };
        match &mut agg.kind {
            AggKind::Passthrough { line: slot, degraded } => {
                *degraded |= pending.degraded;
                *slot = Some(line);
            }
            AggKind::MinDist { best, degraded, error } => {
                match protocol::parse_query_response_tagged(&line) {
                    Ok((d, approx)) => {
                        *best = aggregate::merge_min(*best, d);
                        *degraded |= approx || pending.degraded;
                    }
                    Err(e) => record_error(error, e),
                }
            }
            AggKind::Batch { dists, degraded, error } => {
                let positions = pending.positions.as_deref().unwrap_or(&[]);
                match protocol::parse_batch_response_tagged(&line, positions.len()) {
                    Ok((answers, approx)) => {
                        aggregate::fold_batch_answers(dists, positions, &answers);
                        *degraded |= approx || pending.degraded;
                    }
                    Err(e) => record_error(error, e),
                }
            }
            AggKind::Stats { bodies, error, .. } => match line.strip_prefix("STATS") {
                Some(body) => bodies.push(body.trim().to_string()),
                None => record_error(
                    error,
                    ResponseError::Server(line.strip_prefix("ERR ").unwrap_or(&line).to_string()),
                ),
            },
            AggKind::Epoch { epochs, error } => match protocol::parse_epoch_response(&line) {
                Ok(e) => epochs.push((label, e)),
                Err(e) => record_error(error, e),
            },
            AggKind::Reload { results } => match protocol::parse_reload_response(&line) {
                Ok(e) => results.push((label, Ok(e))),
                Err(ResponseError::Server(msg)) => results.push((label, Err(msg))),
                Err(ResponseError::Malformed(raw)) => {
                    results.push((label, Err(format!("malformed response {raw:?}"))));
                }
            },
            AggKind::Update { results } => match protocol::parse_update_response(&line) {
                Ok(pair) => results.push((label, Ok(pair))),
                Err(ResponseError::Server(msg)) => results.push((label, Err(msg))),
                Err(ResponseError::Malformed(raw)) => {
                    results.push((label, Err(format!("malformed response {raw:?}"))));
                }
            },
        }
        agg.outstanding -= 1;
        if agg.outstanding == 0 {
            let agg = self.requests.remove(&pending.request_id).expect("agg present");
            self.finish_request(agg);
        }
    }

    /// Renders the final response for a fully gathered request and
    /// queues it for the owning client connection.
    fn finish_request(&mut self, agg: Agg) {
        let metrics = &self.shared.metrics;
        let line = match agg.kind {
            AggKind::Passthrough { line, degraded } => {
                let line = line.expect("passthrough carries its line");
                if degraded {
                    // Re-tag what the foreign shard reported exact: from
                    // the client's perspective it is only an upper bound.
                    match protocol::parse_query_response_tagged(&line) {
                        Ok((d, _)) => protocol::format_query_response_tagged(d, true),
                        Err(_) => line, // ERR passes through unmodified
                    }
                } else {
                    line
                }
            }
            AggKind::MinDist { best, degraded, error } => match error {
                None => protocol::format_query_response_tagged(best, degraded),
                Some(msg) => protocol::format_error(msg),
            },
            AggKind::Batch { dists, degraded, error } => match error {
                None => protocol::format_batch_response_tagged(
                    &aggregate::finish_batch(dists),
                    degraded,
                ),
                Some(msg) => protocol::format_error(msg),
            },
            AggKind::Stats { prefix, bodies, error } => match error {
                None => {
                    let merged = aggregate::merge_stats_bodies(&bodies);
                    if merged.is_empty() {
                        format!("STATS {prefix}")
                    } else {
                        format!("STATS {prefix} {merged}")
                    }
                }
                Some(msg) => protocol::format_error(msg),
            },
            AggKind::Epoch { epochs, error } => {
                let verdict = match error {
                    None => aggregate::epoch_agreement(&epochs),
                    Some(msg) => Err(msg),
                };
                match verdict {
                    Ok(e) => protocol::format_epoch_response(e),
                    Err(msg) => protocol::format_error(msg),
                }
            }
            AggKind::Reload { results } => {
                self.reload_busy = false;
                match aggregate::reload_verdict(&results) {
                    Ok(e) => {
                        RouterMetrics::bump(&metrics.reloads);
                        protocol::format_reload_response(e)
                    }
                    Err(msg) => protocol::format_error(msg),
                }
            }
            AggKind::Update { results } => {
                self.reload_busy = false;
                match aggregate::update_verdict(&results) {
                    Ok((epoch, affected)) => {
                        RouterMetrics::bump(&metrics.updates);
                        protocol::format_update_response(epoch, affected)
                    }
                    Err(msg) => protocol::format_error(msg),
                }
            }
        };
        if line.starts_with("ERR ") {
            RouterMetrics::bump(&self.shared.metrics.errors);
        }
        self.outbox.push((agg.conn, agg.seq, line));
    }

    /// Builds the single-line JSON body of a router `METRICS` response:
    /// the router's own counters plus per-replica connection state.
    fn metrics_json(&self) -> String {
        use std::sync::atomic::Ordering;
        let m = &self.shared.metrics;
        let mut upstreams = String::new();
        for (shard, group) in self.groups.iter().enumerate() {
            for (replica, ups) in group.replicas.iter().enumerate() {
                if !upstreams.is_empty() {
                    upstreams.push(',');
                }
                upstreams.push_str(&format!(
                    "{{\"shard\":{shard},\"replica\":{replica},\"addr\":\"{}\",\
                     \"state\":\"{}\",\"pending\":{},\"backlog\":{},\"parked\":{},\
                     \"attempt\":{},\"failures\":{},\"probe_us\":{}}}",
                    ups.addr(),
                    ups.state_name(),
                    ups.pending_len(),
                    ups.backlog_len(),
                    group.parked.len(),
                    ups.attempt(),
                    ups.failures,
                    ups.last_probe_us,
                ));
            }
        }
        format!(
            "{{\"role\":\"router\",\"shards\":{},\"connections\":{},\
             \"active_connections\":{},\"rejected_connections\":{},\
             \"timed_out_connections\":{},\"queries\":{},\"scatter_queries\":{},\
             \"batch_requests\":{},\"errors\":{},\"reloads\":{},\"updates\":{},\
             \"failovers\":{},\"retries\":{},\"degraded\":{},\"probes\":{},\
             \"probe_failures\":{},\"parked_dropped\":{},\"upstreams\":[{upstreams}]}}",
            self.shared.partition.num_shards(),
            m.connections.load(Ordering::Relaxed),
            m.active_connections.load(Ordering::Relaxed),
            m.rejected_connections.load(Ordering::Relaxed),
            m.timed_out_connections.load(Ordering::Relaxed),
            m.queries.load(Ordering::Relaxed),
            m.scatter_queries.load(Ordering::Relaxed),
            m.batch_requests.load(Ordering::Relaxed),
            m.errors.load(Ordering::Relaxed),
            m.reloads.load(Ordering::Relaxed),
            m.updates.load(Ordering::Relaxed),
            m.failovers.load(Ordering::Relaxed),
            m.retries.load(Ordering::Relaxed),
            m.degraded.load(Ordering::Relaxed),
            m.probes.load(Ordering::Relaxed),
            m.probe_failures.load(Ordering::Relaxed),
            m.parked_dropped.load(Ordering::Relaxed),
        )
    }
}

fn data_request(
    request_id: u64,
    home_shard: u32,
    positions: Option<Vec<u32>>,
    bytes: Vec<u8>,
) -> PendingRequest {
    PendingRequest { request_id, home_shard, positions, bytes, retries: 0, degraded: false }
}

impl DriverHooks for Core {
    /// Dispatches one decoded client frame: local answers fill their
    /// slot now, everything else fans out to replicas with an [`Agg`]
    /// keyed by a fresh request id.
    fn on_frame(&mut self, epoll: &Epoll, conn: &mut Conn, id: u64, frame: Frame) {
        let metrics = &self.shared.metrics;
        match frame {
            Frame::Ping => conn.push_ready("PONG".to_string()),
            Frame::Metrics => {
                conn.push_ready(protocol::format_metrics_response(&self.metrics_json()));
            }
            Frame::Invalid(e) => {
                RouterMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
            }
            Frame::Corrupt(e) => {
                RouterMetrics::bump(&metrics.errors);
                conn.push_ready(protocol::format_error(e));
                conn.draining = true;
            }
            Frame::Shutdown => {
                conn.push_ready("BYE".to_string());
                conn.draining = true;
                self.shared.begin_shutdown();
            }
            Frame::Query(s, t) => self.route_query(epoll, conn, id, s, t),
            Frame::Batch(pairs) => self.route_batch(epoll, conn, id, pairs),
            Frame::Stats => {
                let prefix = self.shared.metrics.stats_prefix(self.shared.partition.num_shards());
                self.fan_out_simple(
                    epoll,
                    conn,
                    id,
                    "STATS",
                    AggKind::Stats { prefix, bodies: Vec::new(), error: None },
                );
            }
            Frame::Epoch => self.fan_out_simple(
                epoll,
                conn,
                id,
                "EPOCH",
                AggKind::Epoch { epochs: Vec::new(), error: None },
            ),
            Frame::Reload { graph, index } => self.fan_out_reload(epoll, conn, id, graph, index),
            Frame::Update { add, u, v } => self.fan_out_update(epoll, conn, id, add, u, v),
        }
    }

    fn on_accepted(&mut self) {
        let metrics = &self.shared.metrics;
        RouterMetrics::bump(&metrics.connections);
        RouterMetrics::bump(&metrics.active_connections);
    }

    fn on_rejected(&mut self) {
        RouterMetrics::bump(&self.shared.metrics.rejected_connections);
    }

    fn on_reaped(&mut self) {
        RouterMetrics::bump(&self.shared.metrics.timed_out_connections);
    }

    fn on_closed(&mut self) {
        RouterMetrics::drop_one(&self.shared.metrics.active_connections);
    }
}

pub(crate) struct Reactor {
    epoll: Epoll,
    driver: ClientDriver,
    core: Core,
}

impl Reactor {
    pub fn new(shared: Arc<Shared>, listener: TcpListener) -> io::Result<Reactor> {
        let epoll = Epoll::new()?;
        epoll.add(shared.wake.raw(), sys::EPOLLIN, TOKEN_WAKE)?;
        let window = shared.config.shard_window;
        let max_replicas = shared.replica_addrs.iter().map(Vec::len).max().unwrap_or(1);
        let mut groups = Vec::with_capacity(shared.replica_addrs.len());
        let mut ctl = Vec::with_capacity(shared.replica_addrs.len());
        for group in &shared.replica_addrs {
            groups.push(ReplicaGroup {
                replicas: group.iter().map(|&addr| Upstream::new(addr, window)).collect(),
                parked: VecDeque::new(),
            });
            ctl.push(group.iter().map(|&addr| Upstream::new(addr, 1)).collect());
        }
        let first_conn_id =
            TOKEN_UPSTREAM_BASE + 2 * (shared.replica_addrs.len() * max_replicas) as u64;
        let completion = shared.config.completion_deadline;
        let driver = ClientDriver::new(
            &epoll,
            listener,
            first_conn_id,
            DriverConfig {
                max_connections: shared.config.max_connections,
                idle_timeout: shared.config.idle_timeout,
                drain_grace: shared.config.drain_grace,
                // Router completions have a bounded retry/backoff budget,
                // so the idle-reap exemption is bounded too (the fix for
                // the lost-completion connection leak).
                completion_deadline: (!completion.is_zero()).then_some(completion),
                capacity_line: "ERR router at connection capacity\n",
            },
        )?;
        let core = Core {
            shared,
            groups,
            ctl,
            requests: HashMap::new(),
            next_request_id: 0,
            reload_busy: false,
            outbox: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
            max_replicas,
        };
        Ok(Reactor { epoll, driver, core })
    }

    fn first_conn_id(&self) -> u64 {
        TOKEN_UPSTREAM_BASE + 2 * (self.core.groups.len() * self.core.max_replicas) as u64
    }

    fn drain_outbox(&mut self, now: Instant) {
        while !self.core.outbox.is_empty() {
            for (conn, seq, line) in std::mem::take(&mut self.core.outbox) {
                self.driver.complete(&self.epoll, conn, seq, line, now, &mut self.core);
            }
        }
    }

    pub fn run(mut self) {
        let mut events = vec![EpollEvent::default(); 256];
        // Establish the initial upstream connections (non-blocking) and
        // flush before the first wait.
        let now = Instant::now();
        self.core.tick(&self.epoll, now);
        self.core.flush_upstreams(&self.epoll, now);
        self.drain_outbox(now);
        let first_conn_id = self.first_conn_id();
        loop {
            let deadline = match (self.driver.next_deadline(), self.core.next_deadline()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            let timeout = deadline_to_timeout_ms(deadline);
            let fired = self.epoll.wait(&mut events, timeout).unwrap_or_default();
            let now = Instant::now();
            for event in &events[..fired] {
                let (token, bits) = (event.data, event.events);
                match token {
                    TOKEN_LISTENER => self.driver.accept_ready(&self.epoll, now, &mut self.core),
                    TOKEN_WAKE => self.core.shared.wake.drain(),
                    t if t < first_conn_id => {
                        let slot = t - TOKEN_UPSTREAM_BASE;
                        let ctl = (slot & 1) == 1;
                        let idx = (slot >> 1) as usize;
                        let shard = idx / self.core.max_replicas;
                        let replica = idx % self.core.max_replicas;
                        if shard < self.core.groups.len()
                            && replica < self.core.groups[shard].replicas.len()
                        {
                            self.core.upstream_event(&self.epoll, ctl, shard, replica, now);
                        }
                    }
                    id => self.driver.conn_event(&self.epoll, id, bits, now, &mut self.core),
                }
            }
            self.core.tick(&self.epoll, now);
            self.core.flush_upstreams(&self.epoll, now);
            self.drain_outbox(now);
            // A completion can queue fresh upstream work (none today, but
            // the flush is cheap and keeps the invariant simple).
            self.core.flush_upstreams(&self.epoll, now);
            if self.core.shared.shutting_down() && !self.driver.is_draining() {
                self.driver.begin_drain(&self.epoll, now, &mut self.core);
            }
            self.driver.expire(&self.epoll, now, &mut self.core);
            if self.driver.is_drained() {
                return;
            }
        }
    }
}

fn record_error(slot: &mut Option<String>, e: ResponseError) {
    if slot.is_none() {
        *slot = Some(match e {
            ResponseError::Server(msg) => msg,
            ResponseError::Malformed(raw) => format!("malformed shard response {raw:?}"),
        });
    }
}

/// Wires a [`Reactor`] onto a (nonblocking) listener and runs it on the
/// one router thread. Upstream connections are established by the
/// reactor itself, non-blocking with backoff — a dead shard degrades
/// service instead of failing the bind.
pub(crate) fn spawn(
    shared: Arc<Shared>,
    listener: TcpListener,
) -> io::Result<std::thread::JoinHandle<()>> {
    let reactor = Reactor::new(shared, listener)?;
    Ok(std::thread::spawn(move || reactor.run()))
}
