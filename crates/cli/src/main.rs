//! `hcl` — command-line interface for highway cover labellings.
//!
//! ```text
//! hcl gen   --dataset Skitter [--scale 1.0] --out graph.hclg
//! hcl gen   --ba 100000,8 [--seed 42] --out graph.hclg
//! hcl stats graph.hclg
//! hcl build graph.hclg --landmarks 20 [--threads 0] [--format plain|packed] --out index.hcl
//! hcl pack  graph.hclg index.hcl --out index.hclx
//! hcl query graph.hclg index.hcl <s> <t> [<s> <t> ...]
//! hcl random-queries graph.hclg index.hcl [--count 1000] [--seed 7]
//! hcl serve graph.hclg index.hcl [--port 7777] [--threads 0] [--cache 65536]
//!           [--landmarks 20] [--max-conns 1024] [--idle-timeout 600]
//!           [--max-pending 65536] [--request-deadline-ms 0]
//! hcl serve index.hclx [same flags]      # packed: served zero-copy via mmap
//! hcl client 127.0.0.1:7777 query <s> <t> [<s> <t> ...]
//! hcl client 127.0.0.1:7777 stats|ping|epoch|shutdown
//! hcl client 127.0.0.1:7777 reload graph.hclg [index.hcl]
//! hcl client 127.0.0.1:7777 update add|del <u> <v>
//! hcl reload 127.0.0.1:7777 graph.hclg [index.hcl]
//! ```
//!
//! Graphs use the binary container of `hcl_graph::io` (generate one with
//! `gen`, or convert an edge list by passing a `.txt`/`.el` path anywhere a
//! graph is expected). `serve` exposes the index over the `hcl_server`
//! line protocol; `client` talks to a running server.

use hcl_core::landmarks::LandmarkStrategy;
use hcl_core::{HighwayCoverLabelling, HlOracle};
use hcl_graph::{stats::GraphStats, CsrGraph};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("random-queries") => cmd_random_queries(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("reload") => cmd_reload(&args[1..]),
        Some("help") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
hcl — highway cover labelling toolkit (EDBT 2019 reproduction)

USAGE:
  hcl gen   --dataset <name> [--scale <f>] --out <graph file>
  hcl gen   --ba <n>,<deg> | --web <n>,<deg> | --er <n>,<m> [--seed <s>] --out <file>
  hcl stats <graph file>
  hcl build <graph file> [--landmarks <k>] [--threads <t>]
            [--format plain|packed] --out <index file>
  hcl pack  <graph file> <index file> --out <packed .hclx file>
  hcl query <graph file> <index file> <s> <t> [<s> <t> ...]
  hcl random-queries <graph file> <index file> [--count <c>] [--seed <s>]
  hcl serve <graph file> <index file> [--host <h>] [--port <p>] [--threads <t>]
            [--cache <entries>] [--landmarks <k>] [--max-conns <n>]
            [--idle-timeout <secs>] [--max-pending <n>]
            [--request-deadline-ms <ms>]
  hcl serve <packed .hclx file> [same flags]
  hcl partition <graph file> --shards <n> --out-dir <dir> [--strategy hash|range]
            [--landmarks <k>] [--threads <t>] [--format plain|packed]
            [--replicas <r>]
  hcl route --partition <file> --shards <addr>,<addr>,... [--replicas <r>]
            [--host <h>] [--port <p>] [--max-conns <n>] [--idle-timeout <secs>]
            [--window <n>] [--max-parked <n>]
  hcl client <addr> query <s> <t> [<s> <t> ...]
  hcl client <addr> stats | metrics | ping | epoch | shutdown
  hcl client <addr> reload <graph file> [<index file>]
  hcl client <addr> update add|del <u> <v>
  hcl reload <addr> <graph file> [<index file>]

Graph files ending in .txt/.el are parsed as whitespace edge lists;
anything else uses the binary container.

pack rewrites a graph + plain index into one self-contained .hclx file
(docs/FORMAT.md): delta-varint labels, highway matrix and the sparsified
query CSR, checksummed per section. build --format packed does the same
in one step. serve given a single .hclx maps it read-only and answers
queries straight out of the page cache — no deserialisation — and RELOAD
with a .hclx path swaps generations by remapping.

serve answers QUERY/BATCH/STATS requests over a newline-delimited TCP
protocol until a client sends SHUTDOWN (--cache 0 disables the distance
cache; --port 0 picks an ephemeral port, printed on startup). One epoll
reactor thread drives every connection: --max-conns caps how many are
open at once (overflow gets one ERR line and a close) and --idle-timeout
closes connections quiet for that many seconds (0 disables). Overload
protection: --max-pending caps queued pair-lookups (a QUERY is 1, a
BATCH k is k; overflow is shed with ERR busy, 0 removes the cap), and
--request-deadline-ms answers requests still queued past that budget
with ERR deadline expired instead of stale data (0, the default,
disables). route --max-parked bounds how many requests wait per shard
for a reconnecting replica group; overflow is shed with ERR busy
(0 unbounds). See docs/PROTOCOL.md section 3.1.

reload hot-swaps the serving index without dropping connections: the
paths are read by the *server* process; in-flight queries finish on the
old index, new queries see the new one. Without an index file the server
rebuilds the labelling from the graph's top-degree landmarks (serve
--landmarks sets how many).

update applies one incremental edge insert (add) or delete (del) to the
in-memory index — the server patches only the affected labels instead of
rebuilding, publishes the result as a new epoch, and reports how many
vertices were relabelled. Through the router the edit fans out to every
replica of the shards owning either endpoint, confirmed all-or-nothing
like reload. Packed (mmap-served) generations refuse updates; reload a
plain in-memory index first.

partition splits a graph into a sharded deployment directory: one graph
file per shard (G[Vi + R], original id space), the shared global index,
and the partition map. Each shard is then an ordinary
`hcl serve <dir>/shardI.hclg <dir>/index.hcl`; route puts the router in
front (one address per shard, in shard order) and speaks the same
protocol to clients, so `hcl client` works unchanged. With
--format packed each shard is one self-contained <dir>/shardI.hclx
served as `hcl serve <dir>/shardI.hclx`. RELOAD through the router takes
the deployment directory either way. See docs/PROTOCOL.md.

route --replicas r expects r addresses per shard (shard 0's replicas
first, then shard 1's, ...); every replica of a shard serves the same
shard files. The router sends traffic to the first healthy replica,
fails pipelined requests over to siblings mid-flight, probes idle
replicas with PING, and — when a whole replica group is down — answers
queries with tagged upper bounds (DIST~) from the surviving shards
instead of erroring. partition --replicas stamps the intended count into
the partition map so route defaults to it. client metrics prints the
router's (or server's) JSON health counters.
";

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn load_graph(path: &str) -> Result<CsrGraph, String> {
    hcl_graph::io::load_auto(path).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("gen requires --out <file>")?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;

    let parse_pair = |spec: &str, what: &str| -> Result<(usize, usize), String> {
        let (a, b) = spec.split_once(',').ok_or(format!("--{what} wants <a>,<b>"))?;
        Ok((
            a.parse().map_err(|e| format!("--{what}: {e}"))?,
            b.parse().map_err(|e| format!("--{what}: {e}"))?,
        ))
    };

    let g = if let Some(name) = flag(args, "--dataset") {
        let scale: f64 = parse_flag(args, "--scale", 1.0)?;
        let spec = hcl_workloads::datasets::dataset_by_name(&name)
            .ok_or(format!("unknown dataset {name:?}"))?;
        spec.generate(scale)
    } else if let Some(spec) = flag(args, "--ba") {
        let (n, d) = parse_pair(&spec, "ba")?;
        hcl_graph::generate::barabasi_albert(n, d, seed)
    } else if let Some(spec) = flag(args, "--web") {
        let (n, d) = parse_pair(&spec, "web")?;
        hcl_graph::generate::web_copying(n, d, 0.25, seed)
    } else if let Some(spec) = flag(args, "--er") {
        let (n, m) = parse_pair(&spec, "er")?;
        hcl_graph::generate::erdos_renyi(n, m, seed)
    } else {
        return Err("gen requires one of --dataset/--ba/--web/--er".to_string());
    };

    hcl_graph::io::save_binary(&g, &out).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {} ({} vertices, {} edges)", out, g.num_vertices(), g.num_edges());
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("stats requires a graph file")?;
    let g = load_graph(path)?;
    let s = GraphStats::compute(&g);
    let (_, components) = hcl_graph::connectivity::connected_components(&g);
    println!("n          {}", s.n);
    println!("m          {}", s.m);
    println!("m/n        {:.2}", s.m_over_n);
    println!("avg deg    {:.3}", s.avg_degree);
    println!("max deg    {}", s.max_degree);
    println!("|G|        {}", hcl_graph::stats::format_bytes(s.memory_bytes));
    println!("components {components}");
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("build requires a graph file")?;
    let out = flag(args, "--out").ok_or("build requires --out <index file>")?;
    let k: usize = parse_flag(args, "--landmarks", 20)?;
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let format = flag(args, "--format").unwrap_or_else(|| "plain".to_string());

    let g = load_graph(path)?;
    let landmarks = LandmarkStrategy::TopDegree(k).select(&g);
    let (labelling, stats) = HighwayCoverLabelling::build_parallel(&g, &landmarks, threads)
        .map_err(|e| format!("building labelling: {e}"))?;
    println!(
        "built {} label entries in {:?} ({} edges traversed)",
        stats.labels_added, stats.duration, stats.edges_traversed
    );
    match format.as_str() {
        "plain" => {
            hcl_core::io::save_labelling(&labelling, &out)
                .map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote {out} ({} bytes)", labelling.index_bytes());
        }
        "packed" => save_packed_index(&g, &labelling, &out)?,
        other => return Err(format!("unknown format {other:?} (plain or packed)")),
    }
    Ok(())
}

/// Packs `labelling` plus the sparsified view of `g` into `out` and prints
/// the on-disk size against the plain serialisation it replaces.
fn save_packed_index(
    g: &CsrGraph,
    labelling: &HighwayCoverLabelling,
    out: &str,
) -> Result<(), String> {
    let sparse = hcl_core::SparseView::build(g, labelling.highway());
    hcl_store::save_packed(labelling, &sparse, out).map_err(|e| format!("writing {out}: {e}"))?;
    let store_bytes =
        std::fs::metadata(out).map_err(|e| format!("stat {out}: {e}"))?.len() as usize;
    let plain = hcl_store::plain_index_bytes(
        g.num_vertices(),
        labelling.num_landmarks(),
        labelling.labels().total_entries(),
    );
    println!(
        "wrote {out}: {} packed ({:.2}x of the {} plain index, sparse view included)",
        hcl_graph::stats::format_bytes(store_bytes),
        store_bytes as f64 / plain.max(1) as f64,
        hcl_graph::stats::format_bytes(plain),
    );
    Ok(())
}

fn cmd_pack(args: &[String]) -> Result<(), String> {
    let graph_path = args.first().ok_or("pack requires a graph file")?;
    let index_path = args.get(1).ok_or("pack requires a plain index file")?;
    let out = flag(args, "--out").ok_or("pack requires --out <packed .hclx file>")?;

    let g = load_graph(graph_path)?;
    let labelling =
        hcl_core::io::load_labelling(index_path).map_err(|e| format!("loading index: {e}"))?;
    if labelling.labels().num_vertices() != g.num_vertices() {
        return Err(format!(
            "index has {} vertices but graph has {} — wrong index for this graph?",
            labelling.labels().num_vertices(),
            g.num_vertices()
        ));
    }
    save_packed_index(&g, &labelling, &out)
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let graph_path = args.first().ok_or("query requires a graph file")?;
    let index_path = args.get(1).ok_or("query requires an index file")?;
    let rest = &args[2..];
    if rest.is_empty() || !rest.len().is_multiple_of(2) {
        return Err("query requires an even number of vertex ids".to_string());
    }
    let g = load_graph(graph_path)?;
    let labelling =
        hcl_core::io::load_labelling(index_path).map_err(|e| format!("loading index: {e}"))?;
    let mut oracle = HlOracle::new(&g, labelling);
    for chunk in rest.chunks(2) {
        let s: u32 = chunk[0].parse().map_err(|e| format!("vertex {:?}: {e}", chunk[0]))?;
        let t: u32 = chunk[1].parse().map_err(|e| format!("vertex {:?}: {e}", chunk[1]))?;
        if (s as usize) >= g.num_vertices() || (t as usize) >= g.num_vertices() {
            return Err(format!("vertex out of range (n = {})", g.num_vertices()));
        }
        match oracle.query(s, t) {
            Some(d) => println!("d({s}, {t}) = {d}"),
            None => println!("d({s}, {t}) = unreachable"),
        }
    }
    Ok(())
}

fn cmd_random_queries(args: &[String]) -> Result<(), String> {
    let graph_path = args.first().ok_or("random-queries requires a graph file")?;
    let index_path = args.get(1).ok_or("random-queries requires an index file")?;
    let count: usize = parse_flag(args, "--count", 1_000)?;
    let seed: u64 = parse_flag(args, "--seed", 7)?;

    let g = load_graph(graph_path)?;
    let labelling =
        hcl_core::io::load_labelling(index_path).map_err(|e| format!("loading index: {e}"))?;
    let mut oracle = HlOracle::new(&g, labelling);
    let pairs = hcl_workloads::queries::sample_pairs(g.num_vertices(), count, seed);
    let start = std::time::Instant::now();
    let mut dist = hcl_workloads::queries::DistanceDistribution::default();
    for &(s, t) in &pairs {
        dist.record(oracle.query(s, t));
    }
    let elapsed = start.elapsed();
    println!(
        "{count} queries in {elapsed:?} ({:.2} µs/query), mean distance {:.2}, {} unreachable",
        elapsed.as_micros() as f64 / count as f64,
        dist.mean(),
        dist.unreachable
    );
    Ok(())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    flag(args, name)
        .map(|s| s.parse())
        .transpose()
        .map_err(|e| format!("{name}: {e}"))
        .map(|v| v.unwrap_or(default))
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let graph_path = args.first().ok_or("serve requires a graph file or a packed .hclx index")?;
    let host = flag(args, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = parse_flag(args, "--port", 7777)?;
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let cache: usize = parse_flag(args, "--cache", 1 << 16)?;
    let landmarks: usize = parse_flag(args, "--landmarks", 20)?;
    let defaults = hcl_server::ServerConfig::default();
    let max_conns: usize = parse_flag(args, "--max-conns", defaults.max_connections)?;
    let idle_secs: u64 = parse_flag(args, "--idle-timeout", defaults.idle_timeout.as_secs())?;
    let mut max_pending: usize = parse_flag(args, "--max-pending", defaults.max_pending)?;
    if max_pending == 0 {
        max_pending = usize::MAX; // 0 = uncapped
    }
    let deadline_ms: u64 = parse_flag(args, "--request-deadline-ms", 0)?;

    let service = if hcl_store::is_packed_path(graph_path) {
        let oracle = hcl_store::PackedOracle::open(graph_path)
            .map_err(|e| format!("opening {graph_path}: {e}"))?;
        let service = Arc::new(hcl_server::QueryService::with_index(
            hcl_server::ServingIndex::Packed(oracle),
            cache,
        ));
        let sizes = service.index_sizes();
        println!(
            "packed index mapped zero-copy: store {} ({:.2}x of the {} plain index), \
             sparsified view {} edges ({})",
            hcl_graph::stats::format_bytes(sizes.store_bytes),
            sizes.index_bytes as f64 / sizes.plain_index_bytes.max(1) as f64,
            hcl_graph::stats::format_bytes(sizes.plain_index_bytes),
            sizes.sparse_edges,
            hcl_graph::stats::format_bytes(sizes.sparse_bytes),
        );
        service
    } else {
        let index_path =
            args.get(1).ok_or("serve requires an index file (or a single packed .hclx)")?;
        let g = Arc::new(load_graph(graph_path)?);
        let labelling =
            hcl_core::io::load_labelling(index_path).map_err(|e| format!("loading index: {e}"))?;
        if labelling.labels().num_vertices() != g.num_vertices() {
            return Err(format!(
                "index has {} vertices but graph has {} — wrong index for this graph?",
                labelling.labels().num_vertices(),
                g.num_vertices()
            ));
        }
        let service = Arc::new(hcl_server::QueryService::from_parts(g, Arc::new(labelling), cache));
        let sizes = service.index_sizes();
        println!(
            "query fast path: sparsified view {} edges ({}), index {}",
            sizes.sparse_edges,
            hcl_graph::stats::format_bytes(sizes.sparse_bytes),
            hcl_graph::stats::format_bytes(sizes.index_bytes),
        );
        service
    };
    let config = hcl_server::ServerConfig {
        batch_threads: threads,
        reload_landmarks: landmarks,
        max_connections: max_conns,
        idle_timeout: std::time::Duration::from_secs(idle_secs),
        max_pending,
        // 0 disables; a zero deadline proper would expire everything.
        request_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        ..Default::default()
    };
    let vertices = service.num_vertices();
    let handle = hcl_server::Server::bind(service, (host.as_str(), port), config)
        .map_err(|e| format!("binding {host}:{port}: {e}"))?;
    println!(
        "serving {} ({} vertices) on {} — cache {} entries, up to {} connections, \
         send SHUTDOWN to stop",
        graph_path,
        vertices,
        handle.local_addr(),
        cache,
        max_conns
    );
    handle.join();
    println!("server stopped");
    Ok(())
}

fn cmd_partition(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("partition requires a graph file")?;
    let out_dir = flag(args, "--out-dir").ok_or("partition requires --out-dir <dir>")?;
    let shards: u32 = parse_flag(args, "--shards", 2)?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    let k: usize = parse_flag(args, "--landmarks", 20)?;
    let threads: usize = parse_flag(args, "--threads", 0)?;
    let strategy = flag(args, "--strategy").unwrap_or_else(|| "range".to_string());
    let format = flag(args, "--format").unwrap_or_else(|| "plain".to_string());
    let packed = match format.as_str() {
        "plain" => false,
        "packed" => true,
        other => return Err(format!("unknown format {other:?} (plain or packed)")),
    };

    let replicas: u32 = parse_flag(args, "--replicas", 1)?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".to_string());
    }

    let g = load_graph(path)?;
    let landmarks = LandmarkStrategy::TopDegree(k).select(&g);
    let map = match strategy.as_str() {
        "hash" => hcl_core::PartitionMap::hash(g.num_vertices(), shards, &landmarks),
        "range" => hcl_core::PartitionMap::range(g.num_vertices(), shards, &landmarks),
        other => return Err(format!("unknown strategy {other:?} (hash or range)")),
    }
    .with_replicas(replicas);
    let (labelling, stats) = HighwayCoverLabelling::build_parallel(&g, &landmarks, threads)
        .map_err(|e| format!("building labelling: {e}"))?;
    println!("built global labelling: {} entries in {:?}", stats.labels_added, stats.duration);

    let summary = if packed {
        hcl_store::write_packed_deployment(&out_dir, &g, &labelling, &map)
            .map_err(|e| format!("writing packed deployment to {out_dir}: {e}"))?
    } else {
        hcl_core::partition::write_deployment(&out_dir, &g, &labelling, &map)
            .map_err(|e| format!("writing deployment to {out_dir}: {e}"))?
    };
    for (shard, (vertices, edges)) in
        summary.shard_vertices.iter().zip(&summary.shard_edges).enumerate()
    {
        let filename = if packed {
            hcl_core::partition::shard_packed_filename(shard as u32)
        } else {
            hcl_core::partition::shard_graph_filename(shard as u32)
        };
        println!("shard{shard}: {vertices} owned vertices, {edges} edges -> {out_dir}/{filename}");
    }
    println!(
        "cut edges (in no shard): {} of {} ({:.2}%)",
        summary.cut_edges,
        g.num_edges(),
        100.0 * summary.cut_edges as f64 / g.num_edges().max(1) as f64
    );
    if summary.exact {
        println!("partition respects G[V\\R] components: every routed query is exact");
    } else {
        println!(
            "warning: partition cuts G[V\\R] components — cross-shard queries whose \
             shortest paths avoid landmarks degrade to upper bounds (see docs/PROTOCOL.md)"
        );
    }
    if packed {
        println!(
            "deployment ready: hcl serve {out_dir}/shardI.hclx per shard, \
             then hcl route --partition {out_dir}/{} --shards <addr>,...",
            hcl_core::partition::PARTITION_FILENAME
        );
    } else {
        println!(
            "deployment ready: hcl serve {out_dir}/shardI.hclg {out_dir}/index.hcl per shard, \
             then hcl route --partition {out_dir}/{} --shards <addr>,...",
            hcl_core::partition::PARTITION_FILENAME
        );
    }
    if replicas > 1 {
        println!(
            "replicas: {replicas} per shard — start {replicas} servers on each shard's files \
             and pass all {} addresses to route, shard 0's replicas first",
            shards * replicas
        );
    }
    Ok(())
}

fn cmd_route(args: &[String]) -> Result<(), String> {
    let map_path = flag(args, "--partition").ok_or("route requires --partition <file>")?;
    let shards_arg = flag(args, "--shards").ok_or("route requires --shards <addr>,<addr>,...")?;
    let host = flag(args, "--host").unwrap_or_else(|| "127.0.0.1".to_string());
    let port: u16 = parse_flag(args, "--port", 7700)?;
    let defaults = hcl_router::RouterConfig::default();
    let max_conns: usize = parse_flag(args, "--max-conns", defaults.max_connections)?;
    let idle_secs: u64 = parse_flag(args, "--idle-timeout", defaults.idle_timeout.as_secs())?;
    let window: usize = parse_flag(args, "--window", defaults.shard_window)?;
    let max_parked: usize = parse_flag(args, "--max-parked", defaults.max_parked)?;

    let map = hcl_core::PartitionMap::load(&map_path)
        .map_err(|e| format!("loading partition {map_path}: {e}"))?;
    let replicas: u32 = parse_flag(args, "--replicas", map.replicas())?;
    if replicas == 0 {
        return Err("--replicas must be at least 1".to_string());
    }
    let addrs: Vec<String> = shards_arg.split(',').map(str::to_string).collect();
    let expected = map.num_shards() as usize * replicas as usize;
    if addrs.len() != expected {
        return Err(format!(
            "--shards lists {} addresses but {} shards x {replicas} replicas needs {expected} \
             (shard 0's replicas first, then shard 1's, ...)",
            addrs.len(),
            map.num_shards()
        ));
    }
    let groups: Vec<Vec<String>> =
        addrs.chunks(replicas as usize).map(<[String]>::to_vec).collect();
    let num_shards = map.num_shards();
    let config = hcl_router::RouterConfig {
        max_connections: max_conns,
        idle_timeout: std::time::Duration::from_secs(idle_secs),
        shard_window: window,
        max_parked,
        ..Default::default()
    };
    let handle = hcl_router::Router::bind_replicated(map, &groups, (host.as_str(), port), config)
        .map_err(|e| format!("starting router on {host}:{port}: {e}"))?;
    println!(
        "routing {num_shards} shards x {replicas} replicas on {} (window {window}, \
         up to {max_conns} connections) — send SHUTDOWN to stop",
        handle.local_addr()
    );
    handle.join();
    println!("router stopped");
    Ok(())
}

fn cmd_client(args: &[String]) -> Result<(), String> {
    let addr = args.first().ok_or("client requires a server address")?;
    let action = args.get(1).map(String::as_str).ok_or("client requires an action")?;
    let mut client = hcl_server::Client::connect(addr.as_str())
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    match action {
        "query" => {
            let rest = &args[2..];
            if rest.is_empty() || !rest.len().is_multiple_of(2) {
                return Err("client query requires an even number of vertex ids".to_string());
            }
            let mut pairs = Vec::with_capacity(rest.len() / 2);
            for chunk in rest.chunks(2) {
                let s: u32 = chunk[0].parse().map_err(|e| format!("vertex {:?}: {e}", chunk[0]))?;
                let t: u32 = chunk[1].parse().map_err(|e| format!("vertex {:?}: {e}", chunk[1]))?;
                pairs.push((s, t));
            }
            let distances = client.batch(&pairs).map_err(|e| e.to_string())?;
            for (&(s, t), d) in pairs.iter().zip(&distances) {
                match d {
                    Some(d) => println!("d({s}, {t}) = {d}"),
                    None => println!("d({s}, {t}) = unreachable"),
                }
            }
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            for kv in stats.split_ascii_whitespace() {
                match kv.split_once('=') {
                    Some((k, v)) => println!("{k:<20} {v}"),
                    None => println!("{kv}"),
                }
            }
        }
        "metrics" => {
            let json = client.metrics().map_err(|e| e.to_string())?;
            println!("{json}");
        }
        "ping" => {
            client.ping().map_err(|e| e.to_string())?;
            println!("PONG");
        }
        "epoch" => {
            let epoch = client.epoch().map_err(|e| e.to_string())?;
            println!("epoch {epoch}");
        }
        "reload" => {
            let graph = args.get(2).ok_or("client reload requires a graph file")?;
            let epoch =
                client.reload(graph, args.get(3).map(String::as_str)).map_err(|e| e.to_string())?;
            println!("reloaded, now at epoch {epoch}");
        }
        "update" => {
            let op = args.get(2).map(String::as_str);
            let add = match op {
                Some("add") => true,
                Some("del") => false,
                _ => return Err("client update requires add|del <u> <v>".to_string()),
            };
            let (Some(u), Some(v), None) = (args.get(3), args.get(4), args.get(5)) else {
                return Err("client update requires add|del <u> <v>".to_string());
            };
            let u: u32 = u.parse().map_err(|e| format!("vertex {u:?}: {e}"))?;
            let v: u32 = v.parse().map_err(|e| format!("vertex {v:?}: {e}"))?;
            let (epoch, affected) = client.update(add, u, v).map_err(|e| e.to_string())?;
            println!("updated, now at epoch {epoch} ({affected} vertices relabelled)");
        }
        "shutdown" => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("server shutting down");
        }
        other => return Err(format!("unknown client action {other:?}\n\n{USAGE}")),
    }
    Ok(())
}

fn cmd_reload(args: &[String]) -> Result<(), String> {
    // `hcl reload <addr> …` is sugar for `hcl client <addr> reload …`.
    if args.is_empty() {
        return Err("reload requires a server address".to_string());
    }
    let mut forwarded = args.to_vec();
    forwarded.insert(1, "reload".to_string());
    cmd_client(&forwarded)
}
