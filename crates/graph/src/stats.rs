//! Graph statistics (the paper's Table 1 columns).

use crate::csr::CsrGraph;

/// Summary statistics for a graph, matching the columns of the paper's
/// Table 1 (`n`, `m`, `m/n`, avg. deg, max. deg, `|G|`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Edge-to-vertex ratio `m / n`.
    pub m_over_n: f64,
    /// Average degree `2m / n`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// In-memory size of the CSR representation, in bytes.
    pub memory_bytes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        GraphStats {
            n,
            m,
            m_over_n: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            memory_bytes: g.memory_bytes(),
        }
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Formats a byte count the way the paper's tables do (`85 MB`, `7.7 GB`).
pub fn format_bytes(bytes: usize) -> String {
    const KB: f64 = 1024.0;
    let b = bytes as f64;
    if b >= KB * KB * KB {
        format!("{:.1} GB", b / (KB * KB * KB))
    } else if b >= KB * KB {
        format!("{:.0} MB", b / (KB * KB))
    } else if b >= KB {
        format!("{:.0} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a vertex/edge count the way the paper does (`1.7M`, `8B`).
pub fn format_count(count: usize) -> String {
    let c = count as f64;
    if c >= 1e9 {
        format!("{:.1}B", c / 1e9)
    } else if c >= 1e6 {
        format!("{:.1}M", c / 1e6)
    } else if c >= 1e3 {
        format!("{:.1}K", c / 1e3)
    } else {
        format!("{count}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn stats_of_star() {
        let g = generate::star(11);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 11);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_degree, 10);
        assert!((s.avg_degree - 20.0 / 11.0).abs() < 1e-12);
        assert!((s.m_over_n - 10.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_degrees() {
        let g = generate::star(5);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2 KB");
        assert_eq!(format_bytes(85 * 1024 * 1024), "85 MB");
        assert_eq!(format_bytes(7_700_000_000), "7.2 GB");
    }

    #[test]
    fn count_formatting() {
        assert_eq!(format_count(950), "950");
        assert_eq!(format_count(1_700_000), "1.7M");
        assert_eq!(format_count(8_000_000_000), "8.0B");
    }
}
