//! Compressed sparse row graph representation.
//!
//! [`CsrGraph`] stores an undirected, unweighted, simple graph: every edge
//! appears in both endpoints' adjacency lists, each list is sorted, and
//! self-loops / parallel edges are removed at build time. This is the
//! representation all labelling algorithms and searches in the workspace
//! operate on; its layout (one `usize` offset array + one flat `u32`
//! neighbour array) is what the paper's Table 1 column `|G|` measures.

use crate::{GraphError, VertexId};

/// An immutable undirected graph in compressed sparse row form.
///
/// Construct one with [`GraphBuilder`], [`CsrGraph::from_edges`], or one of
/// the generators in [`crate::generate`].
///
/// # Examples
///
/// ```
/// use hcl_graph::CsrGraph;
///
/// // A triangle plus a pendant vertex: 0-1, 1-2, 2-0, 2-3.
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// assert_eq!(g.degree(3), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `adj` for vertex `v`; length `n + 1`.
    offsets: Vec<usize>,
    /// Flattened, per-vertex-sorted adjacency; length `2 m`.
    adj: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an edge list. Self-loops and
    /// duplicate edges (in either direction) are dropped.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`. Use [`GraphBuilder`] for a checked,
    /// incremental API.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v).expect("edge endpoint out of range");
        }
        b.build()
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph { offsets: vec![0; n + 1], adj: Vec::new() }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m` (each edge counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Iterator over all vertex ids `0..n`.
    #[inline]
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// The sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Whether the undirected edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over each undirected edge exactly once, as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices()).map(|v| self.offsets[v + 1] - self.offsets[v]).max().unwrap_or(0)
    }

    /// Average degree `2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.adj.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Bytes used by the in-memory representation (adjacency + offsets).
    ///
    /// Matches the paper's `|G|` accounting: every edge appears in the
    /// forward and reverse adjacency lists (`2m` 32-bit entries = 8 bytes
    /// per undirected edge) plus the offset array.
    pub fn memory_bytes(&self) -> usize {
        self.adj.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<usize>()
    }

    /// A copy of this graph with the undirected edge `{u, v}` spliced in.
    /// Returns `None` when the edge cannot be added: a self-loop, an
    /// endpoint out of range, or the edge already present. The adjacency
    /// array is copied in three bulk chunks around the two sorted insertion
    /// points and the offsets are shifted in one linear pass — no builder
    /// re-sort and no per-row copy loop — which is what makes single-edge
    /// index updates cheap relative to a rebuild.
    pub fn with_edge(&self, u: VertexId, v: VertexId) -> Option<CsrGraph> {
        let n = self.num_vertices();
        if u == v || u as usize >= n || v as usize >= n || self.has_edge(u, v) {
            return None;
        }
        // Rows are laid out in vertex order, so with a < b the insertion
        // into a's row lands strictly before the one into b's row.
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos = |w: VertexId, other: VertexId| {
            self.offsets[w as usize] + self.neighbors(w).partition_point(|&x| x < other)
        };
        let (p1, p2) = (pos(a, b), pos(b, a));
        let mut adj = Vec::with_capacity(self.adj.len() + 2);
        adj.extend_from_slice(&self.adj[..p1]);
        adj.push(b);
        adj.extend_from_slice(&self.adj[p1..p2]);
        adj.push(a);
        adj.extend_from_slice(&self.adj[p2..]);
        let mut offsets = self.offsets.clone();
        for o in &mut offsets[a as usize + 1..=b as usize] {
            *o += 1;
        }
        for o in &mut offsets[b as usize + 1..] {
            *o += 2;
        }
        Some(CsrGraph::from_parts(offsets, adj))
    }

    /// A copy of this graph with the undirected edge `{u, v}` removed.
    /// Returns `None` when there is nothing to remove: a self-loop, an
    /// endpoint out of range, or the edge not present. The counterpart of
    /// [`with_edge`](Self::with_edge), with the same bulk-chunk copy.
    pub fn without_edge(&self, u: VertexId, v: VertexId) -> Option<CsrGraph> {
        let n = self.num_vertices();
        if u == v || u as usize >= n || v as usize >= n || !self.has_edge(u, v) {
            return None;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let pos = |w: VertexId, other: VertexId| {
            self.offsets[w as usize]
                + self.neighbors(w).binary_search(&other).expect("edge presence checked")
        };
        let (p1, p2) = (pos(a, b), pos(b, a));
        let mut adj = Vec::with_capacity(self.adj.len() - 2);
        adj.extend_from_slice(&self.adj[..p1]);
        adj.extend_from_slice(&self.adj[p1 + 1..p2]);
        adj.extend_from_slice(&self.adj[p2 + 1..]);
        let mut offsets = self.offsets.clone();
        for o in &mut offsets[a as usize + 1..=b as usize] {
            *o -= 1;
        }
        for o in &mut offsets[b as usize + 1..] {
            *o -= 2;
        }
        Some(CsrGraph::from_parts(offsets, adj))
    }

    /// Internal: construct directly from parts. `offsets` must be monotone
    /// with `offsets[0] == 0` and `offsets[n] == adj.len()`, and each
    /// adjacency range must be sorted and duplicate-free.
    pub(crate) fn from_parts(offsets: Vec<usize>, adj: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap(), adj.len());
        CsrGraph { offsets, adj }
    }

    /// Constructs a CSR directly from a validated offset/adjacency pair —
    /// the checked public counterpart of the internal builder path, for
    /// callers that already hold CSR-shaped data (e.g. `hcl-store`
    /// reconstructing the sparsified graph from mapped file sections).
    ///
    /// Checks shape only: `offsets[0] == 0`, monotone offsets ending at
    /// `adj.len()`, every neighbour id `< n`, and each row strictly sorted
    /// (which also rules out duplicates). Symmetry is the caller's
    /// contract, as with [`GraphBuilder`]-produced graphs.
    pub fn from_csr_parts(offsets: Vec<usize>, adj: Vec<VertexId>) -> Result<Self, GraphError> {
        if offsets.is_empty() || offsets[0] != 0 || *offsets.last().unwrap() != adj.len() {
            return Err(GraphError::Format("offsets must run from 0 to adj.len()".into()));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Format("offsets must be monotone".into()));
        }
        let n = offsets.len() - 1;
        for v in 0..n {
            let row = &adj[offsets[v]..offsets[v + 1]];
            if row.iter().any(|&w| w as usize >= n) {
                return Err(GraphError::Format(format!("neighbour out of range at vertex {v}")));
            }
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(GraphError::Format(format!(
                    "adjacency of vertex {v} not strictly sorted"
                )));
            }
        }
        Ok(CsrGraph { offsets, adj })
    }
}

/// Read-only adjacency access, the storage-backend seam of the query fast
/// path.
///
/// [`CsrGraph`] is the in-memory implementation; `hcl-store`'s memory-mapped
/// index view implements it over packed on-disk bytes. Searches that are
/// generic over `Adjacency` (notably
/// [`SearchSpace::bounded_bibfs_sparse`](crate::traversal::SearchSpace::bounded_bibfs_sparse))
/// therefore run unchanged on either backend. Neighbour lists must be
/// returned as contiguous `&[VertexId]` slices — the trait deliberately does
/// not abstract over iterators so the inner search loop stays a plain slice
/// scan.
pub trait Adjacency {
    /// Number of vertices `n`; vertex ids `0..n` must be valid arguments to
    /// [`neighbors`](Self::neighbors).
    fn num_vertices(&self) -> usize;

    /// The neighbour list of `v` (sorted, duplicate-free).
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Degree of `v`.
    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }
}

impl Adjacency for CsrGraph {
    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::neighbors(self, v)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }
}

/// Incremental, checked builder for [`CsrGraph`].
///
/// Accumulates edges (normalised so each undirected edge is stored once),
/// then [`build`](GraphBuilder::build) sorts, deduplicates and produces the
/// CSR arrays in `O(m log m)`.
///
/// # Examples
///
/// ```
/// use hcl_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1).unwrap();
/// b.add_edge(1, 0).unwrap(); // duplicate, dropped at build
/// b.add_edge(1, 1).unwrap(); // self-loop, dropped immediately
/// b.add_edge(1, 2).unwrap();
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// A builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(m) }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Grows the vertex count to at least `n`.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently ignored.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<(), GraphError> {
        if (u as usize) >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n: self.n });
        }
        if (v as usize) >= self.n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n: self.n });
        }
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
        }
        Ok(())
    }

    /// Like [`add_edge`](Self::add_edge) but grows the vertex count as needed
    /// instead of failing. Used by text loaders where `n` is not known ahead
    /// of time.
    pub fn add_edge_growing(&mut self, u: VertexId, v: VertexId) {
        let need = (u.max(v) as usize) + 1;
        self.ensure_vertices(need);
        if u != v {
            self.edges.push(if u < v { (u, v) } else { (v, u) });
        }
    }

    /// Sorts, deduplicates and produces the final CSR graph.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();

        let n = self.n;
        let mut degrees = vec![0usize; n];
        for &(u, v) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0 as VertexId; acc];
        // `cursor[v]` tracks the next free slot in v's adjacency range.
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v) in &self.edges {
            adj[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            adj[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Edges were globally sorted by (u, v), so forward entries are already
        // in order, but reverse entries interleave; sort each range.
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts(offsets, adj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        for v in g.vertices() {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn triangle_with_pendant() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn duplicates_and_self_loops_removed() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (1, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let input = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)];
        let g = CsrGraph::from_edges(5, &input);
        let mut got: Vec<_> = g.edges().collect();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
    }

    #[test]
    fn builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(b.add_edge(0, 2).is_err());
        assert!(b.add_edge(5, 0).is_err());
        assert!(b.add_edge(0, 1).is_ok());
    }

    #[test]
    fn builder_growing_extends_vertex_count() {
        let mut b = GraphBuilder::new(0);
        b.add_edge_growing(7, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 8);
        assert!(g.has_edge(3, 7));
    }

    #[test]
    fn with_edge_splices_and_rejects() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g2 = g.with_edge(3, 0).expect("new edge");
        assert_eq!(g2, CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (0, 3)]));
        assert_eq!(g2.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.num_edges(), 4, "source untouched");
        assert!(g.with_edge(0, 1).is_none(), "already present");
        assert!(g.with_edge(1, 0).is_none(), "already present, reversed");
        assert!(g.with_edge(2, 2).is_none(), "self-loop");
        assert!(g.with_edge(0, 4).is_none(), "out of range");
    }

    #[test]
    fn without_edge_splices_and_rejects() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let g2 = g.without_edge(0, 2).expect("existing edge");
        assert_eq!(g2, CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        assert_eq!(g.num_edges(), 4, "source untouched");
        assert!(g.without_edge(0, 3).is_none(), "not present");
        assert!(g.without_edge(1, 1).is_none(), "self-loop");
        assert!(g.without_edge(9, 0).is_none(), "out of range");
    }

    #[test]
    fn edge_splices_round_trip() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let added = g.with_edge(1, 4).unwrap();
        assert_eq!(added.without_edge(4, 1).unwrap(), g);
        let removed = g.without_edge(2, 3).unwrap();
        assert_eq!(removed.with_edge(3, 2).unwrap(), g);
    }

    #[test]
    fn adjacency_is_sorted() {
        let g = CsrGraph::from_edges(6, &[(3, 0), (3, 5), (3, 1), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4, 5]);
    }

    #[test]
    fn memory_bytes_counts_both_directions() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        // 4 adjacency entries * 4 bytes + 4 offsets * 8 bytes.
        assert_eq!(g.memory_bytes(), 4 * 4 + 4 * std::mem::size_of::<usize>());
    }
}
