//! Connected components and largest-connected-component extraction.
//!
//! The paper assumes connected, undirected graphs (§2); the evaluation
//! harness extracts the largest connected component of each generated
//! dataset before building indexes, exactly as is standard when preparing
//! the real networks the paper uses.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::VertexId;

/// Labels each vertex with a component id (`0..count`) and returns
/// `(labels, count)`. Component ids are assigned in order of discovery by
/// vertex id, so they are deterministic.
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, usize) {
    const UNSET: u32 = u32::MAX;
    let n = g.num_vertices();
    let mut comp = vec![UNSET; n];
    let mut count = 0u32;
    let mut queue: Vec<VertexId> = Vec::new();
    for start in 0..n as VertexId {
        if comp[start as usize] != UNSET {
            continue;
        }
        comp[start as usize] = count;
        queue.clear();
        queue.push(start);
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == UNSET {
                    comp[v as usize] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &CsrGraph) -> bool {
    g.num_vertices() == 0 || connected_components(g).1 == 1
}

/// Extracts the largest connected component as a new graph with compacted
/// vertex ids. Returns `(subgraph, old_ids)` where `old_ids[new] = old`.
/// Ties between equal-sized components break towards the smaller component
/// id (i.e. the one discovered first).
pub fn largest_connected_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let n = g.num_vertices();
    if n == 0 {
        return (CsrGraph::empty(0), Vec::new());
    }
    let (comp, count) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let best = (0..count).max_by_key(|&c| (sizes[c], std::cmp::Reverse(c))).unwrap() as u32;

    let mut old_ids = Vec::with_capacity(sizes[best as usize]);
    let mut new_id = vec![u32::MAX; n];
    for v in 0..n {
        if comp[v] == best {
            new_id[v] = old_ids.len() as u32;
            old_ids.push(v as VertexId);
        }
    }
    let mut b = GraphBuilder::new(old_ids.len());
    for (u, v) in g.edges() {
        if comp[u as usize] == best {
            b.add_edge(new_id[u as usize], new_id[v as usize]).expect("remapped ids in range");
        }
    }
    (b.build(), old_ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn single_component() {
        let g = generate::cycle(6);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 1);
        assert!(comp.iter().all(|&c| c == 0));
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components() {
        // Two triangles and an isolated vertex.
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[6], comp[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn lcc_extraction() {
        // Component A: path 0-1-2 (3 vertices); component B: 3-4-5-6 path (4).
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)]);
        let (sub, old_ids) = largest_connected_component(&g);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(old_ids, vec![3, 4, 5, 6]);
        // Edge structure preserved under relabelling.
        assert!(sub.has_edge(0, 1) && sub.has_edge(1, 2) && sub.has_edge(2, 3));
        assert!(!sub.has_edge(0, 2));
    }

    #[test]
    fn lcc_of_connected_graph_is_identity() {
        let g = generate::barabasi_albert(100, 3, 1);
        let (sub, old_ids) = largest_connected_component(&g);
        assert_eq!(sub.num_vertices(), g.num_vertices());
        assert_eq!(sub.num_edges(), g.num_edges());
        assert_eq!(old_ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn lcc_empty_graph() {
        let g = CsrGraph::empty(0);
        let (sub, old_ids) = largest_connected_component(&g);
        assert_eq!(sub.num_vertices(), 0);
        assert!(old_ids.is_empty());
    }

    #[test]
    fn lcc_all_isolated() {
        let g = CsrGraph::empty(4);
        let (sub, old_ids) = largest_connected_component(&g);
        assert_eq!(sub.num_vertices(), 1);
        assert_eq!(old_ids, vec![0]);
    }
}
