//! Graph I/O: text edge lists and a compact binary format.
//!
//! Text edge lists use the de-facto standard of SNAP / KONECT downloads
//! (one `u v` pair per line, `#` / `%` comment lines), so graphs prepared
//! for the original paper's pipeline load unchanged. The binary format is a
//! minimal little-endian container (magic, version, `n`, `m`, edge pairs)
//! designed to be trivially auditable rather than clever.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::{GraphError, VertexId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HCLGRPH1";

/// Parses a whitespace-separated edge list from any reader. Lines starting
/// with `#` or `%` (and blank lines) are skipped. Vertex ids are used as-is;
/// the vertex count is `max_id + 1`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut b = GraphBuilder::new(0);
    let mut line_no = 0usize;
    for line in reader.lines() {
        line_no += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_vertex(parts.next(), line_no)?;
        let v = parse_vertex(parts.next(), line_no)?;
        b.add_edge_growing(u, v);
    }
    Ok(b.build())
}

fn parse_vertex(tok: Option<&str>, line: usize) -> Result<VertexId, GraphError> {
    let tok = tok.ok_or_else(|| GraphError::Parse {
        line,
        message: "expected two vertex ids".to_string(),
    })?;
    tok.parse::<VertexId>()
        .map_err(|e| GraphError::Parse { line, message: format!("invalid vertex id {tok:?}: {e}") })
}

/// Loads a text edge list from a file.
pub fn load_edge_list<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Writes the graph as a text edge list (one `u v` line per edge).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} vertices, {} edges", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Saves a text edge list to a file.
pub fn save_edge_list<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, std::fs::File::create(path)?)
}

/// Serialises the graph in the binary container format.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph from the binary container format.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic".to_string()));
    }
    let n = read_u64(&mut r)?;
    let m = read_u64(&mut r)?;
    if n >= u32::MAX as u64 {
        return Err(GraphError::Format(format!("implausible vertex count {n}")));
    }
    let n = n as usize;
    let m = m as usize;
    // Never pre-allocate from an untrusted header: a corrupted `m` would
    // otherwise request terabytes. The reader below fails cleanly on EOF.
    let mut b = GraphBuilder::with_capacity(n, m.min(1 << 20));
    for _ in 0..m {
        let u = read_u32(&mut r)?;
        let v = read_u32(&mut r)?;
        b.add_edge(u, v).map_err(|e| GraphError::Format(format!("edge out of range: {e}")))?;
    }
    Ok(b.build())
}

/// Saves the binary format to a file.
pub fn save_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Loads the binary format from a file.
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

/// Loads a graph picking the format by extension: `.txt` / `.el` parse as
/// text edge lists, anything else as the binary container. The convention
/// every path-taking entry point shares (the `hcl` CLI, the server's
/// `RELOAD` command).
pub fn load_auto<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let is_text = path
        .as_ref()
        .extension()
        .and_then(|e| e.to_str())
        .is_some_and(|e| e.eq_ignore_ascii_case("txt") || e.eq_ignore_ascii_case("el"));
    if is_text {
        load_edge_list(path)
    } else {
        load_binary(path)
    }
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use std::io::Cursor;

    #[test]
    fn parse_edge_list_with_comments() {
        let text = "# a comment\n% another\n0 1\n1 2\n\n2 0\n";
        let g = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(read_edge_list(Cursor::new("0 x\n")).is_err());
        assert!(read_edge_list(Cursor::new("42\n")).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let g = generate::barabasi_albert(60, 3, 2);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = generate::erdos_renyi(100, 300, 3);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(Cursor::new(buf)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn load_auto_picks_format_by_extension() {
        let g = generate::barabasi_albert(40, 3, 5);
        let dir = std::env::temp_dir();
        let text = dir.join(format!("hcl-io-auto-{}.el", std::process::id()));
        let binary = dir.join(format!("hcl-io-auto-{}.hclg", std::process::id()));
        write_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();
        save_binary(&g, &binary).unwrap();
        assert_eq!(load_auto(&text).unwrap(), g);
        assert_eq!(load_auto(&binary).unwrap(), g);
        let _ = std::fs::remove_file(&text);
        let _ = std::fs::remove_file(&binary);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0".to_vec();
        assert!(matches!(read_binary(Cursor::new(buf)), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = generate::path(4);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(Cursor::new(buf)).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("hcl_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = generate::grid(5, 7);
        let bin = dir.join("g.hclg");
        save_binary(&g, &bin).unwrap();
        assert_eq!(load_binary(&bin).unwrap(), g);
        let txt = dir.join("g.txt");
        save_edge_list(&g, &txt).unwrap();
        assert_eq!(load_edge_list(&txt).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }
}
