//! Induced subgraphs and vertex relabelling.
//!
//! The querying framework runs on the sparsified graph `G[V∖R]` (§4.1).
//! Two materialisations are provided:
//!
//! * [`CsrGraph::without_vertices`] keeps the original vertex-id space and
//!   simply drops every edge incident to a removed vertex — the form the
//!   query fast path traverses, since queries address original ids;
//! * [`induced_subgraph`] / [`remove_vertices`] compact the ids, which is
//!   what analysis and downstream tooling usually want.
//!
//! [`relabel`] renumbers vertices by any permutation (e.g. degree order,
//! which improves BFS cache locality on power-law graphs).

use crate::csr::{CsrGraph, GraphBuilder};
use crate::VertexId;

impl CsrGraph {
    /// The graph with every edge incident to a vertex in `removed` dropped,
    /// keeping the vertex count and ids unchanged (removed vertices become
    /// isolated). This is the sparsified graph `G[V∖R]` in a form that
    /// needs no id translation: searches run on it directly with original
    /// vertex ids and no per-edge skip predicate.
    ///
    /// Built in one `O(n + m)` pass over the CSR (no re-sort): each kept
    /// vertex's adjacency is the original sorted list with removed
    /// neighbours filtered out.
    ///
    /// # Panics
    ///
    /// Panics if a removed vertex id is out of range.
    pub fn without_vertices(&self, removed: &[VertexId]) -> CsrGraph {
        let n = self.num_vertices();
        let mut is_removed = vec![false; n];
        for &v in removed {
            is_removed[v as usize] = true;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut adj = Vec::with_capacity(self.num_edges() * 2);
        for v in self.vertices() {
            if !is_removed[v as usize] {
                adj.extend(self.neighbors(v).iter().copied().filter(|&w| !is_removed[w as usize]));
            }
            offsets.push(adj.len());
        }
        adj.shrink_to_fit();
        CsrGraph::from_parts(offsets, adj)
    }
}

/// Extracts the subgraph induced by `keep` (vertices for which
/// `keep(v)` is true), compacting vertex ids. Returns `(subgraph,
/// old_ids)` with `old_ids[new] = old`.
pub fn induced_subgraph<F>(g: &CsrGraph, keep: F) -> (CsrGraph, Vec<VertexId>)
where
    F: Fn(VertexId) -> bool,
{
    let n = g.num_vertices();
    let mut new_id = vec![u32::MAX; n];
    let mut old_ids = Vec::new();
    for v in g.vertices() {
        if keep(v) {
            new_id[v as usize] = old_ids.len() as u32;
            old_ids.push(v);
        }
    }
    let mut b = GraphBuilder::new(old_ids.len());
    for (u, v) in g.edges() {
        let (nu, nv) = (new_id[u as usize], new_id[v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(nu, nv).expect("compacted ids in range");
        }
    }
    (b.build(), old_ids)
}

/// The sparsified graph `G[V∖R]` of the querying framework: `g` with the
/// given vertices removed. Returns `(subgraph, old_ids)`.
pub fn remove_vertices(g: &CsrGraph, removed: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
    let mut is_removed = vec![false; g.num_vertices()];
    for &v in removed {
        is_removed[v as usize] = true;
    }
    induced_subgraph(g, |v| !is_removed[v as usize])
}

/// Renumbers vertices by the permutation `order` (`order[new] = old`),
/// which must contain every vertex exactly once.
pub fn relabel(g: &CsrGraph, order: &[VertexId]) -> CsrGraph {
    assert_eq!(order.len(), g.num_vertices(), "order must be a permutation");
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (new, &old) in order.iter().enumerate() {
        assert_eq!(new_id[old as usize], u32::MAX, "duplicate vertex in order");
        new_id[old as usize] = new as u32;
    }
    let mut b = GraphBuilder::new(g.num_vertices());
    for (u, v) in g.edges() {
        b.add_edge(new_id[u as usize], new_id[v as usize]).expect("permutation in range");
    }
    b.build()
}

/// Relabels by decreasing degree — hubs get the smallest ids, packing the
/// hot adjacency lists together in memory.
pub fn relabel_by_degree(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let order = crate::order::degree_descending(g);
    (relabel(g, &order), order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::traversal;

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Triangle 0-1-2 plus pendant 3; keep {0, 1, 3}.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let (sub, old_ids) = induced_subgraph(&g, |v| v != 2);
        assert_eq!(old_ids, vec![0, 1, 3]);
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1));
        assert_eq!(sub.degree(2), 0);
    }

    #[test]
    fn remove_vertices_matches_skip_filtered_search() {
        let g = generate::erdos_renyi(50, 120, 5);
        let removed = [0u32, 1, 2];
        let (sub, old_ids) = remove_vertices(&g, &removed);
        assert_eq!(sub.num_vertices(), 47);
        // Distances in the materialised subgraph equal the skip-filtered
        // bounded search on the original graph.
        let mut space = crate::SearchSpace::new(g.num_vertices());
        for s_new in 0..sub.num_vertices() as u32 {
            let truth = traversal::bfs_distances(&sub, s_new);
            for t_new in (0..sub.num_vertices() as u32).step_by(7) {
                let filtered = space.bounded_bibfs(
                    &g,
                    old_ids[s_new as usize],
                    old_ids[t_new as usize],
                    crate::INF,
                    |v| removed.contains(&v),
                );
                assert_eq!(filtered, truth[t_new as usize]);
            }
        }
    }

    #[test]
    fn without_vertices_keeps_ids_and_isolates_removed() {
        // Triangle 0-1-2 plus pendant 3 on 2.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let sparse = g.without_vertices(&[2]);
        assert_eq!(sparse.num_vertices(), 4, "id space unchanged");
        assert_eq!(sparse.num_edges(), 1);
        assert_eq!(sparse.neighbors(0), &[1]);
        assert_eq!(sparse.neighbors(2), &[] as &[VertexId]);
        assert_eq!(sparse.neighbors(3), &[] as &[VertexId]);
    }

    #[test]
    fn without_vertices_matches_compacted_subgraph() {
        let g = generate::barabasi_albert(120, 4, 17);
        let removed = [0u32, 3, 7, 40];
        let sparse = g.without_vertices(&removed);
        let (compact, old_ids) = remove_vertices(&g, &removed);
        assert_eq!(sparse.num_edges(), compact.num_edges());
        for (new, &old) in old_ids.iter().enumerate() {
            assert_eq!(sparse.degree(old), compact.degree(new as u32), "vertex {old}");
        }
        // Distances agree under the id mapping.
        let d_sparse = traversal::bfs_distances(&sparse, old_ids[0]);
        let d_compact = traversal::bfs_distances(&compact, 0);
        for (new, &old) in old_ids.iter().enumerate() {
            assert_eq!(d_sparse[old as usize], d_compact[new], "vertex {old}");
        }
    }

    #[test]
    fn without_vertices_empty_removal_is_identity() {
        let g = generate::erdos_renyi(40, 80, 2);
        assert_eq!(g.without_vertices(&[]), g);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = generate::barabasi_albert(100, 3, 9);
        let (relabelled, order) = relabel_by_degree(&g);
        assert_eq!(relabelled.num_edges(), g.num_edges());
        // Degrees follow the graph under the permutation.
        for (new, &old) in order.iter().enumerate() {
            assert_eq!(relabelled.degree(new as u32), g.degree(old));
        }
        // Hubs first.
        for w in order.windows(2) {
            assert!(g.degree(w[0]) >= g.degree(w[1]));
        }
        // Distances are preserved under relabelling.
        let d_old = traversal::bfs_distances(&g, order[0]);
        let d_new = traversal::bfs_distances(&relabelled, 0);
        for (new, &old) in order.iter().enumerate() {
            assert_eq!(d_new[new], d_old[old as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn relabel_rejects_short_order() {
        let g = generate::path(4);
        relabel(&g, &[0, 1, 2]);
    }
}
