//! Weighted undirected graph in CSR form.
//!
//! The paper's networks are unweighted, but the IS-Label baseline \[12\]
//! introduces *augmenting (shortcut) edges* whose weights are sums of
//! original edge weights, so its hierarchy and query searches operate on a
//! weighted graph. Parallel edges collapse to the minimum weight at build
//! time, which is exactly the semantics shortcut insertion needs.

use crate::VertexId;

/// An immutable weighted undirected graph (CSR layout, parallel arrays for
/// targets and weights).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<u32>,
}

impl WeightedGraph {
    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges (each counted once).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Iterator over `(neighbor, weight)` pairs of `v`, sorted by neighbor.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let v = v as usize;
        let range = self.offsets[v]..self.offsets[v + 1];
        self.targets[range.clone()].iter().copied().zip(self.weights[range].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Weight of edge `{u, v}` if present.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let ui = u as usize;
        let range = self.offsets[ui]..self.offsets[ui + 1];
        let slice = &self.targets[range.clone()];
        slice.binary_search(&v).ok().map(|i| self.weights[range.start + i])
    }

    /// Bytes used by the in-memory representation.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<u32>()
    }
}

/// Builder for [`WeightedGraph`]. Parallel edges keep the minimum weight;
/// self-loops are dropped.
#[derive(Clone, Debug, Default)]
pub struct WeightedGraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId, u32)>,
}

impl WeightedGraphBuilder {
    /// A builder for a graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraphBuilder { n, edges: Vec::new() }
    }

    /// Adds undirected edge `{u, v}` with weight `w` (panics if out of range).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, w: u32) {
        assert!((u as usize) < self.n && (v as usize) < self.n, "vertex out of range");
        if u != v {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            self.edges.push((a, b, w));
        }
    }

    /// Builds the weighted CSR graph.
    pub fn build(mut self) -> WeightedGraph {
        self.edges.sort_unstable();
        // Keep the minimum-weight copy of each parallel edge (sorted order
        // puts it first).
        self.edges.dedup_by_key(|e| (e.0, e.1));

        let n = self.n;
        let mut degrees = vec![0usize; n];
        for &(u, v, _) in &self.edges {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0 as VertexId; acc];
        let mut weights = vec![0u32; acc];
        let mut cursor: Vec<usize> = offsets[..n].to_vec();
        for &(u, v, w) in &self.edges {
            targets[cursor[u as usize]] = v;
            weights[cursor[u as usize]] = w;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            weights[cursor[v as usize]] = w;
            cursor[v as usize] += 1;
        }
        // Sort each adjacency range by target, carrying weights along.
        let mut scratch: Vec<(VertexId, u32)> = Vec::new();
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            scratch.clear();
            scratch.extend(
                targets[range.clone()].iter().copied().zip(weights[range.clone()].iter().copied()),
            );
            scratch.sort_unstable();
            for (i, &(t, w)) in scratch.iter().enumerate() {
                targets[range.start + i] = t;
                weights[range.start + i] = w;
            }
        }
        WeightedGraph { offsets, targets, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_weighted_graph() {
        let mut b = WeightedGraphBuilder::new(3);
        b.add_edge(0, 1, 3);
        b.add_edge(1, 2, 5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(3));
        assert_eq!(g.edge_weight(1, 0), Some(3));
        assert_eq!(g.edge_weight(0, 2), None);
        let n1: Vec<_> = g.neighbors(1).collect();
        assert_eq!(n1, vec![(0, 3), (2, 5)]);
    }

    #[test]
    fn parallel_edges_keep_minimum_weight() {
        let mut b = WeightedGraphBuilder::new(2);
        b.add_edge(0, 1, 9);
        b.add_edge(1, 0, 2);
        b.add_edge(0, 1, 5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2));
    }

    #[test]
    fn self_loops_dropped() {
        let mut b = WeightedGraphBuilder::new(2);
        b.add_edge(0, 0, 1);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }
}
