//! Vertex orderings.
//!
//! Both the paper's method and its baselines rank vertices by degree: HL and
//! FD take the top-`k` highest-degree vertices as landmarks (§6.3: "we chose
//! top 20 vertices as landmarks after sorting based on decreasing order of
//! their degrees"), and PLL processes *all* vertices in that order.

use crate::csr::CsrGraph;
use crate::VertexId;

/// All vertices sorted by decreasing degree, ties broken by increasing id
/// (deterministic, matching the paper's setup).
pub fn degree_descending(g: &CsrGraph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    order
}

/// The `k` highest-degree vertices (deterministic tie-breaking by id).
/// Clamped to `n`.
pub fn top_degree(g: &CsrGraph, k: usize) -> Vec<VertexId> {
    let mut order = degree_descending(g);
    order.truncate(k.min(g.num_vertices()));
    order
}

/// A permutation mapping each vertex to its rank in `order` (inverse
/// permutation). Vertices absent from `order` map to `u32::MAX`.
pub fn ranks(n: usize, order: &[VertexId]) -> Vec<u32> {
    let mut rank = vec![u32::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn degree_order_is_descending_with_id_ties() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (3, 4)]);
        // degrees: 0:3, 1:2, 2:2, 3:2, 4:1
        assert_eq!(degree_descending(&g), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn top_degree_selects_hub() {
        let g = generate::star(10);
        assert_eq!(top_degree(&g, 1), vec![0]);
        assert_eq!(top_degree(&g, 3), vec![0, 1, 2]);
        assert_eq!(top_degree(&g, 100).len(), 10);
    }

    #[test]
    fn ranks_inverse_permutation() {
        let order = vec![3u32, 1, 0];
        let r = ranks(4, &order);
        assert_eq!(r, vec![2, 1, u32::MAX, 0]);
    }
}
