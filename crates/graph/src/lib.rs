//! Graph substrate for the `hcl` workspace.
//!
//! This crate provides everything the distance-query methods are built on:
//!
//! * [`CsrGraph`] — an immutable, cache-friendly compressed-sparse-row
//!   representation of an undirected, unweighted graph, plus
//!   [`GraphBuilder`] for constructing one from an edge list.
//! * [`WeightedGraph`] — a small weighted counterpart used by baselines that
//!   introduce shortcut edges (IS-Label).
//! * [`traversal`] — breadth-first search, bidirectional BFS, the
//!   *distance-bounded* bidirectional BFS at the heart of the paper's
//!   querying framework (Algorithm 2), and Dijkstra for weighted graphs.
//!   All searches run on reusable, epoch-versioned buffers so repeated
//!   queries allocate nothing.
//! * [`generate`] — deterministic random-graph generators used as synthetic
//!   stand-ins for the paper's twelve real-world networks (Barabási–Albert,
//!   Erdős–Rényi, Watts–Strogatz, a web-copying model) plus structured
//!   graphs for tests (paths, grids, stars, trees).
//! * [`connectivity`] — connected components and largest-connected-component
//!   extraction (the paper assumes connected graphs).
//! * [`io`] — plain-text edge-list parsing and a compact binary format.
//! * [`order`] — degree orderings (landmark selection and PLL vertex orders).
//! * [`oracle`] — the [`oracle::DistanceOracle`] trait that
//!   every method (HL, PLL, FD, IS-L, online searches) implements.

pub mod connectivity;
pub mod csr;
pub mod generate;
pub mod io;
pub mod oracle;
pub mod order;
pub mod paths;
pub mod stats;
pub mod subgraph;
pub mod traversal;
pub mod wgraph;

pub use csr::{Adjacency, CsrGraph, GraphBuilder};
pub use oracle::DistanceOracle;
pub use traversal::SearchSpace;
pub use wgraph::{WeightedGraph, WeightedGraphBuilder};

/// Vertex identifier. Graphs are limited to `u32::MAX - 1` vertices, which
/// keeps adjacency arrays compact (the paper's label encodings use 32-bit
/// vertex ids for the same reason).
pub type VertexId = u32;

/// Unreachable / "infinite" distance sentinel used in internal distance
/// arrays. Public query APIs return `Option<u32>` instead.
pub const INF: u32 = u32::MAX;

/// Errors produced by graph construction and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// Vertex id out of range for the declared vertex count.
    VertexOutOfRange { vertex: VertexId, n: usize },
    /// Parse error in a text edge list.
    Parse { line: usize, message: String },
    /// Malformed binary file (bad magic, truncated, wrong version).
    Format(String),
    /// Underlying I/O error.
    Io(std::io::Error),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "malformed graph file: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}
