//! Shortest-path *reconstruction* on top of any distance oracle.
//!
//! Distance labellings answer "how far?", but applications often need the
//! actual path. Any exact [`DistanceOracle`] supports reconstruction by
//! greedy descent: from `s`, repeatedly step to a neighbour whose remaining
//! distance to `t` shrinks by one. Each hop costs one neighbourhood scan of
//! oracle queries, so a length-`L` path costs `O(L · deg · Q)` — for the
//! highway cover labelling that is microseconds per hop, versus a full
//! traversal for BFS-based reconstruction.

use crate::csr::CsrGraph;
use crate::oracle::DistanceOracle;
use crate::VertexId;

/// Reconstructs one shortest path from `s` to `t` (inclusive of both
/// endpoints) using an exact distance oracle over `g`. Returns `None` when
/// `t` is unreachable.
///
/// With several shortest paths available, ties break towards the
/// smallest-id neighbour, so the result is deterministic.
pub fn shortest_path(
    g: &CsrGraph,
    oracle: &mut dyn DistanceOracle,
    s: VertexId,
    t: VertexId,
) -> Option<Vec<VertexId>> {
    let total = oracle.distance(s, t)?;
    let mut path = Vec::with_capacity(total as usize + 1);
    path.push(s);
    let mut current = s;
    let mut remaining = total;
    while remaining > 0 {
        let next = g
            .neighbors(current)
            .iter()
            .copied()
            .find(|&w| oracle.distance(w, t) == Some(remaining - 1))
            .expect("exact oracle must admit a descent step on a shortest path");
        path.push(next);
        current = next;
        remaining -= 1;
    }
    debug_assert_eq!(current, t);
    Some(path)
}

/// Checks that `path` is a valid path in `g` (consecutive vertices
/// adjacent, no immediate repetitions). An empty path is invalid; a single
/// vertex is valid.
pub fn is_valid_path(g: &CsrGraph, path: &[VertexId]) -> bool {
    if path.is_empty() {
        return false;
    }
    path.windows(2).all(|w| w[0] != w[1] && g.has_edge(w[0], w[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::oracle::DistanceOracle;
    use crate::traversal;

    /// A trivially exact oracle for tests.
    struct Bfs<'g>(crate::SearchSpace, &'g CsrGraph);
    impl DistanceOracle for Bfs<'_> {
        fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
            self.0.bibfs_distance(self.1, s, t)
        }
        fn name(&self) -> &'static str {
            "BFS"
        }
    }

    #[test]
    fn reconstructs_shortest_paths_on_random_graphs() {
        for seed in 0..3u64 {
            let g = generate::erdos_renyi(60, 120, seed);
            let mut oracle = Bfs(crate::SearchSpace::new(60), &g);
            for s in [0u32, 17, 42] {
                let truth = traversal::bfs_distances(&g, s);
                for t in g.vertices().step_by(5) {
                    match shortest_path(&g, &mut oracle, s, t) {
                        Some(path) => {
                            assert_eq!(path.len() as u32 - 1, truth[t as usize], "{s}->{t}");
                            assert_eq!(path[0], s);
                            assert_eq!(*path.last().unwrap(), t);
                            assert!(is_valid_path(&g, &path));
                        }
                        None => assert_eq!(truth[t as usize], crate::INF),
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_and_unreachable_cases() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut oracle = Bfs(crate::SearchSpace::new(4), &g);
        assert_eq!(shortest_path(&g, &mut oracle, 0, 0), Some(vec![0]));
        assert_eq!(shortest_path(&g, &mut oracle, 0, 1), Some(vec![0, 1]));
        assert_eq!(shortest_path(&g, &mut oracle, 0, 3), None);
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Two shortest paths 0-1-3 and 0-2-3; the smaller-id one wins.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut oracle = Bfs(crate::SearchSpace::new(4), &g);
        assert_eq!(shortest_path(&g, &mut oracle, 0, 3), Some(vec![0, 1, 3]));
    }

    #[test]
    fn path_validation() {
        let g = generate::path(4);
        assert!(is_valid_path(&g, &[0, 1, 2]));
        assert!(is_valid_path(&g, &[2]));
        assert!(!is_valid_path(&g, &[]));
        assert!(!is_valid_path(&g, &[0, 2]));
        assert!(!is_valid_path(&g, &[1, 1]));
    }
}
