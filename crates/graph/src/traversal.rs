//! Graph searches: BFS, bidirectional BFS, distance-bounded bidirectional
//! BFS (the online component of the paper's querying framework, Algorithm 2),
//! and Dijkstra for weighted graphs.
//!
//! Point-to-point searches run on a reusable [`SearchSpace`] whose visit
//! marks are *epoch-versioned*: a query bumps the epoch instead of clearing
//! its `O(n)` arrays, so after a one-time allocation repeated queries touch
//! only the vertices they actually visit. This is what makes millisecond
//! query times possible on large graphs.

use crate::csr::CsrGraph;
use crate::wgraph::WeightedGraph;
use crate::{VertexId, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes BFS distances from `src` to every vertex (`INF` = unreachable).
///
/// Used for landmark shortest-path trees (FD), ground truth in tests, and
/// statistics. For point-to-point queries prefer [`SearchSpace`].
pub fn bfs_distances(g: &CsrGraph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![INF; g.num_vertices()];
    bfs_distances_into(g, src, &mut dist);
    dist
}

/// Like [`bfs_distances`] but reuses the caller's buffer (resized and reset).
///
/// Level-synchronous and *direction-optimizing*: a level whose frontier
/// carries more than a third of the graph's directed edges is expanded
/// bottom-up (each unvisited vertex scans its neighbours until it finds a
/// frontier parent and stops), which on the hub-dominated levels of
/// power-law graphs examines a fraction of the edges top-down expansion
/// would. On path-like graphs the frontier never crosses the threshold and
/// the classic top-down sweep runs unchanged.
pub fn bfs_distances_into(g: &CsrGraph, src: VertexId, dist: &mut Vec<u32>) {
    let n = g.num_vertices();
    dist.clear();
    dist.resize(n, INF);
    dist[src as usize] = 0;
    let mut frontier: Vec<VertexId> = vec![src];
    let mut next: Vec<VertexId> = Vec::new();
    let total_edges = 2 * g.num_edges() as u64;
    let mut frontier_edges = g.degree(src) as u64;
    let mut d = 0u32;
    while !frontier.is_empty() {
        d += 1;
        next.clear();
        if 3 * frontier_edges > total_edges {
            // Bottom-up: frontier membership is `dist == d - 1`.
            for v in 0..n as VertexId {
                if dist[v as usize] != INF {
                    continue;
                }
                for &y in g.neighbors(v) {
                    if dist[y as usize] == d - 1 {
                        dist[v as usize] = d;
                        next.push(v);
                        break;
                    }
                }
            }
        } else {
            for &u in &frontier {
                for &v in g.neighbors(u) {
                    if dist[v as usize] == INF {
                        dist[v as usize] = d;
                        next.push(v);
                    }
                }
            }
        }
        frontier_edges = next.iter().map(|&v| g.degree(v) as u64).sum();
        std::mem::swap(&mut frontier, &mut next);
    }
}

/// Reusable state for point-to-point searches on graphs with up to `n`
/// vertices. One `SearchSpace` serves any number of sequential queries; for
/// parallel querying give each thread its own.
#[derive(Clone, Debug)]
pub struct SearchSpace {
    epoch: u32,
    /// Fused per-vertex visit words for the forward search:
    /// `epoch << 32 | dist`. Packing the mark and the distance into one
    /// word means the inner BFS loop touches a single cache line per
    /// neighbour examination and side (mark test, distance read on a
    /// meet, and mark+distance write are all one load or one store),
    /// where separate mark/dist arrays cost two.
    visit_fwd: Vec<u64>,
    /// Fused visit words for the reverse search (same layout).
    visit_rev: Vec<u64>,
    frontier: Vec<VertexId>,
    frontier_other: Vec<VertexId>,
    next: Vec<VertexId>,
}

/// Low 32 bits of a fused visit word: the BFS level the vertex settled at.
const DIST_MASK: u64 = 0xFFFF_FFFF;

impl SearchSpace {
    /// Creates a search space for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        SearchSpace {
            epoch: 0,
            visit_fwd: vec![0; n],
            visit_rev: vec![0; n],
            frontier: Vec::new(),
            frontier_other: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Grows the buffers to accommodate `n` vertices (no-op if large enough).
    pub fn ensure(&mut self, n: usize) {
        if self.visit_fwd.len() < n {
            self.visit_fwd.resize(n, 0);
            self.visit_rev.resize(n, 0);
        }
    }

    /// Bumps the epoch and returns the visit-word *stamp* of the new query:
    /// `epoch << 32`. A vertex counts as visited this query iff its word is
    /// `>= stamp` — epochs only grow, so any word from an earlier query
    /// compares below every stamp of a later one, and `stamp | dist`
    /// settles a vertex at `dist` in a single store.
    fn next_stamp(&mut self) -> u64 {
        // On wrap-around, reset the visit words; with 32-bit epochs this
        // happens once every 4 billion queries.
        if self.epoch == u32::MAX {
            self.visit_fwd.iter_mut().for_each(|m| *m = 0);
            self.visit_rev.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        (self.epoch as u64) << 32
    }

    /// Unidirectional early-exit BFS distance from `s` to `t`.
    pub fn bfs_distance(&mut self, g: &CsrGraph, s: VertexId, t: VertexId) -> Option<u32> {
        self.ensure(g.num_vertices());
        if s == t {
            return Some(0);
        }
        let stamp = self.next_stamp();
        self.frontier.clear();
        self.frontier.push(s);
        self.visit_fwd[s as usize] = stamp;
        let mut d = 0u32;
        while !self.frontier.is_empty() {
            self.next.clear();
            for i in 0..self.frontier.len() {
                let u = self.frontier[i];
                for &v in g.neighbors(u) {
                    if self.visit_fwd[v as usize] < stamp {
                        if v == t {
                            return Some(d + 1);
                        }
                        self.visit_fwd[v as usize] = stamp;
                        self.next.push(v);
                    }
                }
            }
            std::mem::swap(&mut self.frontier, &mut self.next);
            d += 1;
        }
        None
    }

    /// Bidirectional BFS distance from `s` to `t` (the paper's `Bi-BFS`
    /// online baseline \[21\]).
    pub fn bibfs_distance(&mut self, g: &CsrGraph, s: VertexId, t: VertexId) -> Option<u32> {
        let d = self.bounded_bibfs(g, s, t, INF, |_| false);
        if d == INF {
            None
        } else {
            Some(d)
        }
    }

    /// Distance-bounded bidirectional BFS on the subgraph induced by
    /// vertices for which `skip` returns `false` (Algorithm 2).
    ///
    /// Returns `min(d_G'(s, t), bound)` where `G'` is the skip-filtered
    /// graph; returns `bound` as soon as the two searches can prove
    /// `d_G'(s, t) >= bound`, and `INF` only if `bound == INF` and `t` is
    /// unreachable from `s` in `G'`.
    ///
    /// In the paper's framework `skip` filters out the landmarks (so `G'` is
    /// the sparsified graph `G[V∖R]`) and `bound` is the label upper bound
    /// `d⊤(s, t)`, which is exact whenever some shortest `s–t` path crosses a
    /// landmark; hence the minimum of the two is the exact distance in `G`.
    ///
    /// `s` and `t` must not themselves be skipped.
    pub fn bounded_bibfs<F>(
        &mut self,
        g: &CsrGraph,
        s: VertexId,
        t: VertexId,
        bound: u32,
        skip: F,
    ) -> u32
    where
        F: Fn(VertexId) -> bool,
    {
        debug_assert!(!skip(s) && !skip(t), "query endpoints must not be skipped");
        self.ensure(g.num_vertices());
        if s == t {
            return 0;
        }
        if bound == 0 {
            return 0;
        }
        let stamp = self.next_stamp();

        self.frontier.clear();
        self.frontier.push(s);
        self.visit_fwd[s as usize] = stamp;

        self.frontier_other.clear();
        self.frontier_other.push(t);
        self.visit_rev[t as usize] = stamp;

        let mut d_fwd = 0u32;
        let mut d_rev = 0u32;
        // Total vertices settled on each side; the paper expands the smaller
        // side (`|Ps| <= |Pt|`, Algorithm 2 line 4).
        let mut settled_fwd = 1usize;
        let mut settled_rev = 1usize;

        loop {
            if self.frontier.is_empty() || self.frontier_other.is_empty() {
                // One side exhausted its component without meeting the other:
                // d_G'(s, t) = INF, so the bound (possibly INF) is the answer.
                return bound;
            }
            // Once the explored radii reach the bound, any undiscovered path
            // has length >= d_fwd + d_rev + 1 > bound.
            if d_fwd.saturating_add(d_rev) >= bound {
                return bound;
            }

            let forward = settled_fwd <= settled_rev;
            let (frontier, visit_same, visit_other, d_same, d_other) = if forward {
                (&mut self.frontier, &mut self.visit_fwd, &self.visit_rev, &mut d_fwd, d_rev)
            } else {
                (&mut self.frontier_other, &mut self.visit_rev, &self.visit_fwd, &mut d_rev, d_fwd)
            };

            self.next.clear();
            let mut settled_this_level = 0usize;
            for &u in frontier.iter() {
                for &v in g.neighbors(u) {
                    let vi = v as usize;
                    if skip(v) {
                        continue;
                    }
                    if visit_other[vi] >= stamp {
                        // The searches met. Level-synchronous expansion
                        // guarantees the other side settled `v` at `d_other`
                        // (a closer meeting point would have been found in
                        // an earlier level), so this is the exact filtered
                        // distance.
                        let met =
                            (*d_same + 1).saturating_add((visit_other[vi] & DIST_MASK) as u32);
                        debug_assert_eq!((visit_other[vi] & DIST_MASK) as u32, d_other);
                        return met.min(bound);
                    }
                    if visit_same[vi] < stamp {
                        visit_same[vi] = stamp | (*d_same + 1) as u64;
                        self.next.push(v);
                        settled_this_level += 1;
                    }
                }
            }
            std::mem::swap(frontier, &mut self.next);
            *d_same += 1;
            if forward {
                settled_fwd += settled_this_level;
            } else {
                settled_rev += settled_this_level;
            }
        }
    }

    /// Distance-bounded bidirectional BFS with **no** vertex filter — the
    /// query fast path. The caller passes the sparsified graph `G[V∖R]`
    /// already materialised (see `CsrGraph::without_vertices`), so the inner
    /// loop examines each neighbour with zero skip-predicate or rank-lookup
    /// calls. Returns `min(d_g(s, t), bound)` exactly like
    /// [`bounded_bibfs`](Self::bounded_bibfs) with a never-skip filter.
    ///
    /// Generic over [`Adjacency`](crate::csr::Adjacency) so the same monomorphised loop serves both
    /// the in-memory [`CsrGraph`] and `hcl-store`'s memory-mapped packed
    /// index (whose sparsified CSR sections are `&[u32]` slices straight
    /// over the mapping).
    ///
    /// Two additional constant-factor refinements over the reference:
    ///
    /// * the side to expand is chosen by pending frontier *edge* weight
    ///   (sum of frontier degrees — the cost actually about to be paid)
    ///   rather than settled-vertex count;
    /// * the cutoff uses the tight bidirectional lower bound: once the
    ///   marked balls are disjoint, any undiscovered path has length
    ///   `>= d_fwd + d_rev + 1`, so the search stops one level earlier
    ///   than the `d_fwd + d_rev >= bound` test.
    pub fn bounded_bibfs_sparse<A: crate::csr::Adjacency + ?Sized>(
        &mut self,
        g: &A,
        s: VertexId,
        t: VertexId,
        bound: u32,
    ) -> u32 {
        self.ensure(g.num_vertices());
        if s == t {
            return 0;
        }
        if bound == 0 {
            return 0;
        }
        let stamp = self.next_stamp();

        self.frontier.clear();
        self.frontier.push(s);
        self.visit_fwd[s as usize] = stamp;

        self.frontier_other.clear();
        self.frontier_other.push(t);
        self.visit_rev[t as usize] = stamp;

        let mut d_fwd = 0u32;
        let mut d_rev = 0u32;
        // Edges about to be scanned if the side expands: the sum of its
        // frontier degrees in the sparsified graph.
        let mut edges_fwd = g.degree(s) as u64;
        let mut edges_rev = g.degree(t) as u64;

        loop {
            if self.frontier.is_empty() || self.frontier_other.is_empty() {
                // One side exhausted its component without meeting the
                // other: d_g(s, t) = INF, so the bound is the answer.
                return bound;
            }
            // The marked balls are disjoint (every new mark checks the
            // other side first), so d_g(s, t) >= d_fwd + d_rev + 1; once
            // that reaches the bound the bound is the answer.
            if d_fwd.saturating_add(d_rev).saturating_add(1) >= bound {
                return bound;
            }

            let forward = edges_fwd <= edges_rev;
            let (frontier, visit_same, visit_other, d_same) = if forward {
                (&mut self.frontier, &mut self.visit_fwd, &self.visit_rev, &mut d_fwd)
            } else {
                (&mut self.frontier_other, &mut self.visit_rev, &self.visit_fwd, &mut d_rev)
            };

            self.next.clear();
            let mut next_edges = 0u64;
            for &u in frontier.iter() {
                for &v in g.neighbors(u) {
                    let vi = v as usize;
                    if visit_other[vi] >= stamp {
                        // The searches met; as in the reference, the
                        // disjoint-ball invariant makes this exact.
                        let met =
                            (*d_same + 1).saturating_add((visit_other[vi] & DIST_MASK) as u32);
                        return met.min(bound);
                    }
                    if visit_same[vi] < stamp {
                        visit_same[vi] = stamp | (*d_same + 1) as u64;
                        next_edges += g.degree(v) as u64;
                        self.next.push(v);
                    }
                }
            }
            std::mem::swap(frontier, &mut self.next);
            *d_same += 1;
            if forward {
                edges_fwd = next_edges;
            } else {
                edges_rev = next_edges;
            }
        }
    }
}

/// Dijkstra distances from `src` on a weighted graph (`INF` = unreachable).
pub fn dijkstra_distances(g: &WeightedGraph, src: VertexId) -> Vec<u32> {
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    dist[src as usize] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Early-exit point-to-point Dijkstra (the weighted online baseline,
/// "Dijkstra \[27\]" in the paper's Figure 1).
pub fn dijkstra_distance(g: &WeightedGraph, s: VertexId, t: VertexId) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let mut dist = vec![INF; g.num_vertices()];
    let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
    dist[s as usize] = 0;
    heap.push(Reverse((0, s)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if u == t {
            return Some(d);
        }
        if d > dist[u as usize] {
            continue;
        }
        for (v, w) in g.neighbors(u) {
            let nd = d.saturating_add(w);
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;
    use crate::wgraph::WeightedGraphBuilder;

    fn path_graph(n: usize) -> CsrGraph {
        generate::path(n)
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_distances_disconnected() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn point_to_point_matches_full_bfs() {
        let g = generate::erdos_renyi(80, 160, 42);
        let mut space = SearchSpace::new(g.num_vertices());
        for s in [0u32, 7, 31] {
            let truth = bfs_distances(&g, s);
            for t in g.vertices() {
                let expect = if truth[t as usize] == INF { None } else { Some(truth[t as usize]) };
                assert_eq!(space.bfs_distance(&g, s, t), expect, "bfs {s}->{t}");
                assert_eq!(space.bibfs_distance(&g, s, t), expect, "bibfs {s}->{t}");
            }
        }
    }

    #[test]
    fn same_vertex_is_zero() {
        let g = path_graph(3);
        let mut space = SearchSpace::new(3);
        assert_eq!(space.bfs_distance(&g, 1, 1), Some(0));
        assert_eq!(space.bibfs_distance(&g, 1, 1), Some(0));
        assert_eq!(space.bounded_bibfs(&g, 1, 1, 5, |_| false), 0);
    }

    #[test]
    fn bounded_returns_bound_when_true_distance_exceeds_it() {
        let g = path_graph(10);
        let mut space = SearchSpace::new(10);
        // True distance 9, bound 4 -> the search must stop early.
        assert_eq!(space.bounded_bibfs(&g, 0, 9, 4, |_| false), 4);
        // Bound equal to the true distance is returned exactly.
        assert_eq!(space.bounded_bibfs(&g, 0, 9, 9, |_| false), 9);
        // Loose bound: exact distance wins.
        assert_eq!(space.bounded_bibfs(&g, 0, 9, 100, |_| false), 9);
    }

    #[test]
    fn bounded_with_skip_respects_sparsified_graph() {
        // 0-1-2 and 0-3-4-2: removing vertex 1 forces the long way round.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (0, 3), (3, 4), (4, 2)]);
        let mut space = SearchSpace::new(5);
        assert_eq!(space.bounded_bibfs(&g, 0, 2, INF, |_| false), 2);
        assert_eq!(space.bounded_bibfs(&g, 0, 2, INF, |v| v == 1), 3);
        // Skipping both middle vertices disconnects s from t: bound returned.
        assert_eq!(space.bounded_bibfs(&g, 0, 2, 7, |v| v == 1 || v == 3), 7);
        assert_eq!(space.bounded_bibfs(&g, 0, 2, INF, |v| v == 1 || v == 3), INF);
    }

    #[test]
    fn bounded_on_adjacent_vertices() {
        let g = path_graph(2);
        let mut space = SearchSpace::new(2);
        assert_eq!(space.bounded_bibfs(&g, 0, 1, 1, |_| false), 1);
        assert_eq!(space.bounded_bibfs(&g, 0, 1, INF, |_| false), 1);
    }

    #[test]
    fn bounded_matches_reference_on_random_graphs() {
        for seed in 0..5u64 {
            let g = generate::erdos_renyi(60, 110, seed);
            let mut space = SearchSpace::new(g.num_vertices());
            // Reference: full BFS on the graph with vertices 0..3 removed.
            let skip = |v: VertexId| v < 3;
            for s in [3u32, 10, 59] {
                let truth = {
                    // BFS that honours the skip filter.
                    let mut dist = vec![INF; g.num_vertices()];
                    let mut q = std::collections::VecDeque::new();
                    dist[s as usize] = 0;
                    q.push_back(s);
                    while let Some(u) = q.pop_front() {
                        for &v in g.neighbors(u) {
                            if !skip(v) && dist[v as usize] == INF {
                                dist[v as usize] = dist[u as usize] + 1;
                                q.push_back(v);
                            }
                        }
                    }
                    dist
                };
                for t in 3..g.num_vertices() as VertexId {
                    let exact = truth[t as usize];
                    for bound in [0u32, 1, 2, 3, 5, 100, INF] {
                        if s == t {
                            continue;
                        }
                        let got = space.bounded_bibfs(&g, s, t, bound, skip);
                        assert_eq!(got, exact.min(bound), "s={s} t={t} bound={bound}");
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_search_matches_skip_closure_reference() {
        for seed in 0..5u64 {
            let g = generate::erdos_renyi(60, 110, seed);
            let removed: Vec<VertexId> = vec![0, 1, 2];
            let sparse = g.without_vertices(&removed);
            let mut reference = SearchSpace::new(g.num_vertices());
            let mut fast = SearchSpace::new(g.num_vertices());
            for s in [3u32, 10, 59] {
                for t in 3..g.num_vertices() as VertexId {
                    if s == t {
                        continue;
                    }
                    for bound in [0u32, 1, 2, 3, 5, 100, INF] {
                        let want = reference.bounded_bibfs(&g, s, t, bound, |v| v < 3);
                        let got = fast.bounded_bibfs_sparse(&sparse, s, t, bound);
                        assert_eq!(got, want, "seed={seed} s={s} t={t} bound={bound}");
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_search_basics() {
        let g = path_graph(10);
        let mut space = SearchSpace::new(10);
        assert_eq!(space.bounded_bibfs_sparse(&g, 3, 3, 5), 0);
        assert_eq!(space.bounded_bibfs_sparse(&g, 0, 9, 4), 4);
        assert_eq!(space.bounded_bibfs_sparse(&g, 0, 9, 9), 9);
        assert_eq!(space.bounded_bibfs_sparse(&g, 0, 9, INF), 9);
        // Disconnected under removal: bound comes back.
        let cut = g.without_vertices(&[5]);
        assert_eq!(space.bounded_bibfs_sparse(&cut, 0, 9, 7), 7);
        assert_eq!(space.bounded_bibfs_sparse(&cut, 0, 9, INF), INF);
    }

    #[test]
    fn epoch_reuse_many_queries() {
        let g = path_graph(6);
        let mut space = SearchSpace::new(6);
        for _ in 0..1000 {
            assert_eq!(space.bibfs_distance(&g, 0, 5), Some(5));
            assert_eq!(space.bfs_distance(&g, 5, 0), Some(5));
        }
    }

    #[test]
    fn dijkstra_weighted_paths() {
        let mut b = WeightedGraphBuilder::new(4);
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 5);
        b.add_edge(2, 3, 2);
        let g = b.build();
        assert_eq!(dijkstra_distances(&g, 0), vec![0, 1, 2, 4]);
        assert_eq!(dijkstra_distance(&g, 0, 3), Some(4));
        assert_eq!(dijkstra_distance(&g, 3, 0), Some(4));
    }

    #[test]
    fn dijkstra_unreachable() {
        let mut b = WeightedGraphBuilder::new(3);
        b.add_edge(0, 1, 2);
        let g = b.build();
        assert_eq!(dijkstra_distance(&g, 0, 2), None);
        assert_eq!(dijkstra_distances(&g, 0)[2], INF);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights() {
        let g = generate::erdos_renyi(50, 90, 7);
        let mut b = WeightedGraphBuilder::new(g.num_vertices());
        for (u, v) in g.edges() {
            b.add_edge(u, v, 1);
        }
        let wg = b.build();
        for s in [0u32, 13, 49] {
            assert_eq!(dijkstra_distances(&wg, s), bfs_distances(&g, s));
        }
    }
}
