//! The common interface implemented by every exact-distance method.
//!
//! The paper compares six methods (HL, HL-P, FD, PLL, IS-L, Bi-BFS) along
//! three axes: construction time, index size and query time. Implementing
//! one trait across all of them lets the benchmark harness drive any mix of
//! methods uniformly and lets downstream users swap methods without code
//! changes.

use crate::VertexId;

/// An exact point-to-point distance oracle over an undirected, unweighted
/// graph.
///
/// `distance` takes `&mut self` because every competitive method keeps
/// reusable search buffers; queries are sequential per oracle instance.
/// Methods that support concurrent querying expose an additional
/// context-based API on their concrete type.
pub trait DistanceOracle {
    /// Exact shortest-path distance between `s` and `t`, or `None` when the
    /// vertices are disconnected.
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32>;

    /// Short human-readable method name as used in the paper's tables
    /// (e.g. `"HL"`, `"PLL"`, `"Bi-BFS"`).
    fn name(&self) -> &'static str;

    /// Total bytes of the index this oracle queries (0 for online searches).
    fn index_bytes(&self) -> usize {
        0
    }

    /// Average number of label entries per vertex ("ALS" in Table 2);
    /// 0 for methods without per-vertex labels.
    fn avg_label_entries(&self) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u32);
    impl DistanceOracle for Fixed {
        fn distance(&mut self, _s: VertexId, _t: VertexId) -> Option<u32> {
            Some(self.0)
        }
        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn trait_object_usable() {
        let mut boxed: Box<dyn DistanceOracle> = Box::new(Fixed(7));
        assert_eq!(boxed.distance(0, 1), Some(7));
        assert_eq!(boxed.name(), "fixed");
        assert_eq!(boxed.index_bytes(), 0);
        assert_eq!(boxed.avg_label_entries(), 0.0);
    }
}
