//! Deterministic graph generators.
//!
//! The paper evaluates on twelve real-world complex networks (social, web,
//! computer) that are not redistributable here, so the workspace substitutes
//! synthetic graphs with matching *structure*: power-law degree
//! distributions with small effective diameter for social/computer networks
//! ([`barabasi_albert`]), and locally-clustered, skewed web graphs
//! ([`web_copying`]). [`erdos_renyi`] and [`watts_strogatz`] cover
//! non-scale-free regimes, and the structured generators ([`path`],
//! [`grid`], [`star`], …) provide adversarial shapes for tests (e.g. label
//! distances larger than 255, landmarks separating the graph).
//!
//! Every generator takes an explicit `seed` and is fully deterministic.

use crate::csr::{CsrGraph, GraphBuilder};
use crate::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// G(n, m) Erdős–Rényi random graph: `m` distinct edges sampled uniformly.
/// `m` is clamped to `n(n-1)/2`.
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1, "graph must have at least one vertex");
    let mut rng = SmallRng::seed_from_u64(seed);
    let max_m = n * n.saturating_sub(1) / 2;
    let m = m.min(max_m);
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.random_range(0..n as VertexId);
        let v = rng.random_range(0..n as VertexId);
        if u == v {
            continue;
        }
        let (a, z) = if u < v { (u, v) } else { (v, u) };
        let key = (a as u64) << 32 | z as u64;
        if seen.insert(key) {
            b.add_edge(a, z).expect("in range");
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree. Produces
/// the power-law degree distributions and 2–8 hop effective diameters
/// typical of the paper's social networks.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "attachment degree must be positive");
    assert!(n > m_attach, "need more vertices than the attachment degree");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_attach);
    // `targets` holds one entry per edge endpoint; sampling uniformly from it
    // is sampling proportionally to degree.
    let mut targets: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);

    // Seed graph: a star on m_attach + 1 vertices (connected, every seed
    // vertex has nonzero degree so it can be sampled).
    for v in 1..=m_attach as VertexId {
        b.add_edge(0, v).expect("in range");
        targets.push(0);
        targets.push(v);
    }

    let mut chosen: Vec<VertexId> = Vec::with_capacity(m_attach);
    for v in (m_attach + 1) as VertexId..n as VertexId {
        chosen.clear();
        let mut guard = 0usize;
        while chosen.len() < m_attach {
            let t = targets[rng.random_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
            if guard > 64 * m_attach {
                // Degenerate corner (tiny graphs): fall back to any vertex.
                let t = rng.random_range(0..v);
                if !chosen.contains(&t) {
                    chosen.push(t);
                }
            }
        }
        for &t in &chosen {
            b.add_edge(v, t).expect("in range");
            targets.push(v);
            targets.push(t);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// its `k/2` nearest neighbours on each side, each edge rewired with
/// probability `beta`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n >= 3, "ring needs at least three vertices");
    assert!(k >= 2 && k < n, "k must be in [2, n)");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * k / 2);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            let (mut a, mut z) = (u as VertexId, v as VertexId);
            if rng.random::<f64>() < beta {
                // Rewire the far endpoint to a uniform random vertex.
                let mut w = rng.random_range(0..n as VertexId);
                let mut guard = 0;
                while (w as usize == u || w as usize == v) && guard < 32 {
                    w = rng.random_range(0..n as VertexId);
                    guard += 1;
                }
                if w as usize != u {
                    a = u as VertexId;
                    z = w;
                }
            }
            b.add_edge(a, z).expect("in range");
        }
    }
    b.build()
}

/// Web-graph copying model (Kleinberg et al.): each new page picks a random
/// prototype and copies each of its `out_deg` links with probability
/// `1 - alpha`, otherwise links uniformly at random. Produces power-law
/// in-degrees and the link-locality/clustering characteristic of the
/// paper's web datasets (Indochina, it2004, uk2007, ClueWeb09).
pub fn web_copying(n: usize, out_deg: usize, alpha: f64, seed: u64) -> CsrGraph {
    assert!(out_deg >= 1, "out degree must be positive");
    assert!(n > out_deg + 1, "need more vertices than out degree");
    assert!((0.0..=1.0).contains(&alpha), "alpha must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * out_deg);
    // Out-link lists kept for copying; the built graph is undirected.
    let mut links: Vec<Vec<VertexId>> = Vec::with_capacity(n);

    // Seed: a small clique.
    let seed_n = out_deg + 1;
    for u in 0..seed_n {
        let mut row = Vec::with_capacity(out_deg);
        for v in 0..seed_n {
            if u != v {
                b.add_edge(u as VertexId, v as VertexId).expect("in range");
                row.push(v as VertexId);
            }
        }
        links.push(row);
    }

    for v in seed_n..n {
        let prototype = rng.random_range(0..v);
        let mut row = Vec::with_capacity(out_deg);
        for i in 0..out_deg {
            let target = if rng.random::<f64>() < alpha || i >= links[prototype].len() {
                rng.random_range(0..v as VertexId)
            } else {
                links[prototype][i]
            };
            if target != v as VertexId {
                b.add_edge(v as VertexId, target).expect("in range");
                row.push(target);
            }
        }
        links.push(row);
    }
    b.build()
}

/// R-MAT / Graph500-style recursive-matrix generator: `m` edge samples over
/// a `2^scale × 2^scale` adjacency matrix, descending into quadrants with
/// probabilities `(a, b, c, 1-a-b-c)`. The Graph500 parameters
/// `(0.57, 0.19, 0.19, 0.05)` give heavy-tailed degree distributions used
/// throughout web-scale benchmarking. Duplicate samples are dropped, so the
/// final edge count is slightly below `m`.
pub fn rmat(scale: u32, m: usize, a: f64, b: f64, c: f64, seed: u64) -> CsrGraph {
    assert!((1..31).contains(&scale), "scale must be in [1, 30]");
    assert!(a > 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0, "invalid quadrant probabilities");
    let n = 1usize << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            let r: f64 = rng.random();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        builder.add_edge(u, v).expect("in range");
    }
    builder.build()
}

/// R-MAT with the standard Graph500 parameters.
pub fn rmat_graph500(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, (1usize << scale) * edge_factor, 0.57, 0.19, 0.19, seed)
}

/// Uniform random labelled tree (Prüfer-free incremental construction: each
/// vertex attaches to a uniformly random earlier vertex). Connected, n-1
/// edges, useful for exercising deep BFS levels.
pub fn random_tree(n: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as VertexId {
        let p = rng.random_range(0..v);
        b.add_edge(v, p).expect("in range");
    }
    b.build()
}

/// Path graph `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n.saturating_sub(1));
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v).expect("in range");
    }
    b.build()
}

/// Cycle graph on `n >= 3` vertices.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least three vertices");
    let mut b = GraphBuilder::with_capacity(n, n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v).expect("in range");
    }
    b.add_edge(n as VertexId - 1, 0).expect("in range");
    b.build()
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> CsrGraph {
    let n = rows * cols;
    let mut b = GraphBuilder::with_capacity(n, 2 * n);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1)).expect("in range");
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c)).expect("in range");
            }
        }
    }
    b.build()
}

/// Star graph: vertex 0 joined to vertices `1..n`.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 2);
    let mut b = GraphBuilder::with_capacity(n, n - 1);
    for v in 1..n as VertexId {
        b.add_edge(0, v).expect("in range");
    }
    b.build()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v).expect("in range");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;

    #[test]
    fn erdos_renyi_has_requested_edges() {
        let g = erdos_renyi(100, 250, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 250);
    }

    #[test]
    fn erdos_renyi_clamps_to_complete() {
        let g = erdos_renyi(5, 1000, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 9));
        assert_ne!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 10));
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(500, 4, 3);
        assert_eq!(g.num_vertices(), 500);
        // Every non-seed vertex contributes m_attach edges (minus rare dups).
        assert!(g.num_edges() >= 490 * 4 - 20);
        assert_eq!(connectivity::connected_components(&g).1, 1, "BA graph is connected");
        // Preferential attachment yields a hub much larger than the average.
        assert!(g.max_degree() > 4 * g.avg_degree() as usize);
    }

    #[test]
    fn watts_strogatz_structure() {
        let g = watts_strogatz(200, 6, 0.1, 4);
        assert_eq!(g.num_vertices(), 200);
        // Ring lattice gives ~ n*k/2 edges; rewiring can only merge a few.
        assert!(g.num_edges() > 550 && g.num_edges() <= 600);
    }

    #[test]
    fn web_copying_structure() {
        let g = web_copying(1000, 5, 0.2, 5);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() > 3000);
        // Copying concentrates links: expect a heavy hub.
        assert!(g.max_degree() > 3 * g.avg_degree() as usize);
    }

    #[test]
    fn rmat_structure() {
        let g = rmat_graph500(10, 8, 7);
        assert_eq!(g.num_vertices(), 1024);
        // Dedup and self-loop removal shrink the 8192 samples a bit.
        assert!(g.num_edges() > 4000 && g.num_edges() <= 8192);
        // Heavy-tailed: the biggest hub dominates the average.
        assert!(g.max_degree() > 5 * g.avg_degree() as usize);
        assert_eq!(g, rmat_graph500(10, 8, 7), "deterministic");
    }

    #[test]
    #[should_panic(expected = "invalid quadrant")]
    fn rmat_rejects_bad_probabilities() {
        rmat(4, 10, 0.6, 0.3, 0.2, 1);
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(128, 11);
        assert_eq!(g.num_edges(), 127);
        assert_eq!(connectivity::connected_components(&g).1, 1);
    }

    #[test]
    fn structured_graphs() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(grid(3, 4).num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(star(6).num_edges(), 5);
        assert_eq!(star(6).degree(0), 5);
        assert_eq!(complete(5).num_edges(), 10);
    }
}
