//! Property tests for the graph substrate: CSR invariants, search
//! equivalences, serialisation robustness.

use hcl_graph::{connectivity, io, traversal, CsrGraph, SearchSpace, INF};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..50).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..140)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_invariants(g in arbitrary_graph()) {
        // Sorted, deduplicated, symmetric adjacency with no self-loops.
        let mut total = 0usize;
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            total += nbrs.len();
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
            for &u in nbrs {
                prop_assert_ne!(u, v);
                prop_assert!(g.neighbors(u).contains(&v), "asymmetric edge {}-{}", v, u);
            }
        }
        prop_assert_eq!(total, 2 * g.num_edges());
        prop_assert_eq!(g.edges().count(), g.num_edges());
    }

    #[test]
    fn bibfs_equals_bfs(g in arbitrary_graph()) {
        let mut space = SearchSpace::new(g.num_vertices());
        for s in g.vertices() {
            let dist = traversal::bfs_distances(&g, s);
            for t in g.vertices() {
                let expect = (dist[t as usize] != INF).then_some(dist[t as usize]);
                prop_assert_eq!(space.bibfs_distance(&g, s, t), expect);
            }
        }
    }

    #[test]
    fn bounded_bibfs_honours_bound(
        g in arbitrary_graph(),
        bound in 0u32..12,
    ) {
        let mut space = SearchSpace::new(g.num_vertices());
        for s in g.vertices().take(6) {
            let dist = traversal::bfs_distances(&g, s);
            for t in g.vertices().take(12) {
                let got = space.bounded_bibfs(&g, s, t, bound, |_| false);
                prop_assert_eq!(got, dist[t as usize].min(bound));
            }
        }
    }

    #[test]
    fn component_labels_agree_with_reachability(g in arbitrary_graph()) {
        let (comp, count) = connectivity::connected_components(&g);
        prop_assert!(count >= 1);
        let dist = traversal::bfs_distances(&g, 0);
        for v in g.vertices() {
            prop_assert_eq!(comp[v as usize] == comp[0], dist[v as usize] != INF);
        }
        let (lcc, old_ids) = connectivity::largest_connected_component(&g);
        prop_assert!(connectivity::is_connected(&lcc));
        prop_assert_eq!(lcc.num_vertices(), old_ids.len());
    }

    #[test]
    fn binary_roundtrip(g in arbitrary_graph()) {
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_binary(std::io::Cursor::new(buf)).unwrap(), g);
    }

    #[test]
    fn corrupted_binary_never_panics(
        g in arbitrary_graph(),
        cut in 0usize..64,
        flip in 0usize..64,
    ) {
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        // Truncate and bit-flip: must either parse to *some* graph or fail
        // cleanly, never panic.
        let cut = cut.min(buf.len());
        buf.truncate(buf.len() - cut);
        if !buf.is_empty() {
            let idx = flip % buf.len();
            buf[idx] ^= 0x5A;
        }
        let _ = io::read_binary(std::io::Cursor::new(buf));
    }

    #[test]
    fn subgraph_distances_match_filtered_search(g in arbitrary_graph()) {
        if g.num_vertices() < 4 {
            return Ok(());
        }
        let removed: Vec<u32> = vec![0, 1];
        let (sub, old_ids) = hcl_graph::subgraph::remove_vertices(&g, &removed);
        let mut space = SearchSpace::new(g.num_vertices());
        for s_new in 0..sub.num_vertices().min(8) as u32 {
            let dist = traversal::bfs_distances(&sub, s_new);
            for t_new in 0..sub.num_vertices().min(8) as u32 {
                let via_skip = space.bounded_bibfs(
                    &g,
                    old_ids[s_new as usize],
                    old_ids[t_new as usize],
                    INF,
                    |v| removed.contains(&v),
                );
                prop_assert_eq!(via_skip, dist[t_new as usize]);
            }
        }
    }
}
