//! Vertex partitioning for horizontally sharded serving (`hcl-router`).
//!
//! One serving process tops out at one machine's memory; the paper's
//! billion-edge ambitions need the index spread across several. The unit
//! of sharding here is the *graph*, not the labels: per vertex, highway
//! cover labels are a few entries (bounded by the landmark count), while
//! the sparsified graph `G[V∖R]` the bounded searches traverse is the
//! dominant term at scale. So a sharded deployment replicates the small
//! global parts — the labelling and the landmark highway — to every shard
//! and partitions the expensive part: shard `i` serves the subgraph
//! `G[Vᵢ ∪ R]` in the **original id space** (see
//! [`CsrGraph::without_vertices`]), where `Vᵢ` is the set of vertices the
//! [`PartitionMap`] assigns to it and `R` is the global landmark set.
//!
//! A shard is a completely ordinary `hcl serve` process: it loads its
//! shard graph plus the shared global index and answers
//! `min(d⊤(s, t), bounded-BFS over G[Vᵢ∖R])` like any other server. The
//! router combines shards by taking the minimum of the owning shards'
//! answers.
//!
//! # Exactness
//!
//! For a query `(s, t)` the router's answer is always an **upper bound**
//! on the true distance, and it is **exact** when every shortest `s–t`
//! path either
//!
//! 1. passes through a landmark — then the label upper bound `d⊤(s, t)`
//!    (Equation 4), computed from the replicated global labelling, is
//!    already the exact distance on *any* shard; or
//! 2. stays inside a single shard's vertex set `Vᵢ ∪ R` — then that
//!    shard's bounded search finds it, exactly as the unsharded oracle
//!    would (Lemma 4.5 applied to `G[Vᵢ∖R]`).
//!
//! A *sufficient condition* covering every query at once: the partition
//! respects the connected components of the sparsified graph `G[V∖R]`
//! (each component lies entirely inside one shard). Any path avoiding all
//! landmarks stays within one component, so case 2 applies whenever
//! case 1 does not. [`PartitionMap::respects_components`] checks this;
//! `hcl partition` warns when a hash or range split cuts components, in
//! which case answers degrade gracefully to upper bounds for exactly the
//! pairs whose landmark-avoiding shortest paths cross shards.
//!
//! Queries with a landmark endpoint are answered from labels + highway
//! alone (Corollary 3.8) and are therefore exact on any shard; the
//! router treats landmarks as replicated wildcards when routing.
//!
//! # Deployment layout
//!
//! `hcl partition` materialises a deployment directory that the router's
//! `RELOAD` fan-out understands (see [`write_deployment`]):
//!
//! ```text
//! dir/partition.hclp   the serialized PartitionMap
//! dir/index.hcl        the global labelling (shared by every shard)
//! dir/shard0.hclg      shard 0's graph G[V₀ ∪ R], original id space
//! dir/shard1.hclg      …
//! ```

use crate::build::HighwayCoverLabelling;
use hcl_graph::{CsrGraph, GraphError, VertexId};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HCLPART1";

/// File name of the serialized [`PartitionMap`] inside a deployment
/// directory.
pub const PARTITION_FILENAME: &str = "partition.hclp";

/// File name of the shared global labelling inside a deployment
/// directory.
pub const INDEX_FILENAME: &str = "index.hcl";

/// File name of one shard's graph inside a deployment directory.
pub fn shard_graph_filename(shard: u32) -> String {
    format!("shard{shard}.hclg")
}

/// File name of one shard's packed (`hcl-store`) index inside a deployment
/// directory. A packed deployment ships one self-contained `.hclx` per
/// shard — global labels + highway + that shard's sparsified CSR — instead
/// of the `shardN.hclg` + shared `index.hcl` pair, so shards reload by
/// remapping.
pub fn shard_packed_filename(shard: u32) -> String {
    format!("shard{shard}.hclx")
}

/// The path of one shard's packed index inside a deployment directory —
/// the convention the router's `RELOAD <dir>` fan-out uses when it detects
/// a packed deployment (presence of `shard0.hclx`).
pub fn shard_packed_path(dir: &str, shard: u32) -> String {
    let sep = if dir.ends_with('/') { "" } else { "/" };
    format!("{dir}{sep}{}", shard_packed_filename(shard))
}

/// How vertices are assigned to shards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// `splitmix64(v) mod num_shards` — balanced regardless of id layout,
    /// oblivious to locality.
    Hash,
    /// Contiguous id ranges — preserves any locality already present in
    /// the vertex numbering (community-ordered ids shard cleanly).
    Range,
}

/// Which shard(s) must be consulted for a query pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardRoute {
    /// One shard answers alone (same owner, or a landmark endpoint makes
    /// any shard exact).
    Single(u32),
    /// Scatter to both owners and take the minimum of their answers.
    Scatter(u32, u32),
}

/// The vertex → shard assignment of one sharded deployment, plus the
/// global landmark set every shard replicates. Serialized alongside the
/// index so router and tooling agree on ownership.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartitionMap {
    num_vertices: usize,
    num_shards: u32,
    strategy: PartitionStrategy,
    /// For [`PartitionStrategy::Range`]: shard `i` owns ids in
    /// `boundaries[i]..boundaries[i + 1]` (`num_shards + 1` entries,
    /// first 0, last `num_vertices`). Empty for hash partitioning.
    boundaries: Vec<VertexId>,
    /// Sorted global landmark ids.
    landmarks: Vec<VertexId>,
    /// Interchangeable replicas per shard (each holds the same shard
    /// index); the router fails over between them. Always ≥ 1; legacy
    /// files without the trailing replica word decode as 1.
    replicas: u32,
}

impl PartitionMap {
    /// A hash partition of `num_vertices` ids across `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is 0 or a landmark id is out of range.
    pub fn hash(num_vertices: usize, num_shards: u32, landmarks: &[VertexId]) -> Self {
        PartitionMap::validated(
            num_vertices,
            num_shards,
            PartitionStrategy::Hash,
            Vec::new(),
            landmarks,
        )
    }

    /// An even contiguous-range partition of `num_vertices` ids across
    /// `num_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards` is 0 or a landmark id is out of range.
    pub fn range(num_vertices: usize, num_shards: u32, landmarks: &[VertexId]) -> Self {
        let per = num_vertices.div_ceil(num_shards as usize);
        let boundaries =
            (0..=num_shards as usize).map(|i| (i * per).min(num_vertices) as VertexId).collect();
        PartitionMap::validated(
            num_vertices,
            num_shards,
            PartitionStrategy::Range,
            boundaries,
            landmarks,
        )
    }

    fn validated(
        num_vertices: usize,
        num_shards: u32,
        strategy: PartitionStrategy,
        boundaries: Vec<VertexId>,
        landmarks: &[VertexId],
    ) -> Self {
        assert!(num_shards > 0, "a partition needs at least one shard");
        assert!(
            landmarks.iter().all(|&r| (r as usize) < num_vertices),
            "landmark out of range for the partitioned graph"
        );
        let mut landmarks = landmarks.to_vec();
        landmarks.sort_unstable();
        landmarks.dedup();
        PartitionMap { num_vertices, num_shards, strategy, boundaries, landmarks, replicas: 1 }
    }

    /// Sets the intended replica count per shard (deployment metadata
    /// consumed by `hcl route`; the index files themselves are identical
    /// across replicas).
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is 0.
    pub fn with_replicas(mut self, replicas: u32) -> Self {
        assert!(replicas > 0, "a shard needs at least one replica");
        self.replicas = replicas;
        self
    }

    /// Interchangeable replicas per shard (≥ 1).
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Number of shards in the deployment.
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Number of vertices in the partitioned id space (queries beyond it
    /// are out of range on every shard).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The assignment strategy.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The sorted global landmark ids replicated to every shard.
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// Whether `v` is a (replicated) landmark.
    pub fn is_landmark(&self, v: VertexId) -> bool {
        self.landmarks.binary_search(&v).is_ok()
    }

    /// The shard owning `v`'s non-landmark identity. Landmarks are
    /// replicated everywhere; for them this still returns the strategy's
    /// natural assignment so the id space maps totally.
    ///
    /// # Panics
    ///
    /// Panics when `v` is outside the partitioned id space.
    pub fn shard_of(&self, v: VertexId) -> u32 {
        assert!((v as usize) < self.num_vertices, "vertex {v} outside the partition");
        match self.strategy {
            PartitionStrategy::Hash => (splitmix64(v as u64) % self.num_shards as u64) as u32,
            PartitionStrategy::Range => {
                // First boundary strictly greater than v, minus one, is the
                // owning range.
                (self.boundaries.partition_point(|&b| b <= v) - 1) as u32
            }
        }
    }

    /// Which shard(s) can answer `(s, t)`; see the module docs for when
    /// the combined answer is exact. Landmark endpoints make any single
    /// shard exact, so they route to the other endpoint's owner.
    ///
    /// # Panics
    ///
    /// Panics when either vertex is outside the partitioned id space.
    pub fn route(&self, s: VertexId, t: VertexId) -> ShardRoute {
        match (self.is_landmark(s), self.is_landmark(t)) {
            (false, false) => {
                let (a, b) = (self.shard_of(s), self.shard_of(t));
                if a == b {
                    ShardRoute::Single(a)
                } else {
                    ShardRoute::Scatter(a, b)
                }
            }
            (true, false) => ShardRoute::Single(self.shard_of(t)),
            (false, true) => ShardRoute::Single(self.shard_of(s)),
            // Landmark–landmark is a highway lookup; any shard is exact.
            (true, true) => ShardRoute::Single(self.shard_of(s)),
        }
    }

    /// Materialises shard `shard`'s graph `G[Vᵢ ∪ R]` in the original id
    /// space: every edge with an endpoint owned by another shard (and not
    /// a landmark) is dropped, ids and vertex count stay unchanged.
    pub fn shard_graph(&self, g: &CsrGraph, shard: u32) -> CsrGraph {
        assert_eq!(g.num_vertices(), self.num_vertices, "partition built for another graph");
        let removed: Vec<VertexId> = (0..self.num_vertices as VertexId)
            .filter(|&v| self.shard_of(v) != shard && !self.is_landmark(v))
            .collect();
        g.without_vertices(&removed)
    }

    /// Edges present in **no** shard graph: both endpoints non-landmark
    /// and owned by different shards. Each such edge is invisible to every
    /// bounded search in the deployment — the price of the partition.
    pub fn cut_edges(&self, g: &CsrGraph) -> usize {
        assert_eq!(g.num_vertices(), self.num_vertices, "partition built for another graph");
        g.edges()
            .filter(|&(u, v)| {
                !self.is_landmark(u) && !self.is_landmark(v) && self.shard_of(u) != self.shard_of(v)
            })
            .count()
    }

    /// Whether the partition respects the connected components of the
    /// sparsified graph `G[V∖R]` — the sufficient condition under which
    /// **every** query through the router is exact (module docs).
    pub fn respects_components(&self, g: &CsrGraph) -> bool {
        assert_eq!(g.num_vertices(), self.num_vertices, "partition built for another graph");
        let sparse = g.without_vertices(&self.landmarks);
        let (comp, count) = hcl_graph::connectivity::connected_components(&sparse);
        let mut shard_of_comp = vec![u32::MAX; count];
        for v in 0..self.num_vertices as VertexId {
            if self.is_landmark(v) {
                continue;
            }
            let c = comp[v as usize] as usize;
            let s = self.shard_of(v);
            if shard_of_comp[c] == u32::MAX {
                shard_of_comp[c] = s;
            } else if shard_of_comp[c] != s {
                return false;
            }
        }
        true
    }

    /// Serialises the map (little-endian container, like the labelling
    /// format of [`crate::io`]).
    pub fn write<W: Write>(&self, writer: W) -> Result<(), GraphError> {
        let mut w = BufWriter::new(writer);
        w.write_all(MAGIC)?;
        w.write_all(&(self.num_vertices as u64).to_le_bytes())?;
        w.write_all(&self.num_shards.to_le_bytes())?;
        let strategy: u8 = match self.strategy {
            PartitionStrategy::Hash => 0,
            PartitionStrategy::Range => 1,
        };
        w.write_all(&[strategy])?;
        w.write_all(&(self.boundaries.len() as u64).to_le_bytes())?;
        for &b in &self.boundaries {
            w.write_all(&b.to_le_bytes())?;
        }
        w.write_all(&(self.landmarks.len() as u64).to_le_bytes())?;
        for &r in &self.landmarks {
            w.write_all(&r.to_le_bytes())?;
        }
        // Trailing extension word (absent in legacy files): replicas.
        w.write_all(&self.replicas.to_le_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Deserialises a map written by [`write`](Self::write).
    pub fn read<R: Read>(reader: R) -> Result<PartitionMap, GraphError> {
        let mut r = BufReader::new(reader);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(GraphError::Format("bad partition magic".to_string()));
        }
        let n = read_u64(&mut r)?;
        if n >= u32::MAX as u64 {
            return Err(GraphError::Format(format!("implausible vertex count {n}")));
        }
        let num_vertices = n as usize;
        let num_shards = read_u32(&mut r)?;
        if num_shards == 0 {
            return Err(GraphError::Format("partition with zero shards".to_string()));
        }
        let mut strategy = [0u8; 1];
        r.read_exact(&mut strategy)?;
        let strategy = match strategy[0] {
            0 => PartitionStrategy::Hash,
            1 => PartitionStrategy::Range,
            other => return Err(GraphError::Format(format!("unknown partition strategy {other}"))),
        };
        let num_boundaries = read_u64(&mut r)? as usize;
        let expected = match strategy {
            PartitionStrategy::Hash => 0,
            PartitionStrategy::Range => num_shards as usize + 1,
        };
        if num_boundaries != expected {
            return Err(GraphError::Format(format!(
                "{num_boundaries} boundaries for a {num_shards}-shard {strategy:?} partition"
            )));
        }
        let mut boundaries = Vec::with_capacity(num_boundaries.min(1 << 20));
        for _ in 0..num_boundaries {
            boundaries.push(read_u32(&mut r)?);
        }
        if strategy == PartitionStrategy::Range {
            let monotone = boundaries.windows(2).all(|w| w[0] <= w[1]);
            if boundaries[0] != 0 || *boundaries.last().unwrap() as u64 != n || !monotone {
                return Err(GraphError::Format("malformed range boundaries".to_string()));
            }
        }
        let num_landmarks = read_u64(&mut r)? as usize;
        let mut landmarks = Vec::with_capacity(num_landmarks.min(1 << 20));
        for _ in 0..num_landmarks {
            landmarks.push(read_u32(&mut r)?);
        }
        let sorted = landmarks.windows(2).all(|w| w[0] < w[1]);
        if !sorted || landmarks.iter().any(|&v| v as u64 >= n) {
            return Err(GraphError::Format("malformed landmark list".to_string()));
        }
        // Optional trailing replica word: absent in legacy files (→ 1);
        // a torn word is corruption, not a legacy file.
        let mut buf = [0u8; 4];
        let mut got = 0;
        while got < 4 {
            match r.read(&mut buf[got..]) {
                Ok(0) => break,
                Ok(k) => got += k,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        let replicas = match got {
            0 => 1,
            4 => u32::from_le_bytes(buf),
            _ => return Err(GraphError::Format("truncated replica count".to_string())),
        };
        if replicas == 0 {
            return Err(GraphError::Format("partition with zero replicas".to_string()));
        }
        Ok(PartitionMap { num_vertices, num_shards, strategy, boundaries, landmarks, replicas })
    }

    /// Saves the map to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<(), GraphError> {
        self.write(std::fs::File::create(path)?)
    }

    /// Loads a map from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<PartitionMap, GraphError> {
        PartitionMap::read(std::fs::File::open(path)?)
    }
}

/// Per-shard sizes reported by [`write_deployment`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeploymentSummary {
    /// Non-landmark vertices owned by each shard.
    pub shard_vertices: Vec<usize>,
    /// Edges in each shard's graph `G[Vᵢ ∪ R]`.
    pub shard_edges: Vec<usize>,
    /// Edges present in no shard (both endpoints non-landmark, different
    /// owners).
    pub cut_edges: usize,
    /// Whether the partition respects the components of `G[V∖R]` — if
    /// true, every routed query is exact (module docs).
    pub exact: bool,
}

/// Writes a complete sharded deployment into `dir`: the partition map
/// ([`PARTITION_FILENAME`]), the shared global labelling
/// ([`INDEX_FILENAME`]), and one graph file per shard
/// ([`shard_graph_filename`]). Each shard is then served by a plain
/// `hcl serve dir/shardN.hclg dir/index.hcl`.
pub fn write_deployment<P: AsRef<Path>>(
    dir: P,
    g: &CsrGraph,
    labelling: &HighwayCoverLabelling,
    map: &PartitionMap,
) -> Result<DeploymentSummary, GraphError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    map.save(dir.join(PARTITION_FILENAME))?;
    crate::io::save_labelling(labelling, dir.join(INDEX_FILENAME))?;
    let mut summary = DeploymentSummary {
        cut_edges: map.cut_edges(g),
        exact: map.respects_components(g),
        ..Default::default()
    };
    let mut owned = vec![0usize; map.num_shards() as usize];
    for v in 0..g.num_vertices() as VertexId {
        if !map.is_landmark(v) {
            owned[map.shard_of(v) as usize] += 1;
        }
    }
    summary.shard_vertices = owned;
    for shard in 0..map.num_shards() {
        let shard_graph = map.shard_graph(g, shard);
        summary.shard_edges.push(shard_graph.num_edges());
        hcl_graph::io::save_binary(&shard_graph, dir.join(shard_graph_filename(shard)))?;
    }
    Ok(summary)
}

/// The `(graph, index)` paths a shard reloads from inside a deployment
/// directory — the convention the router's `RELOAD <dir>` fan-out uses.
pub fn shard_paths(dir: &str, shard: u32) -> (String, String) {
    let sep = if dir.ends_with('/') { "" } else { "/" };
    (format!("{dir}{sep}{}", shard_graph_filename(shard)), format!("{dir}{sep}{INDEX_FILENAME}"))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::{generate, traversal, INF};
    use std::io::Cursor;

    fn landmarks(g: &CsrGraph, k: usize) -> Vec<VertexId> {
        hcl_graph::order::top_degree(g, k)
    }

    #[test]
    fn assignments_are_total_and_stable() {
        for map in [
            PartitionMap::hash(1000, 4, &[3, 8]),
            PartitionMap::range(1000, 4, &[3, 8]),
            PartitionMap::range(1000, 3, &[999]),
        ] {
            let mut counts = vec![0usize; map.num_shards() as usize];
            for v in 0..1000 {
                let s = map.shard_of(v);
                assert!(s < map.num_shards());
                assert_eq!(s, map.shard_of(v), "deterministic");
                counts[s as usize] += 1;
            }
            // No shard is empty and none holds everything (1000 ids, ≤ 4
            // shards — both strategies spread that).
            assert!(counts.iter().all(|&c| c > 0 && c < 1000), "{counts:?}");
        }
    }

    #[test]
    fn range_boundaries_are_contiguous() {
        let map = PartitionMap::range(10, 3, &[]);
        let shards: Vec<u32> = (0..10).map(|v| map.shard_of(v)).collect();
        assert_eq!(shards, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn routing_treats_landmarks_as_wildcards() {
        let map = PartitionMap::range(100, 2, &[0, 60]);
        // Non-landmark pair, same owner.
        assert_eq!(map.route(10, 20), ShardRoute::Single(0));
        // Non-landmark pair, different owners.
        assert_eq!(map.route(10, 80), ShardRoute::Scatter(0, 1));
        // Landmark endpoint routes to the other endpoint's owner.
        assert_eq!(map.route(0, 80), ShardRoute::Single(1));
        assert_eq!(map.route(80, 60), ShardRoute::Single(1));
        // Landmark–landmark: a single shard suffices.
        assert!(matches!(map.route(0, 60), ShardRoute::Single(_)));
    }

    #[test]
    fn shard_graphs_partition_non_cut_edges() {
        let g = generate::barabasi_albert(300, 4, 5);
        let r = landmarks(&g, 10);
        for map in [PartitionMap::hash(300, 3, &r), PartitionMap::range(300, 3, &r)] {
            let shard_edge_total: usize = (0..3).map(|s| map.shard_graph(&g, s).num_edges()).sum();
            // Every edge lands in ≥ 1 shard unless it is cut; edges inside
            // the landmark set or between a landmark and a vertex are
            // replicated into multiple shards, so totals can exceed m.
            assert!(shard_edge_total + map.cut_edges(&g) >= g.num_edges());
            for s in 0..3 {
                let sub = map.shard_graph(&g, s);
                assert_eq!(sub.num_vertices(), g.num_vertices(), "id space preserved");
                for (u, v) in sub.edges() {
                    let u_ok = map.is_landmark(u) || map.shard_of(u) == s;
                    let v_ok = map.is_landmark(v) || map.shard_of(v) == s;
                    assert!(u_ok && v_ok, "foreign edge ({u}, {v}) in shard {s}");
                }
            }
        }
    }

    #[test]
    fn respects_components_detects_cut_components() {
        // Two triangles joined only through landmark 0:
        // 0-1, 0-2, 1-2 and 0-4, 0-5, 4-5.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (1, 2), (0, 4), (0, 5), (4, 5)]);
        let good = PartitionMap::range(6, 2, &[0]); // {0,1,2} | {3,4,5}
        assert!(good.respects_components(&g));
        // A boundary through a triangle cuts its component.
        let bad = PartitionMap::validated(6, 2, PartitionStrategy::Range, vec![0, 2, 6], &[0]);
        assert!(!bad.respects_components(&g));
    }

    #[test]
    fn component_closed_sharding_preserves_all_distances() {
        // Two ER communities bridged only through two hub landmarks: the
        // range partition is component-closed, so min over owning shards
        // of (d⊤, shard BFS) must equal the true distance for all pairs.
        let mut edges = Vec::new();
        let hubs = [0u32, 1];
        let n = 80u32;
        // Community A: 2..40, community B: 40..80; deterministic edges.
        for v in 2..40u32 {
            edges.push((v, 2 + (v * 7) % 38));
            edges.push((v, hubs[(v % 2) as usize]));
        }
        for v in 40..n {
            edges.push((v, 40 + (v * 11) % 40));
            edges.push((v, hubs[(v % 2) as usize]));
        }
        let edges: Vec<(u32, u32)> = edges.into_iter().filter(|&(a, b)| a != b).collect();
        let g = CsrGraph::from_edges(n as usize, &edges);
        let map = PartitionMap::range(n as usize, 2, &hubs);
        assert!(map.respects_components(&g));

        let (labelling, _) = HighwayCoverLabelling::build(&g, &hubs).unwrap();
        let shard_graphs: Vec<CsrGraph> = (0..2).map(|s| map.shard_graph(&g, s)).collect();
        let shard_oracles: Vec<crate::SharedOracle<&CsrGraph>> = shard_graphs
            .iter()
            .map(|sg| crate::SharedOracle::with_graph(sg, labelling.clone()))
            .collect();

        for s in 0..n {
            let truth = traversal::bfs_distances(&g, s);
            for t in (0..n).step_by(3) {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                let got = match map.route(s, t) {
                    ShardRoute::Single(a) => shard_oracles[a as usize].distance(s, t),
                    ShardRoute::Scatter(a, b) => {
                        let da = shard_oracles[a as usize].distance(s, t);
                        let db = shard_oracles[b as usize].distance(s, t);
                        match (da, db) {
                            (Some(x), Some(y)) => Some(x.min(y)),
                            (x, y) => x.or(y),
                        }
                    }
                };
                assert_eq!(got, expect, "d({s}, {t})");
            }
        }
    }

    #[test]
    fn serde_round_trips_and_rejects_corruption() {
        for map in [PartitionMap::hash(5000, 7, &[1, 2, 3]), PartitionMap::range(5000, 2, &[4999])]
        {
            let mut buf = Vec::new();
            map.write(&mut buf).unwrap();
            assert_eq!(PartitionMap::read(Cursor::new(&buf)).unwrap(), map);
            let mut truncated = buf.clone();
            truncated.truncate(buf.len() - 3);
            assert!(PartitionMap::read(Cursor::new(&truncated)).is_err());
        }
        assert!(PartitionMap::read(Cursor::new(b"NOTAPART".to_vec())).is_err());
    }

    #[test]
    fn replica_count_round_trips_and_legacy_files_default_to_one() {
        let map = PartitionMap::hash(100, 2, &[1]).with_replicas(3);
        assert_eq!(map.replicas(), 3);
        let mut buf = Vec::new();
        map.write(&mut buf).unwrap();
        let loaded = PartitionMap::read(Cursor::new(&buf)).unwrap();
        assert_eq!(loaded, map);
        assert_eq!(loaded.replicas(), 3);

        // A legacy file simply ends after the landmark list.
        let mut legacy = buf.clone();
        legacy.truncate(buf.len() - 4);
        let loaded = PartitionMap::read(Cursor::new(&legacy)).unwrap();
        assert_eq!(loaded.replicas(), 1);

        // A torn trailing word is corruption, not a legacy file; a zero
        // replica count is nonsense.
        let mut torn = buf.clone();
        torn.truncate(buf.len() - 2);
        assert!(PartitionMap::read(Cursor::new(&torn)).is_err());
        let mut zeroed = buf.clone();
        let at = zeroed.len() - 4;
        zeroed[at..].copy_from_slice(&0u32.to_le_bytes());
        assert!(PartitionMap::read(Cursor::new(&zeroed)).is_err());
    }

    #[test]
    fn deployment_round_trips_through_files() {
        let dir = std::env::temp_dir().join("hcl_partition_deploy_test");
        std::fs::remove_dir_all(&dir).ok();
        let g = generate::barabasi_albert(150, 3, 9);
        let r = landmarks(&g, 6);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &r).unwrap();
        let map = PartitionMap::hash(150, 2, &r);
        let summary = write_deployment(&dir, &g, &labelling, &map).unwrap();
        assert_eq!(summary.shard_vertices.iter().sum::<usize>(), 150 - r.len());
        assert_eq!(summary.shard_edges.len(), 2);

        let loaded = PartitionMap::load(dir.join(PARTITION_FILENAME)).unwrap();
        assert_eq!(loaded, map);
        let index = crate::io::load_labelling(dir.join(INDEX_FILENAME)).unwrap();
        assert_eq!(index, labelling);
        for s in 0..2 {
            let (graph_path, index_path) = shard_paths(dir.to_str().unwrap(), s);
            let sg = hcl_graph::io::load_binary(&graph_path).unwrap();
            assert_eq!(sg, map.shard_graph(&g, s));
            assert!(std::path::Path::new(&index_path).is_file());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
