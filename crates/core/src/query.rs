//! The bounded distance querying framework (§4) and its optimisations (§5.3).
//!
//! A query proceeds in two steps:
//!
//! 1. **Upper bound** (Equation 4): the best `r`-constrained distance over
//!    all landmark pairs in the two labels, computed with the Lemma 5.1
//!    optimisation — landmarks common to both labels contribute their direct
//!    sum, and cross terms are only needed between the *s-only* and *t-only*
//!    remainders (any cross term touching a common landmark is dominated by
//!    that landmark's direct sum, by the triangle inequality).
//! 2. **Bounded search** (Algorithm 2): a bidirectional BFS on the
//!    sparsified graph `G[V∖R]`, cut off at the upper bound. If some
//!    shortest `s–t` path passes through a landmark the bound is already
//!    exact; otherwise the sparsified graph preserves the shortest path
//!    (Lemma 4.5) and the search finds it.
//!
//! Queries where an endpoint *is* a landmark are answered from the labels
//! and highway alone (Corollary 3.8 makes that exact), with no search.
//!
//! Query state lives in a [`QueryContext`]; [`HlOracle`] bundles one with
//! the labelling for the common single-threaded case, and
//! [`HighwayCoverLabelling::batch_distances`](crate::build::HighwayCoverLabelling)
//! fans contexts out across threads.

use crate::build::HighwayCoverLabelling;
use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{CsrGraph, SearchSpace, VertexId, INF};

/// Algorithm 2 plus lane scratch for the Lemma 5.1 label merge.
///
/// The merge in [`crate::storage`] works on structure-of-arrays label
/// lanes: `dec_*` are decode targets for backends that don't store lanes
/// natively (the packed `IndexView` expands its varint streams here;
/// in-memory backends leave them untouched and lend their own slices), and
/// `only_*` hold the label-exclusive remainders that feed the cross-term
/// min-reduction.
#[derive(Clone, Debug)]
pub struct QueryContext {
    space: SearchSpace,
    dec_s_ranks: Vec<u16>,
    dec_s_dists: Vec<u16>,
    dec_t_ranks: Vec<u16>,
    dec_t_dists: Vec<u16>,
    only_s_ranks: Vec<u16>,
    only_s_dists: Vec<u16>,
    only_t_ranks: Vec<u16>,
    only_t_dists: Vec<u16>,
}

/// All of a [`QueryContext`]'s merge lanes, mutably borrowed at once so the
/// generic merge can hold decode lanes and remainder lanes simultaneously.
pub(crate) struct LaneScratch<'a> {
    pub dec_s_ranks: &'a mut Vec<u16>,
    pub dec_s_dists: &'a mut Vec<u16>,
    pub dec_t_ranks: &'a mut Vec<u16>,
    pub dec_t_dists: &'a mut Vec<u16>,
    pub only_s_ranks: &'a mut Vec<u16>,
    pub only_s_dists: &'a mut Vec<u16>,
    pub only_t_ranks: &'a mut Vec<u16>,
    pub only_t_dists: &'a mut Vec<u16>,
}

impl QueryContext {
    /// A context for graphs with `n` vertices.
    pub fn new(n: usize) -> Self {
        QueryContext {
            space: SearchSpace::new(n),
            dec_s_ranks: Vec::new(),
            dec_s_dists: Vec::new(),
            dec_t_ranks: Vec::new(),
            dec_t_dists: Vec::new(),
            only_s_ranks: Vec::new(),
            only_s_dists: Vec::new(),
            only_t_ranks: Vec::new(),
            only_t_dists: Vec::new(),
        }
    }

    /// The label-merge lane scratch for the generic Lemma 5.1 merge in
    /// [`crate::storage`].
    pub(crate) fn lanes(&mut self) -> LaneScratch<'_> {
        LaneScratch {
            dec_s_ranks: &mut self.dec_s_ranks,
            dec_s_dists: &mut self.dec_s_dists,
            dec_t_ranks: &mut self.dec_t_ranks,
            dec_t_dists: &mut self.dec_t_dists,
            only_s_ranks: &mut self.only_s_ranks,
            only_s_dists: &mut self.only_s_dists,
            only_t_ranks: &mut self.only_t_ranks,
            only_t_dists: &mut self.only_t_dists,
        }
    }

    /// The reusable search buffers for Algorithm 2.
    pub(crate) fn search_space(&mut self) -> &mut SearchSpace {
        &mut self.space
    }
}

impl HighwayCoverLabelling {
    /// The upper bound `d⊤(s, t)` of Equation 4 (`INF` when the labels share
    /// no connected landmark pair). Handles landmark endpoints, for which
    /// the bound is the exact distance.
    ///
    /// This is the allocation-free reference implementation (plain double
    /// loop); [`upper_bound_with`](Self::upper_bound_with) applies the
    /// Lemma 5.1 merge, and the two are verified equal in tests and
    /// compared in the ablation benchmarks.
    pub fn upper_bound(&self, s: VertexId, t: VertexId) -> u32 {
        if s == t {
            return 0;
        }
        let h = self.highway();
        match (h.rank(s), h.rank(t)) {
            (Some(a), Some(b)) => h.distance(a, b),
            (Some(a), None) => self.bound_from_landmark(a, t),
            (None, Some(b)) => self.bound_from_landmark(b, s),
            (None, None) => {
                let mut best = INF;
                for es in self.labels().label(s) {
                    let ds = es.dist as u32;
                    for et in self.labels().label(t) {
                        // δH(r, r) = 0, so common landmarks are subsumed.
                        let via = h.distance(es.landmark as u32, et.landmark as u32);
                        if via == INF {
                            continue;
                        }
                        let cand = ds + via + et.dist as u32;
                        if cand < best {
                            best = cand;
                        }
                    }
                }
                best
            }
        }
    }

    /// Upper bound `d⊤(s, t)` using the Lemma 5.1 merge: direct sums over
    /// landmarks common to both labels, cross terms only between the
    /// label-exclusive remainders. Equal to
    /// [`upper_bound`](Self::upper_bound) for all inputs (property-tested).
    ///
    /// Delegates to the storage-generic
    /// [`upper_bound_on`](crate::storage::upper_bound_on), monomorphised
    /// here for the in-memory slice-backed labels.
    pub fn upper_bound_with(&self, ctx: &mut QueryContext, s: VertexId, t: VertexId) -> u32 {
        crate::storage::upper_bound_on(self, ctx, s, t)
    }

    /// Exact distance from the landmark with rank `rank` to vertex `v`
    /// (Corollary 3.8): `min over (rj, δ) ∈ L(v) of δH(rank, rj) + δ`.
    pub fn bound_from_landmark(&self, rank: u32, v: VertexId) -> u32 {
        crate::storage::bound_from_landmark_on(self, rank, v)
    }

    /// Exact distance via the full framework, using caller-provided state.
    /// `graph` must be the graph the labelling was built from.
    pub fn distance_with(
        &self,
        graph: &CsrGraph,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let h = self.highway();
        let landmark_endpoint = h.is_landmark(s) || h.is_landmark(t);
        let bound = self.upper_bound_with(ctx, s, t);
        if landmark_endpoint {
            // Corollary 3.8 / the highway matrix make the bound exact.
            return if bound == INF { None } else { Some(bound) };
        }
        let d = ctx.space.bounded_bibfs(graph, s, t, bound, |v| self.highway().is_landmark(v));
        if d == INF {
            None
        } else {
            Some(d)
        }
    }

    /// Exact distance via the fast path: identical semantics to
    /// [`distance_with`](Self::distance_with), but the bounded search runs
    /// on the precomputed sparsified CSR of
    /// [`SparseView`](crate::SparseView) — zero skip-predicate and
    /// rank-lookup calls per edge. `view` must have been built from the
    /// graph the labelling was built from.
    pub fn distance_sparse(
        &self,
        view: &crate::SparseView,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> Option<u32> {
        crate::storage::distance_on(&crate::storage::MemIndex::new(self, view), ctx, s, t)
    }

    /// [`distance_sparse`](Self::distance_sparse) with per-phase wall-clock
    /// accounting (label merge vs bounded search) for observability.
    pub fn distance_sparse_timed(
        &self,
        view: &crate::SparseView,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> (Option<u32>, crate::storage::QueryPhases) {
        crate::storage::distance_on_timed(&crate::storage::MemIndex::new(self, view), ctx, s, t)
    }

    /// Answers a batch of queries across `num_threads` worker threads
    /// (0 = all cores). Results are in input order; throughput scales with
    /// cores because queries share nothing but the read-only labelling and
    /// graph. Worker contexts come from a
    /// [`ContextPool`](crate::ContextPool) — callers that
    /// batch repeatedly should use
    /// [`SharedOracle::batch_distances`](crate::SharedOracle), whose
    /// persistent pool reuses the contexts (and their O(n) mark arrays)
    /// across calls.
    pub fn batch_distances(
        &self,
        graph: &CsrGraph,
        pairs: &[(VertexId, VertexId)],
        num_threads: usize,
    ) -> Vec<Option<u32>> {
        let pool = crate::ContextPool::new(graph.num_vertices());
        self.batch_distances_pooled(graph, &pool, pairs, num_threads)
    }

    /// [`batch_distances`](Self::batch_distances) with caller-owned context
    /// storage: each worker checks one [`QueryContext`] out of `pool` and
    /// returns it when the batch completes, so a long-lived pool amortises
    /// the per-context allocations away entirely.
    pub fn batch_distances_pooled(
        &self,
        graph: &CsrGraph,
        pool: &crate::ContextPool,
        pairs: &[(VertexId, VertexId)],
        num_threads: usize,
    ) -> Vec<Option<u32>> {
        batch_over(pool, pairs, num_threads, |ctx, s, t| self.distance_with(graph, ctx, s, t))
    }
}

/// Fans `pairs` across `num_threads` scoped workers (0 = all cores),
/// preserving input order. Each worker holds one pooled context for its
/// whole chunk; contexts return to `pool` as workers finish.
///
/// Public so alternative backends (`hcl-store`'s packed oracle) can reuse
/// the same batching machinery with their own per-pair query closure.
pub fn batch_over<F>(
    pool: &crate::ContextPool,
    pairs: &[(VertexId, VertexId)],
    num_threads: usize,
    query: F,
) -> Vec<Option<u32>>
where
    F: Fn(&mut QueryContext, VertexId, VertexId) -> Option<u32> + Sync,
{
    let threads = if num_threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        num_threads
    };
    let threads = threads.min(pairs.len().max(1));
    if threads <= 1 {
        let mut ctx = pool.checkout();
        return pairs.iter().map(|&(s, t)| query(&mut ctx, s, t)).collect();
    }
    let mut results: Vec<Option<u32>> = vec![None; pairs.len()];
    let chunk = pairs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pair_chunk, out_chunk) in pairs.chunks(chunk).zip(results.chunks_mut(chunk)) {
            let mut ctx = pool.checkout();
            let query = &query;
            scope.spawn(move || {
                for (&(s, t), out) in pair_chunk.iter().zip(out_chunk.iter_mut()) {
                    *out = query(&mut ctx, s, t);
                }
            });
        }
    });
    results
}

/// A ready-to-query exact distance oracle: a [`HighwayCoverLabelling`]
/// paired with the graph it was built from and a reusable [`QueryContext`].
///
/// This is the "HL" method of the paper's evaluation. Construction is
/// `O(|R| · m)`; queries cost one label merge plus a distance-bounded
/// bidirectional BFS on the landmark-free subgraph.
///
/// Internally this is a thin wrapper over a borrowed-graph
/// [`SharedOracle`](crate::SharedOracle): the shared handle answers the
/// concurrent `&self` path, while `HlOracle` adds the classic `&mut self`
/// API with a private context that skips the pool. Use
/// [`shared`](Self::shared) to fan the same index out across threads.
pub struct HlOracle<'g> {
    shared: crate::SharedOracle<&'g CsrGraph>,
    ctx: QueryContext,
}

impl<'g> HlOracle<'g> {
    /// Wraps a labelling built over `graph`.
    pub fn new(graph: &'g CsrGraph, labelling: HighwayCoverLabelling) -> Self {
        let n = graph.num_vertices();
        HlOracle {
            shared: crate::SharedOracle::with_graph(graph, labelling),
            ctx: QueryContext::new(n),
        }
    }

    /// The underlying labelling.
    pub fn labelling(&self) -> &HighwayCoverLabelling {
        self.shared.labelling()
    }

    /// Consumes the oracle and returns the labelling (e.g. to serialise it).
    pub fn into_labelling(self) -> HighwayCoverLabelling {
        self.shared.into_labelling()
    }

    /// The thread-safe shared oracle this wrapper fronts. Queries on the
    /// returned handle take `&self`, so it can be passed to scoped threads.
    pub fn shared(&self) -> &crate::SharedOracle<&'g CsrGraph> {
        &self.shared
    }

    /// Upper bound `d⊤(s, t)` (Lemma 5.1 merge, reusable buffers).
    pub fn upper_bound(&mut self, s: VertexId, t: VertexId) -> u32 {
        self.shared.labelling().upper_bound_with(&mut self.ctx, s, t)
    }

    /// Exact distance via the full framework (upper bound + bounded search
    /// on the shared oracle's precomputed [`SparseView`](crate::SparseView)).
    pub fn query(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.shared.labelling().distance_sparse(self.shared.sparse_view(), &mut self.ctx, s, t)
    }

    /// Whether the pair `(s, t)` is *covered* by the landmarks: some
    /// shortest `s–t` path passes through a landmark, i.e. the label upper
    /// bound alone is already exact (the paper's Figure 9 metric).
    pub fn pair_covered(&mut self, s: VertexId, t: VertexId) -> bool {
        let bound = self.upper_bound(s, t);
        match self.query(s, t) {
            Some(d) => bound == d,
            None => false,
        }
    }
}

impl DistanceOracle for HlOracle<'_> {
    fn distance(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        self.query(s, t)
    }

    fn name(&self) -> &'static str {
        "HL"
    }

    fn index_bytes(&self) -> usize {
        self.labelling().index_bytes()
    }

    fn avg_label_entries(&self) -> f64 {
        self.labelling().labels().avg_label_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;
    use hcl_graph::{generate, traversal};

    fn build_oracle(g: &CsrGraph, k: usize) -> HlOracle<'_> {
        let landmarks = hcl_graph::order::top_degree(g, k);
        let (hcl, _) = HighwayCoverLabelling::build(g, &landmarks).unwrap();
        HlOracle::new(g, hcl)
    }

    #[test]
    fn paper_example_4_2_upper_bound() {
        let g = fixture::paper_graph();
        let (hcl, _) = HighwayCoverLabelling::build(&g, &fixture::paper_landmarks()).unwrap();
        let (v2, v11) = (fixture::paper_vertex(2), fixture::paper_vertex(11));
        assert_eq!(hcl.upper_bound(v2, v11), 3);
        let mut oracle = HlOracle::new(&g, hcl);
        assert_eq!(oracle.upper_bound(v2, v11), 3);
        // Example 4.3: the exact distance is the bound itself.
        assert_eq!(oracle.query(v2, v11), Some(3));
    }

    #[test]
    fn exact_on_paper_example_all_pairs() {
        let g = fixture::paper_graph();
        let (hcl, _) = HighwayCoverLabelling::build(&g, &fixture::paper_landmarks()).unwrap();
        let mut oracle = HlOracle::new(&g, hcl);
        for s in g.vertices() {
            let truth = traversal::bfs_distances(&g, s);
            for t in g.vertices() {
                assert_eq!(oracle.query(s, t), Some(truth[t as usize]), "{s}->{t}");
            }
        }
    }

    #[test]
    fn exact_on_random_graphs_all_pairs() {
        for (gi, g) in [
            generate::erdos_renyi(70, 150, 1),
            generate::barabasi_albert(90, 3, 2),
            generate::watts_strogatz(80, 4, 0.2, 3),
            generate::web_copying(100, 4, 0.3, 4),
            generate::random_tree(60, 5),
            generate::grid(8, 9),
        ]
        .iter()
        .enumerate()
        {
            for k in [1usize, 4, 10] {
                let mut oracle = build_oracle(g, k);
                for s in g.vertices().step_by(7) {
                    let truth = traversal::bfs_distances(g, s);
                    for t in g.vertices() {
                        let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                        assert_eq!(oracle.query(s, t), expect, "graph {gi} k {k} {s}->{t}");
                    }
                }
            }
        }
    }

    #[test]
    fn exact_on_disconnected_graph() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[1, 4]).unwrap();
        let mut oracle = HlOracle::new(&g, hcl);
        assert_eq!(oracle.query(0, 2), Some(2));
        assert_eq!(oracle.query(3, 5), Some(2));
        assert_eq!(oracle.query(0, 3), None);
        assert_eq!(oracle.query(6, 0), None);
        assert_eq!(oracle.query(6, 6), Some(0));
    }

    #[test]
    fn landmark_endpoint_queries_need_no_search() {
        let g = generate::barabasi_albert(150, 4, 6);
        let landmarks = hcl_graph::order::top_degree(&g, 8);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut oracle = HlOracle::new(&g, hcl);
        for &r in &landmarks {
            let truth = traversal::bfs_distances(&g, r);
            for t in g.vertices() {
                assert_eq!(oracle.query(r, t), Some(truth[t as usize]), "{r}->{t}");
                assert_eq!(oracle.query(t, r), Some(truth[t as usize]), "{t}->{r}");
            }
        }
    }

    #[test]
    fn optimized_upper_bound_equals_reference() {
        for seed in 0..5u64 {
            let g = generate::barabasi_albert(120, 3, seed);
            let landmarks = hcl_graph::order::top_degree(&g, 12);
            let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
            let reference = hcl.clone();
            let mut oracle = HlOracle::new(&g, hcl);
            for s in g.vertices().step_by(3) {
                for t in g.vertices().step_by(5) {
                    assert_eq!(
                        oracle.upper_bound(s, t),
                        reference.upper_bound(s, t),
                        "seed {seed} {s}->{t}"
                    );
                }
            }
        }
    }

    #[test]
    fn upper_bound_is_admissible_and_tight_through_landmarks() {
        // Lemma 4.4: d⊤ >= d always; equality iff a landmark lies on some
        // shortest path.
        let g = generate::erdos_renyi(80, 200, 11);
        let landmarks = hcl_graph::order::top_degree(&g, 6);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let dist: Vec<Vec<u32>> =
            (0..g.num_vertices()).map(|v| traversal::bfs_distances(&g, v as u32)).collect();
        for s in g.vertices() {
            for t in g.vertices() {
                if s == t || hcl.highway().is_landmark(s) || hcl.highway().is_landmark(t) {
                    continue;
                }
                let d = dist[s as usize][t as usize];
                let ub = hcl.upper_bound(s, t);
                if d == INF {
                    assert_eq!(ub, INF, "bound must be infinite for disconnected {s}->{t}");
                    continue;
                }
                assert!(ub >= d, "admissibility {s}->{t}");
                let through_landmark = landmarks.iter().any(|&r| {
                    dist[s as usize][r as usize] != INF
                        && dist[r as usize][t as usize] != INF
                        && dist[s as usize][r as usize] + dist[r as usize][t as usize] == d
                });
                assert_eq!(ub == d, through_landmark, "tightness {s}->{t}");
            }
        }
    }

    #[test]
    fn pair_covered_matches_definition() {
        let g = generate::barabasi_albert(100, 3, 13);
        let landmarks = hcl_graph::order::top_degree(&g, 5);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let dist: Vec<Vec<u32>> =
            (0..g.num_vertices()).map(|v| traversal::bfs_distances(&g, v as u32)).collect();
        let mut oracle = HlOracle::new(&g, hcl);
        for s in g.vertices().step_by(3) {
            for t in g.vertices().step_by(4) {
                if s == t {
                    continue;
                }
                let d = dist[s as usize][t as usize];
                let covered = landmarks.iter().any(|&r| {
                    (s != r && t != r)
                        && dist[s as usize][r as usize] + dist[r as usize][t as usize] == d
                }) || landmarks.contains(&s)
                    || landmarks.contains(&t);
                assert_eq!(oracle.pair_covered(s, t), covered, "{s}->{t}");
            }
        }
    }

    #[test]
    fn batch_matches_sequential_queries() {
        let g = generate::barabasi_albert(300, 4, 19);
        let landmarks = hcl_graph::order::top_degree(&g, 10);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let pairs: Vec<(u32, u32)> =
            (0..250).map(|i| ((i * 7) % 300, (i * 13 + 1) % 300)).collect();
        let mut ctx = QueryContext::new(g.num_vertices());
        let expect: Vec<Option<u32>> =
            pairs.iter().map(|&(s, t)| hcl.distance_with(&g, &mut ctx, s, t)).collect();
        for threads in [0usize, 1, 2, 4] {
            assert_eq!(hcl.batch_distances(&g, &pairs, threads), expect, "threads {threads}");
        }
    }

    #[test]
    fn batch_on_empty_and_tiny_inputs() {
        let g = generate::path(4);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[1]).unwrap();
        assert!(hcl.batch_distances(&g, &[], 4).is_empty());
        assert_eq!(hcl.batch_distances(&g, &[(0, 3)], 8), vec![Some(3)]);
    }

    #[test]
    fn bound_from_landmark_handles_landmark_target() {
        let g = generate::cycle(10);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[0, 5]).unwrap();
        assert_eq!(hcl.bound_from_landmark(0, 5), 5);
        assert_eq!(hcl.bound_from_landmark(1, 0), 5);
    }

    #[test]
    fn oracle_trait_metadata() {
        let g = generate::barabasi_albert(80, 3, 1);
        let mut oracle = build_oracle(&g, 5);
        assert_eq!(oracle.name(), "HL");
        assert!(oracle.index_bytes() > 0);
        assert!(oracle.avg_label_entries() > 0.0);
        assert_eq!(DistanceOracle::distance(&mut oracle, 0, 1), oracle.query(0, 1));
    }
}
