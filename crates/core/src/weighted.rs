//! Highway cover labelling for **weighted** graphs — an extension beyond
//! the paper (which treats all networks as unweighted, §6.1).
//!
//! The highway cover property is weight-agnostic: the defining condition
//! "no other landmark on any shortest `r–v` path" (Lemma 3.7) carries over
//! verbatim, with pruned *Dijkstra* searches in place of pruned BFSs and a
//! distance-bounded bidirectional Dijkstra as the online component. With
//! positive edge weights every predecessor on a shortest path settles
//! strictly earlier, so the pruned flag of a vertex is exactly
//!
//! ```text
//! pruned(v) = v ∈ R  ∨  ∃ neighbour u: dist(u) + w(u, v) = dist(v) ∧ pruned(u)
//! ```
//!
//! evaluated at settle time — the weighted analogue of the pruned-frontier-
//! first rule of Algorithm 1. Minimality and order independence follow from
//! the same arguments as in the unweighted case, and the test suite checks
//! both against brute-force Dijkstra.

use crate::highway::Highway;
use crate::BuildError;
use hcl_graph::{VertexId, WeightedGraph, INF};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A label entry of the weighted labelling: landmark rank + exact weighted
/// distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WeightedLabelEntry {
    /// Rank of the landmark in the highway.
    pub landmark: u16,
    /// Exact weighted distance from the landmark.
    pub dist: u32,
}

/// Highway cover labelling over a weighted graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WeightedHighwayCoverLabelling {
    highway: Highway,
    offsets: Vec<u32>,
    entries: Vec<WeightedLabelEntry>,
}

impl WeightedHighwayCoverLabelling {
    /// Builds the labelling with one pruned Dijkstra per landmark. All edge
    /// weights must be positive.
    pub fn build(g: &WeightedGraph, landmarks: &[VertexId]) -> Result<Self, BuildError> {
        let n = g.num_vertices();
        if landmarks.len() > u16::MAX as usize {
            return Err(BuildError::TooManyLandmarks { requested: landmarks.len() });
        }
        let mut seen = vec![false; n];
        for &r in landmarks {
            if (r as usize) >= n {
                return Err(BuildError::LandmarkOutOfRange { landmark: r, n });
            }
            if std::mem::replace(&mut seen[r as usize], true) {
                return Err(BuildError::DuplicateLandmark { landmark: r });
            }
        }

        let mut highway = Highway::new(n, landmarks);
        let mut per_landmark: Vec<Vec<(VertexId, u32)>> = Vec::with_capacity(landmarks.len());
        let mut dist = vec![INF; n];
        let mut pruned = vec![false; n];
        let mut touched: Vec<VertexId> = Vec::new();

        for (rank, &root) in landmarks.iter().enumerate() {
            let mut labels = Vec::new();
            let mut heap: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
            dist[root as usize] = 0;
            pruned[root as usize] = false;
            touched.push(root);
            heap.push(Reverse((0, root)));
            while let Some(Reverse((d, u))) = heap.pop() {
                if d > dist[u as usize] {
                    continue;
                }
                // Settle u: all shortest-path predecessors are settled (their
                // distances are strictly smaller), so the pruned flag is
                // decidable now.
                let is_pruned = if u == root {
                    false
                } else if highway.rank(u).is_some() {
                    highway.record(rank as u32, highway.rank(u).unwrap(), d);
                    true
                } else {
                    let on_pruned_path = g.neighbors(u).any(|(p, w)| {
                        dist[p as usize] != INF
                            && dist[p as usize].saturating_add(w) == d
                            && pruned[p as usize]
                    });
                    if !on_pruned_path {
                        labels.push((u, d));
                    }
                    on_pruned_path
                };
                pruned[u as usize] = is_pruned;
                for (v, w) in g.neighbors(u) {
                    assert!(w > 0, "edge weights must be positive");
                    let nd = d.saturating_add(w);
                    if nd < dist[v as usize] {
                        if dist[v as usize] == INF {
                            touched.push(v);
                        }
                        dist[v as usize] = nd;
                        heap.push(Reverse((nd, v)));
                    }
                }
            }
            per_landmark.push(labels);
            for &v in &touched {
                dist[v as usize] = INF;
                pruned[v as usize] = false;
            }
            touched.clear();
        }
        highway.close();

        // Flatten, rank-sorted per vertex (rank order of the outer loop).
        let mut counts = vec![0u32; n + 1];
        for batch in &per_landmark {
            for &(v, _) in batch {
                counts[v as usize + 1] += 1;
            }
        }
        for i in 1..=n {
            counts[i] += counts[i - 1];
        }
        let offsets = counts;
        let mut entries = vec![WeightedLabelEntry { landmark: 0, dist: 0 }; offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (rank, batch) in per_landmark.iter().enumerate() {
            for &(v, d) in batch {
                let c = &mut cursor[v as usize];
                entries[*c as usize] = WeightedLabelEntry { landmark: rank as u16, dist: d };
                *c += 1;
            }
        }
        Ok(WeightedHighwayCoverLabelling { highway, offsets, entries })
    }

    /// The highway.
    pub fn highway(&self) -> &Highway {
        &self.highway
    }

    /// The label of `v`.
    pub fn label(&self, v: VertexId) -> &[WeightedLabelEntry] {
        let v = v as usize;
        &self.entries[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Total label entries.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Upper bound `d⊤(s, t)` (Equation 4, weighted).
    pub fn upper_bound(&self, s: VertexId, t: VertexId) -> u32 {
        if s == t {
            return 0;
        }
        let h = &self.highway;
        match (h.rank(s), h.rank(t)) {
            (Some(a), Some(b)) => h.distance(a, b),
            (Some(a), None) => self.bound_from_landmark(a, t),
            (None, Some(b)) => self.bound_from_landmark(b, s),
            (None, None) => {
                let mut best = INF;
                for es in self.label(s) {
                    for et in self.label(t) {
                        let via = h.distance(es.landmark as u32, et.landmark as u32);
                        if via == INF {
                            continue;
                        }
                        let cand = es.dist.saturating_add(via).saturating_add(et.dist);
                        if cand < best {
                            best = cand;
                        }
                    }
                }
                best
            }
        }
    }

    fn bound_from_landmark(&self, rank: u32, v: VertexId) -> u32 {
        if let Some(vr) = self.highway.rank(v) {
            return self.highway.distance(rank, vr);
        }
        let mut best = INF;
        for e in self.label(v) {
            let via = self.highway.distance(rank, e.landmark as u32);
            if via == INF {
                continue;
            }
            let cand = via.saturating_add(e.dist);
            if cand < best {
                best = cand;
            }
        }
        best
    }
}

/// Query engine for the weighted labelling: Equation 4 bound + distance-
/// bounded bidirectional Dijkstra on `G[V∖R]`.
pub struct WeightedHlOracle<'g> {
    graph: &'g WeightedGraph,
    labelling: WeightedHighwayCoverLabelling,
    epoch: u32,
    mark_s: Vec<u32>,
    mark_t: Vec<u32>,
    dist_s: Vec<u32>,
    dist_t: Vec<u32>,
}

impl<'g> WeightedHlOracle<'g> {
    /// Wraps a labelling built over `graph`.
    pub fn new(graph: &'g WeightedGraph, labelling: WeightedHighwayCoverLabelling) -> Self {
        let n = graph.num_vertices();
        WeightedHlOracle {
            graph,
            labelling,
            epoch: 0,
            mark_s: vec![0; n],
            mark_t: vec![0; n],
            dist_s: vec![0; n],
            dist_t: vec![0; n],
        }
    }

    /// The wrapped labelling.
    pub fn labelling(&self) -> &WeightedHighwayCoverLabelling {
        &self.labelling
    }

    /// Exact weighted distance between `s` and `t`.
    pub fn query(&mut self, s: VertexId, t: VertexId) -> Option<u32> {
        if s == t {
            return Some(0);
        }
        let h = self.labelling.highway();
        let bound = self.labelling.upper_bound(s, t);
        if h.is_landmark(s) || h.is_landmark(t) {
            return (bound != INF).then_some(bound);
        }
        let d = self.bounded_bidijkstra(s, t, bound);
        (d != INF).then_some(d)
    }

    /// Bidirectional Dijkstra on the landmark-free subgraph, cut off at
    /// `bound`; returns `min(d_G'(s, t), bound)`.
    fn bounded_bidijkstra(&mut self, s: VertexId, t: VertexId, bound: u32) -> u32 {
        self.epoch += 1;
        let epoch = self.epoch;
        let h = self.labelling.highway();
        let mut heap_s: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
        let mut heap_t: BinaryHeap<Reverse<(u32, VertexId)>> = BinaryHeap::new();
        self.mark_s[s as usize] = epoch;
        self.dist_s[s as usize] = 0;
        heap_s.push(Reverse((0, s)));
        self.mark_t[t as usize] = epoch;
        self.dist_t[t as usize] = 0;
        heap_t.push(Reverse((0, t)));
        let mut best = bound;

        loop {
            let top_s = heap_s.peek().map(|Reverse((d, _))| *d).unwrap_or(INF);
            let top_t = heap_t.peek().map(|Reverse((d, _))| *d).unwrap_or(INF);
            // No path shorter than top_s + top_t remains undiscovered.
            if top_s.saturating_add(top_t) >= best {
                return best;
            }
            let forward = top_s <= top_t;
            let (heap, mark_same, dist_same, mark_other, dist_other) = if forward {
                (&mut heap_s, &mut self.mark_s, &mut self.dist_s, &self.mark_t, &self.dist_t)
            } else {
                (&mut heap_t, &mut self.mark_t, &mut self.dist_t, &self.mark_s, &self.dist_s)
            };
            let Some(Reverse((d, u))) = heap.pop() else {
                return best;
            };
            if d > dist_same[u as usize] {
                continue;
            }
            if mark_other[u as usize] == epoch {
                let cand = d.saturating_add(dist_other[u as usize]);
                if cand < best {
                    best = cand;
                }
            }
            for (v, w) in self.graph.neighbors(u) {
                if h.is_landmark(v) {
                    continue;
                }
                let nd = d.saturating_add(w);
                let vi = v as usize;
                if mark_same[vi] != epoch || nd < dist_same[vi] {
                    mark_same[vi] = epoch;
                    dist_same[vi] = nd;
                    heap.push(Reverse((nd, v)));
                    if mark_other[vi] == epoch {
                        let cand = nd.saturating_add(dist_other[vi]);
                        if cand < best {
                            best = cand;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::traversal::dijkstra_distances;
    use hcl_graph::{generate, WeightedGraphBuilder};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn random_weighted(n: usize, m: usize, max_w: u32, seed: u64) -> WeightedGraph {
        let base = generate::erdos_renyi(n, m, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEEF);
        let mut b = WeightedGraphBuilder::new(n);
        for (u, v) in base.edges() {
            b.add_edge(u, v, rng.random_range(1..=max_w));
        }
        b.build()
    }

    fn top_degree_w(g: &WeightedGraph, k: usize) -> Vec<u32> {
        let mut order: Vec<u32> = (0..g.num_vertices() as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        order.truncate(k);
        order
    }

    #[test]
    fn exact_on_random_weighted_graphs() {
        for seed in 0..4u64 {
            let g = random_weighted(70, 160, 9, seed);
            let landmarks = top_degree_w(&g, 6);
            let labelling = WeightedHighwayCoverLabelling::build(&g, &landmarks).unwrap();
            let mut oracle = WeightedHlOracle::new(&g, labelling);
            for s in (0..70u32).step_by(5) {
                let truth = dijkstra_distances(&g, s);
                for t in 0..70u32 {
                    let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                    assert_eq!(oracle.query(s, t), expect, "seed {seed} {s}->{t}");
                }
            }
        }
    }

    #[test]
    fn unit_weights_match_unweighted_labelling() {
        let base = generate::barabasi_albert(150, 3, 4);
        let mut b = WeightedGraphBuilder::new(base.num_vertices());
        for (u, v) in base.edges() {
            b.add_edge(u, v, 1);
        }
        let wg = b.build();
        let landmarks = hcl_graph::order::top_degree(&base, 8);
        let weighted = WeightedHighwayCoverLabelling::build(&wg, &landmarks).unwrap();
        let (unweighted, _) = crate::HighwayCoverLabelling::build(&base, &landmarks).unwrap();
        // Same entries, same distances, same total size.
        assert_eq!(weighted.total_entries(), unweighted.labels().total_entries());
        for v in base.vertices() {
            let wl: Vec<(u16, u32)> =
                weighted.label(v).iter().map(|e| (e.landmark, e.dist)).collect();
            let ul: Vec<(u16, u32)> =
                unweighted.labels().label(v).iter().map(|e| (e.landmark, e.dist as u32)).collect();
            assert_eq!(wl, ul, "vertex {v}");
        }
    }

    #[test]
    fn minimality_lemma_3_7_weighted() {
        // Entry (r, v) iff no other landmark on any weighted shortest path.
        let g = random_weighted(40, 90, 5, 11);
        let landmarks = top_degree_w(&g, 5);
        let labelling = WeightedHighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let dist: Vec<Vec<u32>> = (0..40u32).map(|v| dijkstra_distances(&g, v)).collect();
        for v in 0..40u32 {
            if labelling.highway().is_landmark(v) {
                assert!(labelling.label(v).is_empty());
                continue;
            }
            for (rank, &r) in landmarks.iter().enumerate() {
                let d_rv = dist[r as usize][v as usize];
                let expected = d_rv != INF
                    && !landmarks.iter().any(|&w| {
                        w != r
                            && w != v
                            && dist[r as usize][w as usize] != INF
                            && dist[w as usize][v as usize] != INF
                            && dist[r as usize][w as usize] + dist[w as usize][v as usize] == d_rv
                    });
                let present = labelling.label(v).iter().any(|e| e.landmark == rank as u16);
                assert_eq!(present, expected, "landmark {r} vertex {v}");
            }
        }
    }

    #[test]
    fn order_independence_weighted() {
        let g = random_weighted(60, 140, 7, 3);
        let landmarks = top_degree_w(&g, 5);
        let a = WeightedHighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut rev = landmarks.clone();
        rev.reverse();
        let b = WeightedHighwayCoverLabelling::build(&g, &rev).unwrap();
        assert_eq!(a.total_entries(), b.total_entries());
    }

    #[test]
    fn disconnected_weighted_graph() {
        let mut b = WeightedGraphBuilder::new(5);
        b.add_edge(0, 1, 4);
        b.add_edge(2, 3, 2);
        let g = b.build();
        let labelling = WeightedHighwayCoverLabelling::build(&g, &[0, 2]).unwrap();
        let mut oracle = WeightedHlOracle::new(&g, labelling);
        assert_eq!(oracle.query(0, 1), Some(4));
        assert_eq!(oracle.query(1, 3), None);
        assert_eq!(oracle.query(4, 4), Some(0));
    }

    #[test]
    fn validation_errors() {
        let mut b = WeightedGraphBuilder::new(3);
        b.add_edge(0, 1, 1);
        let g = b.build();
        assert!(matches!(
            WeightedHighwayCoverLabelling::build(&g, &[5]),
            Err(BuildError::LandmarkOutOfRange { .. })
        ));
        assert!(matches!(
            WeightedHighwayCoverLabelling::build(&g, &[1, 1]),
            Err(BuildError::DuplicateLandmark { .. })
        ));
    }
}
