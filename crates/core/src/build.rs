//! Sequential construction of the highway cover labelling (Algorithm 1).
//!
//! One pruned BFS per landmark. Each BFS maintains two frontiers:
//!
//! * the **labelled** frontier (`Qlabel`): vertices whose shortest paths
//!   from the root are free of other landmarks — their unvisited neighbours
//!   receive label entries;
//! * the **pruned** frontier (`Qprune`): landmarks and vertices with a
//!   landmark on some shortest path from the root — their neighbours are
//!   claimed *without* labels.
//!
//! At every level the pruned frontier expands **first** (mirroring
//! Algorithm 1's queue interleaving), so a vertex reachable at the same
//! depth through both a pruned and a labelled parent is pruned. This yields
//! exactly the semantics of Lemma 3.7: `(r, d)` enters `L(v)` iff **no**
//! shortest `r–v` path contains another landmark. The BFS stops as soon as
//! the labelled frontier empties — typically long before the graph is
//! exhausted, which is where the method's construction-time advantage
//! comes from.

use crate::highway::Highway;
use crate::labels::HighwayLabels;
use crate::BuildError;
use hcl_graph::{CsrGraph, VertexId};
use std::time::{Duration, Instant};

/// Instrumentation returned by the builders.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// Wall-clock construction time.
    pub duration: Duration,
    /// Neighbour examinations across all pruned BFSs (the "ET" counter of
    /// the paper's Figures 3–4).
    pub edges_traversed: u64,
    /// Label entries produced (the "LS" counter).
    pub labels_added: u64,
}

/// A complete highway cover labelling: the highway `H = (R, δH)` plus the
/// minimal label store (Theorem 3.12).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HighwayCoverLabelling {
    highway: Highway,
    labels: HighwayLabels,
}

impl HighwayCoverLabelling {
    /// Builds the labelling sequentially ("HL" in the paper's tables).
    ///
    /// `landmarks` may be in any order; the result is identical for every
    /// ordering (Lemma 3.11), which the tests verify.
    pub fn build(g: &CsrGraph, landmarks: &[VertexId]) -> Result<(Self, BuildStats), BuildError> {
        let start = Instant::now();
        validate_landmarks(g, landmarks)?;
        let mut highway = Highway::new(g.num_vertices(), landmarks);
        let mut worker = PrunedBfsWorker::new(g.num_vertices());
        let mut per_landmark: Vec<Vec<(VertexId, u16)>> = Vec::with_capacity(landmarks.len());
        let mut hw_buf: Vec<(u32, u32)> = Vec::new();
        let mut stats = BuildStats::default();

        for (rank, &root) in landmarks.iter().enumerate() {
            let mut labels_out = Vec::new();
            hw_buf.clear();
            let edges = worker.run(g, rank as u32, root, &highway, &mut labels_out, &mut hw_buf)?;
            stats.edges_traversed += edges;
            stats.labels_added += labels_out.len() as u64;
            for &(other_rank, d) in &hw_buf {
                highway.record(rank as u32, other_rank, d);
            }
            per_landmark.push(labels_out);
        }
        highway.close();
        let labels = assemble_labels(g.num_vertices(), &per_landmark);
        stats.duration = start.elapsed();
        Ok((HighwayCoverLabelling { highway, labels }, stats))
    }

    pub(crate) fn from_parts(highway: Highway, labels: HighwayLabels) -> Self {
        HighwayCoverLabelling { highway, labels }
    }

    /// The highway `H = (R, δH)`.
    #[inline]
    pub fn highway(&self) -> &Highway {
        &self.highway
    }

    /// The per-vertex label store.
    #[inline]
    pub fn labels(&self) -> &HighwayLabels {
        &self.labels
    }

    /// Number of landmarks `|R|`.
    #[inline]
    pub fn num_landmarks(&self) -> usize {
        self.highway.num_landmarks()
    }

    /// Bytes of the queryable index: label entries + offsets + the highway
    /// matrix (excludes the O(n) landmark-rank lookup table, which is a
    /// derivable acceleration structure).
    pub fn index_bytes(&self) -> usize {
        self.labels.memory_bytes() + self.highway.matrix_bytes()
    }
}

pub(crate) fn validate_landmarks(g: &CsrGraph, landmarks: &[VertexId]) -> Result<(), BuildError> {
    if landmarks.len() > u16::MAX as usize {
        return Err(BuildError::TooManyLandmarks { requested: landmarks.len() });
    }
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    for &r in landmarks {
        if (r as usize) >= n {
            return Err(BuildError::LandmarkOutOfRange { landmark: r, n });
        }
        if std::mem::replace(&mut seen[r as usize], true) {
            return Err(BuildError::DuplicateLandmark { landmark: r });
        }
    }
    Ok(())
}

/// Merges per-landmark `(vertex, dist)` outputs into the flat CSR label
/// store (separate rank and dist lanes). Iterating landmarks in rank order
/// keeps every per-vertex list sorted by rank, so queries can merge labels
/// in one pass.
pub(crate) fn assemble_labels(n: usize, per_landmark: &[Vec<(VertexId, u16)>]) -> HighwayLabels {
    let mut counts = vec![0u32; n + 1];
    for batch in per_landmark {
        for &(v, _) in batch {
            counts[v as usize + 1] += 1;
        }
    }
    for i in 1..=n {
        counts[i] += counts[i - 1];
    }
    let offsets = counts;
    let total = offsets[n] as usize;
    let mut ranks = vec![0u16; total];
    let mut dists = vec![0u16; total];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for (rank, batch) in per_landmark.iter().enumerate() {
        for &(v, d) in batch {
            let c = &mut cursor[v as usize];
            ranks[*c as usize] = rank as u16;
            dists[*c as usize] = d;
            *c += 1;
        }
    }
    HighwayLabels::from_parts(offsets, ranks, dists)
}

/// Reusable state for one pruned BFS (Algorithm 1 body). A worker is sized
/// for the graph once and then serves any number of landmarks; the parallel
/// builder gives each thread its own worker.
pub(crate) struct PrunedBfsWorker {
    epoch: u32,
    visited: Vec<u32>,
    labeled: Vec<VertexId>,
    pruned: Vec<VertexId>,
    next_labeled: Vec<VertexId>,
    next_pruned: Vec<VertexId>,
}

impl PrunedBfsWorker {
    pub(crate) fn new(n: usize) -> Self {
        PrunedBfsWorker {
            epoch: 0,
            visited: vec![0; n],
            labeled: Vec::new(),
            pruned: Vec::new(),
            next_labeled: Vec::new(),
            next_pruned: Vec::new(),
        }
    }

    /// Runs the pruned BFS rooted at `root` (whose rank is `root_rank`).
    ///
    /// Appends `(vertex, distance)` label entries to `labels_out`, appends
    /// `(landmark rank, distance)` for every *other* landmark discovered to
    /// `highway_out`, and returns the number of neighbour examinations.
    pub(crate) fn run(
        &mut self,
        g: &CsrGraph,
        root_rank: u32,
        root: VertexId,
        highway: &Highway,
        labels_out: &mut Vec<(VertexId, u16)>,
        highway_out: &mut Vec<(u32, u32)>,
    ) -> Result<u64, BuildError> {
        if self.epoch == u32::MAX {
            self.visited.iter_mut().for_each(|m| *m = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let mut edges = 0u64;

        self.labeled.clear();
        self.pruned.clear();
        self.labeled.push(root);
        self.visited[root as usize] = epoch;

        let mut depth: u32 = 0;
        while !self.labeled.is_empty() {
            let next_depth = depth + 1;
            self.next_labeled.clear();
            self.next_pruned.clear();

            // Pruned frontier expands first: anything it can reach at this
            // level is pruned even if a labelled parent also reaches it
            // (Lemma 3.7: *some* shortest path through a landmark suffices).
            for i in 0..self.pruned.len() {
                let u = self.pruned[i];
                for &v in g.neighbors(u) {
                    edges += 1;
                    if self.visited[v as usize] != epoch {
                        self.visited[v as usize] = epoch;
                        if let Some(rank) = highway.rank(v) {
                            highway_out.push((rank, next_depth));
                        }
                        self.next_pruned.push(v);
                    }
                }
            }
            // Labelled frontier: unvisited landmarks are pruned (and enter
            // the highway); everything else receives a label entry.
            for i in 0..self.labeled.len() {
                let u = self.labeled[i];
                for &v in g.neighbors(u) {
                    edges += 1;
                    if self.visited[v as usize] != epoch {
                        self.visited[v as usize] = epoch;
                        if let Some(rank) = highway.rank(v) {
                            highway_out.push((rank, next_depth));
                            self.next_pruned.push(v);
                        } else {
                            let d16 = u16::try_from(next_depth).map_err(|_| {
                                BuildError::DistanceOverflow {
                                    landmark: root,
                                    vertex: v,
                                    distance: next_depth,
                                }
                            })?;
                            labels_out.push((v, d16));
                            self.next_labeled.push(v);
                        }
                    }
                }
            }
            std::mem::swap(&mut self.labeled, &mut self.next_labeled);
            std::mem::swap(&mut self.pruned, &mut self.next_pruned);
            depth = next_depth;
        }
        // Root-to-root entries are never emitted; `root_rank` documents the
        // caller's bookkeeping and guards against misuse in debug builds.
        debug_assert_eq!(highway.rank(root), Some(root_rank));
        Ok(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixture;
    use hcl_graph::{generate, traversal, INF};

    #[test]
    fn paper_example_labels_match_figure_2c() {
        let g = fixture::paper_graph();
        let landmarks = fixture::paper_landmarks();
        let (hcl, stats) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();

        // Figure 3: the highway cover labelling has LS = 13.
        assert_eq!(hcl.labels().total_entries(), 13);
        assert_eq!(stats.labels_added, 13);

        // Exact per-vertex entries from Figure 2(c).
        for (vertex, landmark, dist) in fixture::paper_expected_labels() {
            let rank = hcl.highway().rank(landmark).unwrap() as u16;
            let label = hcl.labels().label(vertex);
            assert!(
                label.iter().any(|e| e.landmark == rank && e.dist == dist as u16),
                "expected ({landmark},{dist}) in label of {vertex}, got {label:?}"
            );
        }
        // And nothing else.
        assert_eq!(hcl.labels().total_entries(), fixture::paper_expected_labels().len());
        hcl.labels().validate(hcl.highway()).unwrap();
    }

    #[test]
    fn paper_example_highway_distances() {
        let g = fixture::paper_graph();
        let (hcl, _) = HighwayCoverLabelling::build(&g, &fixture::paper_landmarks()).unwrap();
        let h = hcl.highway();
        let r1 = h.rank(fixture::paper_vertex(1)).unwrap();
        let r5 = h.rank(fixture::paper_vertex(5)).unwrap();
        let r9 = h.rank(fixture::paper_vertex(9)).unwrap();
        // Example 4.2: δH(5,1) = 1, δH(9,1) = 1; and d(5,9) = 2.
        assert_eq!(h.distance(r1, r5), 1);
        assert_eq!(h.distance(r1, r9), 1);
        assert_eq!(h.distance(r5, r9), 2);
    }

    #[test]
    fn labels_hold_exact_bfs_distances() {
        let g = generate::barabasi_albert(300, 3, 5);
        let landmarks = hcl_graph::order::top_degree(&g, 8);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        for (rank, &r) in landmarks.iter().enumerate() {
            let truth = traversal::bfs_distances(&g, r);
            for v in g.vertices() {
                for e in hcl.labels().label(v) {
                    if e.landmark == rank as u16 {
                        assert_eq!(e.dist as u32, truth[v as usize], "entry ({r},{v})");
                    }
                }
            }
        }
    }

    #[test]
    fn label_present_iff_no_other_landmark_on_any_shortest_path() {
        // The Lemma 3.7 characterisation, checked by brute force.
        for seed in 0..4u64 {
            let g = generate::erdos_renyi(60, 130, seed);
            let landmarks = hcl_graph::order::top_degree(&g, 5);
            let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
            let dist: Vec<Vec<u32>> =
                (0..g.num_vertices()).map(|v| traversal::bfs_distances(&g, v as u32)).collect();
            for v in g.vertices() {
                if hcl.highway().is_landmark(v) {
                    assert!(hcl.labels().label(v).is_empty());
                    continue;
                }
                for (rank, &r) in landmarks.iter().enumerate() {
                    let d_rv = dist[r as usize][v as usize];
                    let expected = d_rv != INF
                        && !landmarks.iter().any(|&w| {
                            w != r
                                && w != v
                                && dist[r as usize][w as usize] != INF
                                && dist[w as usize][v as usize] != INF
                                && dist[r as usize][w as usize] + dist[w as usize][v as usize]
                                    == d_rv
                        });
                    let present = hcl.labels().label(v).iter().any(|e| e.landmark == rank as u16);
                    assert_eq!(present, expected, "landmark {r} vertex {v} seed {seed}");
                }
            }
        }
    }

    #[test]
    fn order_independence_lemma_3_11() {
        let g = generate::barabasi_albert(200, 3, 9);
        let landmarks = hcl_graph::order::top_degree(&g, 6);
        let (a, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut rev = landmarks.clone();
        rev.reverse();
        let (b, _) = HighwayCoverLabelling::build(&g, &rev).unwrap();
        // Same entries per vertex (ranks differ with the order, so compare
        // resolved landmark vertices).
        for v in g.vertices() {
            let mut ea: Vec<(VertexId, u16)> = a
                .labels()
                .label(v)
                .iter()
                .map(|e| (a.highway().landmark(e.landmark as u32), e.dist))
                .collect();
            let mut eb: Vec<(VertexId, u16)> = b
                .labels()
                .label(v)
                .iter()
                .map(|e| (b.highway().landmark(e.landmark as u32), e.dist))
                .collect();
            ea.sort_unstable();
            eb.sort_unstable();
            assert_eq!(ea, eb, "vertex {v}");
        }
        assert_eq!(a.labels().total_entries(), b.labels().total_entries());
    }

    #[test]
    fn every_connected_nonlandmark_vertex_is_covered() {
        // In a connected graph the closest landmark always labels a vertex.
        let g = generate::watts_strogatz(150, 6, 0.05, 3);
        let landmarks = hcl_graph::order::top_degree(&g, 10);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        for v in g.vertices() {
            if !hcl.highway().is_landmark(v) {
                assert!(!hcl.labels().label(v).is_empty(), "vertex {v} uncovered");
            }
        }
    }

    #[test]
    fn highway_closure_on_path_graph() {
        // Landmarks strung along a path: each pruned BFS stops early, so the
        // far pairs are only recovered by the Floyd–Warshall closure.
        let g = generate::path(9);
        let landmarks = vec![0u32, 4, 8];
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let h = hcl.highway();
        assert_eq!(h.distance(0, 1), 4);
        assert_eq!(h.distance(1, 2), 4);
        assert_eq!(h.distance(0, 2), 8, "recovered transitively");
    }

    #[test]
    fn disconnected_graph_leaves_infinite_highway_pairs() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[0, 3]).unwrap();
        assert_eq!(hcl.highway().distance(0, 1), INF);
        // Each component is still labelled by its own landmark.
        assert!(!hcl.labels().label(2).is_empty());
        assert!(!hcl.labels().label(5).is_empty());
    }

    #[test]
    fn empty_landmark_set_builds_empty_labelling() {
        let g = generate::cycle(5);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[]).unwrap();
        assert_eq!(hcl.num_landmarks(), 0);
        assert_eq!(hcl.labels().total_entries(), 0);
    }

    #[test]
    fn validation_errors() {
        let g = generate::path(4);
        assert!(matches!(
            HighwayCoverLabelling::build(&g, &[9]),
            Err(BuildError::LandmarkOutOfRange { .. })
        ));
        assert!(matches!(
            HighwayCoverLabelling::build(&g, &[1, 1]),
            Err(BuildError::DuplicateLandmark { .. })
        ));
    }

    #[test]
    fn distance_overflow_reported() {
        // A path longer than u16::MAX with a landmark at one end.
        let g = generate::path(70_000);
        assert!(matches!(
            HighwayCoverLabelling::build(&g, &[0]),
            Err(BuildError::DistanceOverflow { .. })
        ));
    }

    #[test]
    fn single_landmark_labels_whole_component() {
        let g = generate::random_tree(100, 4);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[0]).unwrap();
        assert_eq!(hcl.labels().total_entries(), 99);
    }
}
