//! Incremental maintenance of a highway cover labelling under single edge
//! insertions and deletions — the `O(affected)` alternative to a full
//! rebuild that the `UPDATE ADD/DEL` wire verbs ride.
//!
//! # Why this is tractable for highway cover labels
//!
//! Full 2-hop labellings (PLL and friends) interleave pruning across *all*
//! roots, so one edge edit can invalidate label entries of vertices far
//! from the edit in ways that are expensive to even detect. The highway
//! cover labelling is different in two load-bearing ways:
//!
//! 1. **Labels are a closed-form function of distances.** By Lemma 3.7 the
//!    entry `(r, d(r, v))` is in `L(v)` **iff** `d(r, v)` is finite and no
//!    other landmark `w` satisfies `d(r, w) + d(w, v) = d(r, v)`. So given
//!    the new landmark→vertex distances, every label row can be recomputed
//!    locally — no global pruned BFS order to replay.
//! 2. **Old distances are queryable in `O(|L(v)|)`.** Corollary 3.8
//!    ([`HighwayCoverLabelling::bound_from_landmark`]) returns the exact
//!    old distance from any landmark to any vertex, which is precisely the
//!    `d_old` oracle the classic incremental-BFS algorithms assume they
//!    have in an `O(n)` array — here we get it for free from the index
//!    itself, so an update never allocates per-landmark distance arrays.
//!
//! # Algorithm
//!
//! Per landmark `r` (rank `i`), [`apply_edit`] computes the **affected
//! map** `aff[i]: vertex → new distance`, containing exactly the vertices
//! whose distance from `r` changed:
//!
//! * **Insert `{u, v}`** — distances only decrease. Order the endpoints so
//!   `d_old(a) ≤ d_old(b)`; if `d_old(a) + 1 ≥ d_old(b)` nothing changes.
//!   Otherwise a FIFO BFS from `b` over the *new* graph propagates the
//!   improvement `c = d_old(a) + 1` outward, pruning at any vertex that
//!   does not improve (its neighbours then satisfy
//!   `d_old(y) ≤ d_old(x) + 1` via the old graph, so they cannot improve
//!   through it either).
//! * **Delete `{u, v}`** — distances only increase. If
//!   `|d_old(u) − d_old(v)| ≠ 1` the edge was on no shortest path from `r`
//!   and nothing changes. Otherwise the deeper endpoint seeds an
//!   *invalidate-and-repair* pass over the affected cone: a worklist
//!   fixpoint marks `x` affected iff it has no unaffected parent (a
//!   neighbour `y` in the new graph with `d_old(y) = d_old(x) − 1`); when a
//!   vertex joins the affected set its children re-enter the worklist.
//!   Repair then runs a lazy-deletion Dijkstra *inside* the affected set,
//!   seeded from the unaffected boundary (`d_old(y) + 1` over unaffected
//!   neighbours `y`); vertices the deletion disconnects end at `INF`.
//!
//! The new highway matrix is assembled from the affected maps (landmark
//! columns) and re-closed; if **any** landmark pair moved, every label row
//! is re-derived (the Lemma 3.7 cover test reads `d(r, w)` terms, so rows
//! of vertices with *unchanged* distances can still flip — correctness
//! over cleverness here), otherwise only vertices in some affected map
//! are. Either way each row costs `O(|L_old| · |R| + |R|²)` plain array
//! ops, far below a rebuild's per-vertex BFS share, and clean rows are
//! copied lane-wise.
//!
//! [`PairFilter`] is the precise cache story: two BFS passes from the edit
//! endpoints classify every `(s, t)` pair by whether its cached distance
//! is still exact, so the serving layer retags surviving entries to the
//! new epoch instead of clearing the cache (see
//! `hcl-server`'s `ShardedCache::retag`).

use crate::build::{assemble_labels, HighwayCoverLabelling};
use crate::highway::Highway;
use crate::sparse::SparseView;
use hcl_graph::{traversal, CsrGraph, VertexId, INF};
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// One edge edit, in original vertex ids. Edges are undirected; the
/// endpoint order carries no meaning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeEdit {
    /// Insert the edge `{u, v}` (must not already exist).
    Add(VertexId, VertexId),
    /// Delete the edge `{u, v}` (must exist).
    Delete(VertexId, VertexId),
}

impl EdgeEdit {
    /// The edit's endpoints `(u, v)` as given.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            EdgeEdit::Add(u, v) | EdgeEdit::Delete(u, v) => (u, v),
        }
    }

    /// True for [`EdgeEdit::Add`].
    #[inline]
    pub fn is_add(self) -> bool {
        matches!(self, EdgeEdit::Add(..))
    }
}

impl std::fmt::Display for EdgeEdit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeEdit::Add(u, v) => write!(f, "ADD {u} {v}"),
            EdgeEdit::Delete(u, v) => write!(f, "DEL {u} {v}"),
        }
    }
}

/// Errors from [`apply_edit`]. Every error leaves the inputs untouched —
/// callers keep serving the old generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An endpoint is not a vertex of the graph.
    VertexOutOfRange { vertex: VertexId, n: usize },
    /// Both endpoints are the same vertex.
    SelfLoop(VertexId),
    /// `ADD` of an edge that already exists.
    EdgeExists(VertexId, VertexId),
    /// `DEL` of an edge that does not exist.
    EdgeMissing(VertexId, VertexId),
    /// A new label distance exceeded the 16-bit lane range (possible only
    /// on path-like adversarial graphs, same bound as at build time).
    DistanceOverflow { vertex: VertexId, distance: u32 },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for graph with {n} vertices")
            }
            UpdateError::SelfLoop(v) => write!(f, "self-loop edit on vertex {v}"),
            UpdateError::EdgeExists(u, v) => write!(f, "edge {{{u}, {v}}} already exists"),
            UpdateError::EdgeMissing(u, v) => write!(f, "edge {{{u}, {v}}} does not exist"),
            UpdateError::DistanceOverflow { vertex, distance } => write!(
                f,
                "updated distance {distance} to vertex {vertex} exceeds the 16-bit label range"
            ),
        }
    }
}

impl std::error::Error for UpdateError {}

/// The new index generation produced by [`apply_edit`]: a consistent
/// (graph, labelling, sparse view) triple plus the bookkeeping the serving
/// layer surfaces as counters.
#[derive(Debug)]
pub struct UpdateResult {
    /// The edited graph.
    pub graph: CsrGraph,
    /// Labelling exactly equal (per vertex, per entry) to a from-scratch
    /// build over `graph` — the differential test suite holds this to
    /// account.
    pub labelling: HighwayCoverLabelling,
    /// The patched query view `G[V∖R]` (degree order inherited, not
    /// re-sorted — a pure layout staleness the next full build clears).
    pub sparse: SparseView,
    /// Distinct vertices whose distance to at least one landmark changed.
    pub affected_vertices: usize,
    /// Whether any landmark-to-landmark distance moved (forces a full
    /// label sweep instead of an affected-only one).
    pub highway_changed: bool,
}

/// Applies one edge edit incrementally: new graph, new labelling, patched
/// sparse view — without re-running any full-graph BFS. Errors are
/// complete no-ops.
pub fn apply_edit(
    graph: &CsrGraph,
    labelling: &HighwayCoverLabelling,
    sparse: &SparseView,
    edit: EdgeEdit,
) -> Result<UpdateResult, UpdateError> {
    let n = graph.num_vertices();
    let (u, v) = edit.endpoints();
    for ep in [u, v] {
        if ep as usize >= n {
            return Err(UpdateError::VertexOutOfRange { vertex: ep, n });
        }
    }
    if u == v {
        return Err(UpdateError::SelfLoop(u));
    }
    let new_graph = match edit {
        EdgeEdit::Add(..) => graph.with_edge(u, v).ok_or(UpdateError::EdgeExists(u, v))?,
        EdgeEdit::Delete(..) => graph.without_edge(u, v).ok_or(UpdateError::EdgeMissing(u, v))?,
    };

    let old_highway = labelling.highway();
    let num_landmarks = old_highway.num_landmarks();

    // Phase 1: per-landmark affected maps (vertex → new distance).
    let affected: Vec<HashMap<VertexId, u32>> = (0..num_landmarks as u32)
        .map(|rank| match edit {
            EdgeEdit::Add(..) => affected_insert(&new_graph, labelling, rank, u, v),
            EdgeEdit::Delete(..) => affected_delete(&new_graph, labelling, rank, u, v),
        })
        .collect();
    let mut touched = std::collections::HashSet::new();
    for aff in &affected {
        touched.extend(aff.keys().copied());
    }

    // Phase 2: new highway matrix. Column j of landmark i's distances comes
    // from aff[i] where present, the old matrix otherwise; re-closing is a
    // no-op on the exact metric but keeps the invariant machine-checked.
    let mut new_highway = Highway::new(n, old_highway.landmarks());
    let mut highway_changed = false;
    for i in 0..num_landmarks as u32 {
        for j in (i + 1)..num_landmarks as u32 {
            let old = old_highway.distance(i, j);
            let d = match affected[i as usize].get(&old_highway.landmark(j)) {
                Some(&d) => d,
                None => old,
            };
            highway_changed |= d != old;
            if d != INF {
                new_highway.record(i, j, d);
            }
        }
    }
    new_highway.close();

    // Phase 3: re-derive label rows. A row depends on d(r_i, x) for all i
    // *and* on the landmark matrix (the Lemma 3.7 cover test), so a highway
    // change dirties every row; otherwise only touched vertices — and the
    // clean rows are spliced over lane-wise instead of re-pushed entry by
    // entry, keeping the label cost `O(n)` memcpy + `O(touched)` work.
    let old_labels = labelling.labels();
    let mut dvec = vec![INF; num_landmarks];
    let mut row_buf: Vec<(u32, u32)> = Vec::new();
    let new_labels = if highway_changed {
        let mut per_landmark: Vec<Vec<(VertexId, u16)>> = vec![Vec::new(); num_landmarks];
        for x in 0..n as VertexId {
            if new_highway.is_landmark(x) {
                continue;
            }
            new_label_row(labelling, &affected, &new_highway, x, &mut dvec, &mut row_buf);
            for &(rank, d) in &row_buf {
                let d16 = u16::try_from(d)
                    .map_err(|_| UpdateError::DistanceOverflow { vertex: x, distance: d })?;
                per_landmark[rank as usize].push((x, d16));
            }
        }
        assemble_labels(n, &per_landmark)
    } else {
        // A touched landmark would mean a moved landmark-landmark distance,
        // i.e. a highway change — so every touched vertex has a label row.
        let mut order: Vec<VertexId> = touched.iter().copied().collect();
        order.sort_unstable();
        let mut rows: Vec<(VertexId, Vec<(u16, u16)>)> = Vec::with_capacity(order.len());
        for x in order {
            debug_assert!(!new_highway.is_landmark(x), "touched landmark without highway change");
            new_label_row(labelling, &affected, &new_highway, x, &mut dvec, &mut row_buf);
            let mut row = Vec::with_capacity(row_buf.len());
            for &(rank, d) in &row_buf {
                let d16 = u16::try_from(d)
                    .map_err(|_| UpdateError::DistanceOverflow { vertex: x, distance: d })?;
                row.push((rank as u16, d16));
            }
            rows.push((x, row));
        }
        old_labels.patched(&rows)
    };
    debug_assert!(new_labels.validate(&new_highway).is_ok());

    // Phase 4: patch the sparse view (landmark set is unchanged, so an
    // accepted graph splice can only fail here by invariant breakage).
    let new_sparse = sparse
        .with_edit(u, v, edit.is_add(), &new_highway)
        .expect("sparse view out of sync with graph");

    Ok(UpdateResult {
        graph: new_graph,
        labelling: HighwayCoverLabelling::from_parts(new_highway, new_labels),
        sparse: new_sparse,
        affected_vertices: touched.len(),
        highway_changed,
    })
}

/// Recomputes the Lemma 3.7 label row of non-landmark vertex `x` into
/// `row_buf` as `(rank, new_dist)` pairs in ascending rank order.
///
/// `dvec` is scratch of length `|R|`; on return `dvec[i]` holds the *new*
/// exact distance `d(r_i, x)`. The old distances are reconstructed in one
/// pass over the old label (each old entry `(e, d_e)` relaxes every
/// landmark through the *old* matrix row of `e` — Corollary 3.8), then the
/// affected maps overlay the changed ones.
fn new_label_row(
    labelling: &HighwayCoverLabelling,
    affected: &[HashMap<VertexId, u32>],
    new_highway: &Highway,
    x: VertexId,
    dvec: &mut [u32],
    row_buf: &mut Vec<(u32, u32)>,
) {
    let old_highway = labelling.highway();
    dvec.fill(INF);
    for e in labelling.labels().label(x) {
        let row = old_highway.row(e.landmark as u32);
        let d_e = e.dist as u32;
        for (slot, &via) in dvec.iter_mut().zip(row) {
            if via != INF && via + d_e < *slot {
                *slot = via + d_e;
            }
        }
    }
    for (slot, aff) in dvec.iter_mut().zip(affected) {
        if let Some(&d) = aff.get(&x) {
            *slot = d;
        }
    }
    row_buf.clear();
    for (i, &d) in dvec.iter().enumerate() {
        if d == INF {
            continue;
        }
        let row = new_highway.row(i as u32);
        let covered = dvec
            .iter()
            .zip(row)
            .enumerate()
            .any(|(j, (&dj, &via))| j != i && dj != INF && via != INF && via + dj == d);
        if !covered {
            row_buf.push((i as u32, d));
        }
    }
}

/// Affected map for an **insertion**, for the landmark with rank `rank`:
/// exactly the vertices whose distance decreased, with their new values.
///
/// Distance-decrease propagation: order endpoints so `d_old(a) ≤ d_old(b)`
/// (INF sorts last); the only new paths run `r ⇝ a → b ⇝ x`, so a FIFO BFS
/// from `b` at candidate `d_old(a) + 1` relaxes outward over the new
/// graph, stopping at any vertex the candidate does not improve: its old
/// adjacency already gave every neighbour `d_old(y) ≤ d_old(x) + 1`.
fn affected_insert(
    new_graph: &CsrGraph,
    labelling: &HighwayCoverLabelling,
    rank: u32,
    u: VertexId,
    v: VertexId,
) -> HashMap<VertexId, u32> {
    let du = labelling.bound_from_landmark(rank, u);
    let dv = labelling.bound_from_landmark(rank, v);
    let mut aff = HashMap::new();
    let (da, b, db) = if du <= dv { (du, v, dv) } else { (dv, u, du) };
    if da == INF || da + 1 >= db {
        return aff;
    }
    let mut queue = VecDeque::new();
    aff.insert(b, da + 1);
    queue.push_back((b, da + 1));
    while let Some((x, c)) = queue.pop_front() {
        // FIFO over unit steps: the first candidate recorded for a vertex
        // is its minimum, so no entry is ever improved after insertion.
        let next = c + 1;
        for &y in new_graph.neighbors(x) {
            let cur = match aff.get(&y) {
                Some(&d) => d,
                None => labelling.bound_from_landmark(rank, y),
            };
            if next < cur {
                aff.insert(y, next);
                queue.push_back((y, next));
            }
        }
    }
    aff
}

/// Affected map for a **deletion**, for the landmark with rank `rank`:
/// exactly the vertices whose distance increased (possibly to `INF`), with
/// their new values.
///
/// Invalidate: a worklist fixpoint grows the affected set `A` from the
/// deeper endpoint — `x ∈ A` iff `x` has no *unaffected parent*, a
/// neighbour `y` in the new graph with `d_old(y) = d_old(x) − 1`. (By
/// induction on `d_old`: such a `y` keeps its distance, so `x` keeps a
/// shortest path; conversely every old shortest path into an `A` member's
/// parents is severed.) Repair: lazy-deletion Dijkstra inside `A`, seeded
/// with `min(d_old(y) + 1)` over each member's unaffected neighbours.
fn affected_delete(
    new_graph: &CsrGraph,
    labelling: &HighwayCoverLabelling,
    rank: u32,
    u: VertexId,
    v: VertexId,
) -> HashMap<VertexId, u32> {
    let du = labelling.bound_from_landmark(rank, u);
    let dv = labelling.bound_from_landmark(rank, v);
    // An edge joins levels at most one apart; it lay on a shortest path
    // from the landmark only if exactly one apart.
    if du == INF || dv == INF || du.abs_diff(dv) != 1 {
        return HashMap::new();
    }
    let seed = if du > dv { u } else { v };

    // Invalidate. `old_dist` memoises the Corollary 3.8 oracle for every
    // vertex the fixpoint inspects.
    let mut old_dist: HashMap<VertexId, u32> = HashMap::new();
    let d_old = |x: VertexId, memo: &mut HashMap<VertexId, u32>| -> u32 {
        match memo.entry(x) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(slot) => *slot.insert(labelling.bound_from_landmark(rank, x)),
        }
    };
    let mut in_a: HashMap<VertexId, bool> = HashMap::new();
    let mut worklist = VecDeque::from([seed]);
    while let Some(x) = worklist.pop_front() {
        if in_a.get(&x) == Some(&true) {
            continue;
        }
        let dx = d_old(x, &mut old_dist);
        if dx == 0 || dx == INF {
            continue; // the landmark itself, or never reachable
        }
        let has_parent = new_graph
            .neighbors(x)
            .iter()
            .any(|&y| in_a.get(&y) != Some(&true) && d_old(y, &mut old_dist) == dx - 1);
        if has_parent {
            in_a.insert(x, false);
            continue;
        }
        in_a.insert(x, true);
        for &y in new_graph.neighbors(x) {
            // Children of x (and only same-or-deeper levels can depend on
            // it) must be re-examined now that x joined A.
            if d_old(y, &mut old_dist) == dx + 1 && in_a.get(&y) != Some(&true) {
                worklist.push_back(y);
            }
        }
    }

    // Repair: Dijkstra restricted to A with boundary seeds. Distances stay
    // unit, but seeds start at different depths, hence the heap.
    let mut newd: HashMap<VertexId, u32> = HashMap::new();
    let mut heap: BinaryHeap<std::cmp::Reverse<(u32, VertexId)>> = BinaryHeap::new();
    for (&x, &is_affected) in &in_a {
        if !is_affected {
            continue;
        }
        let mut base = INF;
        for &y in new_graph.neighbors(x) {
            if in_a.get(&y) == Some(&true) {
                continue;
            }
            let dy = d_old(y, &mut old_dist);
            if dy != INF && dy + 1 < base {
                base = dy + 1;
            }
        }
        newd.insert(x, base);
        if base != INF {
            heap.push(std::cmp::Reverse((base, x)));
        }
    }
    while let Some(std::cmp::Reverse((d, x))) = heap.pop() {
        if newd.get(&x).is_none_or(|&cur| d > cur) {
            continue;
        }
        for &y in new_graph.neighbors(x) {
            if in_a.get(&y) != Some(&true) {
                continue;
            }
            let cand = d + 1;
            if newd.get(&y).is_none_or(|&cur| cand < cur) {
                newd.insert(y, cand);
                heap.push(std::cmp::Reverse((cand, y)));
            }
        }
    }
    // Every member of A strictly increased (the fixpoint is exact), so the
    // whole map is the affected map — including vertices now at INF.
    newd
}

/// Classifies cached `(s, t)` answers across one edge edit: **exactly**
/// which pairs' distances are untouched, via two BFS passes from the edit
/// endpoints.
///
/// An edit `{u, v}` changes `d(s, t)` only if some new/old shortest path
/// runs through the edge, i.e. only if the *through-distance*
/// `min(d(s,u) + 1 + d(v,t), d(s,v) + 1 + d(u,t))` competes with the
/// cached value. Comparing against distances measured on the **new** graph
/// for an insert (can the new edge beat the cache?) and the **old** graph
/// for a delete (did the removed edge carry the cache?) makes the test
/// exact for inserts and a sound over-approximation for deletes (a pair
/// with an equal-length alternative path is invalidated unnecessarily —
/// never the reverse).
///
/// Endpoint-affected-set heuristics are *not* sound here: on a star graph
/// whose hub is the only landmark, a leaf-leaf insert changes that pair's
/// distance from 2 to 1 while every landmark-affected set is empty.
#[derive(Debug)]
pub struct PairFilter {
    du: Vec<u32>,
    dv: Vec<u32>,
    add: bool,
}

impl PairFilter {
    /// Builds the filter for `edit` taking `old_graph` to `new_graph`
    /// (two `O(n + m)` BFS passes; amortised against the cache it saves).
    pub fn for_edit(old_graph: &CsrGraph, new_graph: &CsrGraph, edit: EdgeEdit) -> PairFilter {
        let (u, v) = edit.endpoints();
        let base = if edit.is_add() { new_graph } else { old_graph };
        PairFilter {
            du: traversal::bfs_distances(base, u),
            dv: traversal::bfs_distances(base, v),
            add: edit.is_add(),
        }
    }

    /// Whether the cached answer for `(s, t)` (`None` = unreachable) is
    /// still exact after the edit.
    pub fn keeps(&self, s: VertexId, t: VertexId, cached: Option<u32>) -> bool {
        let (s, t) = (s as usize, t as usize);
        let leg = |a: u32, b: u32| -> u32 {
            if a == INF || b == INF {
                INF
            } else {
                a + 1 + b
            }
        };
        let through = leg(self.du[s], self.dv[t]).min(leg(self.dv[s], self.du[t]));
        match (self.add, cached) {
            // Insert can only shorten; the cache survives unless the new
            // edge offers a strictly better (or first-ever) route.
            (true, Some(d)) => through >= d,
            (true, None) => through == INF,
            // Delete can only lengthen; a cached distance survives iff no
            // old shortest path crossed the edge.
            (false, Some(d)) => through != d,
            (false, None) => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryContext;
    use hcl_graph::generate;

    fn build_all(g: &CsrGraph, landmarks: &[VertexId]) -> (HighwayCoverLabelling, SparseView) {
        let (hcl, _) = HighwayCoverLabelling::build(g, landmarks).unwrap();
        let sparse = SparseView::build(g, hcl.highway());
        (hcl, sparse)
    }

    /// The differential oracle the whole module answers to: incremental
    /// result ≡ from-scratch rebuild, label-for-label.
    fn assert_matches_rebuild(result: &UpdateResult, landmarks: &[VertexId]) {
        let (fresh, _) = HighwayCoverLabelling::build(&result.graph, landmarks).unwrap();
        assert_eq!(
            result.labelling.highway().landmarks(),
            fresh.highway().landmarks(),
            "landmark set must be preserved"
        );
        for i in 0..fresh.num_landmarks() as u32 {
            assert_eq!(
                result.labelling.highway().row(i),
                fresh.highway().row(i),
                "highway row {i}"
            );
        }
        for x in 0..result.graph.num_vertices() as VertexId {
            assert_eq!(
                result.labelling.labels().label(x).to_vec(),
                fresh.labels().label(x).to_vec(),
                "label of vertex {x}"
            );
        }
        // And the patched sparse view answers queries exactly.
        let mut ctx = QueryContext::new(result.graph.num_vertices());
        for s in (0..result.graph.num_vertices() as VertexId).step_by(7) {
            let truth = traversal::bfs_distances(&result.graph, s);
            for t in (0..result.graph.num_vertices() as VertexId).step_by(5) {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(
                    result.labelling.distance_sparse(&result.sparse, &mut ctx, s, t),
                    expect,
                    "query {s}->{t}"
                );
            }
        }
    }

    #[test]
    fn insert_matches_rebuild_on_ba_graph() {
        let g = generate::barabasi_albert(150, 3, 11);
        let landmarks = hcl_graph::order::top_degree(&g, 6);
        let (hcl, sparse) = build_all(&g, &landmarks);
        // A far pair: guaranteed absent (BA attaches by preferential ids).
        let (u, v) = (148u32, 149u32);
        let (u, v) = if g.has_edge(u, v) { (140, 149) } else { (u, v) };
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(u, v)).unwrap();
        assert!(r.graph.has_edge(u, v));
        assert_matches_rebuild(&r, &landmarks);
    }

    #[test]
    fn delete_matches_rebuild_on_ba_graph() {
        let g = generate::barabasi_albert(150, 3, 13);
        let landmarks = hcl_graph::order::top_degree(&g, 6);
        let (hcl, sparse) = build_all(&g, &landmarks);
        let (u, v) = g.edges().nth(g.num_edges() / 2).unwrap();
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Delete(u, v)).unwrap();
        assert!(!r.graph.has_edge(u, v));
        assert_matches_rebuild(&r, &landmarks);
    }

    #[test]
    fn landmark_incident_edits_match_rebuild() {
        let g = generate::barabasi_albert(120, 3, 5);
        let landmarks = hcl_graph::order::top_degree(&g, 5);
        let (hcl, sparse) = build_all(&g, &landmarks);
        let lm = landmarks[0];
        let other = (0..120u32).find(|&w| w != lm && !g.has_edge(lm, w)).unwrap();
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(lm, other)).unwrap();
        assert_matches_rebuild(&r, &landmarks);
        // And delete an existing landmark edge from the updated state.
        let nbr = r.graph.neighbors(lm)[0];
        let r2 = apply_edit(&r.graph, &r.labelling, &r.sparse, EdgeEdit::Delete(lm, nbr)).unwrap();
        assert_matches_rebuild(&r2, &landmarks);
    }

    #[test]
    fn disconnecting_delete_matches_rebuild() {
        // A pendant path hung off a cycle: deleting the bridge disconnects
        // the tail, driving repaired distances to INF.
        let mut edges: Vec<(u32, u32)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        edges.extend([(0, 8), (8, 9), (9, 10)]);
        let g = CsrGraph::from_edges(11, &edges);
        let landmarks = vec![0u32, 4];
        let (hcl, sparse) = build_all(&g, &landmarks);
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Delete(0, 8)).unwrap();
        assert_matches_rebuild(&r, &landmarks);
        assert!(r.affected_vertices >= 3, "tail vertices 8..=10 all lose their distances");
    }

    #[test]
    fn connecting_insert_across_components_matches_rebuild() {
        let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]);
        let landmarks = vec![1u32, 5];
        let (hcl, sparse) = build_all(&g, &landmarks);
        assert_eq!(hcl.highway().distance(0, 1), INF);
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(3, 4)).unwrap();
        assert!(r.highway_changed, "components joined: landmark pair becomes finite");
        assert_matches_rebuild(&r, &landmarks);
    }

    #[test]
    fn highway_changing_delete_matches_rebuild() {
        // Landmarks at the ends of a path: deleting the middle edge splits
        // them, so the highway pair goes back to INF.
        let g = generate::path(7);
        let landmarks = vec![0u32, 6];
        let (hcl, sparse) = build_all(&g, &landmarks);
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Delete(3, 4)).unwrap();
        assert!(r.highway_changed);
        assert_eq!(r.labelling.highway().distance(0, 1), INF);
        assert_matches_rebuild(&r, &landmarks);
    }

    #[test]
    fn edit_script_stays_equivalent_across_steps() {
        // A short interleaved ADD/DEL script, incrementally chained.
        let g = generate::erdos_renyi(60, 120, 17);
        let landmarks = hcl_graph::order::top_degree(&g, 5);
        let (hcl, sparse) = build_all(&g, &landmarks);
        let (mut graph, mut hcl, mut sparse) = (g, hcl, sparse);
        for step in 0..12u32 {
            let edit = if step % 3 == 2 {
                let (u, v) = graph.edges().nth((step as usize * 7) % graph.num_edges()).unwrap();
                EdgeEdit::Delete(u, v)
            } else {
                let mut pick = None;
                'outer: for a in 0..60u32 {
                    for b in (a + 1)..60u32 {
                        let (a, b) = ((a + step * 11) % 60, (b + step * 5) % 60);
                        if a != b && !graph.has_edge(a, b) {
                            pick = Some((a, b));
                            break 'outer;
                        }
                    }
                }
                let (a, b) = pick.unwrap();
                EdgeEdit::Add(a, b)
            };
            let r = apply_edit(&graph, &hcl, &sparse, edit).unwrap();
            assert_matches_rebuild(&r, &landmarks);
            graph = r.graph;
            hcl = r.labelling;
            sparse = r.sparse;
        }
    }

    #[test]
    fn validation_rejects_bad_edits() {
        let g = generate::path(5);
        let landmarks = vec![0u32];
        let (hcl, sparse) = build_all(&g, &landmarks);
        assert!(matches!(
            apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(1, 1)),
            Err(UpdateError::SelfLoop(1))
        ));
        assert!(matches!(
            apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(0, 9)),
            Err(UpdateError::VertexOutOfRange { vertex: 9, .. })
        ));
        assert!(matches!(
            apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(0, 1)),
            Err(UpdateError::EdgeExists(0, 1))
        ));
        assert!(matches!(
            apply_edit(&g, &hcl, &sparse, EdgeEdit::Delete(0, 3)),
            Err(UpdateError::EdgeMissing(0, 3))
        ));
    }

    #[test]
    fn no_op_edits_report_zero_affected() {
        // A chord between two vertices already at equal depth from every
        // landmark moves nothing.
        let g = generate::cycle(8);
        let landmarks = vec![0u32];
        let (hcl, sparse) = build_all(&g, &landmarks);
        // cycle(8): vertices 3 and 5 are both at distance 3 from 0.
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(3, 5)).unwrap();
        assert_eq!(r.affected_vertices, 0);
        assert!(!r.highway_changed);
        assert_matches_rebuild(&r, &landmarks);
    }

    #[test]
    fn pair_filter_is_exact_for_inserts_and_sound_for_deletes() {
        for seed in 0..3u64 {
            let g = generate::erdos_renyi(40, 70, seed);
            let (u, v) = {
                let mut pick = (0, 1);
                'outer: for a in 0..40u32 {
                    for b in (a + 1)..40u32 {
                        if !g.has_edge(a, b) {
                            pick = (a, b);
                            break 'outer;
                        }
                    }
                }
                pick
            };
            let added = g.with_edge(u, v).unwrap();
            let filter = PairFilter::for_edit(&g, &added, EdgeEdit::Add(u, v));
            for s in 0..40u32 {
                let old_row = traversal::bfs_distances(&g, s);
                let new_row = traversal::bfs_distances(&added, s);
                for t in 0..40u32 {
                    let cached = (old_row[t as usize] != INF).then_some(old_row[t as usize]);
                    let still_exact = old_row[t as usize] == new_row[t as usize];
                    // Insert classification is exact both ways.
                    assert_eq!(filter.keeps(s, t, cached), still_exact, "ADD {s}->{t}");
                }
            }
            // Deletion: soundness (never keep a changed pair).
            let (du, dv) = g.edges().next().unwrap();
            let removed = g.without_edge(du, dv).unwrap();
            let filter = PairFilter::for_edit(&g, &removed, EdgeEdit::Delete(du, dv));
            for s in 0..40u32 {
                let old_row = traversal::bfs_distances(&g, s);
                let new_row = traversal::bfs_distances(&removed, s);
                for t in 0..40u32 {
                    let cached = (old_row[t as usize] != INF).then_some(old_row[t as usize]);
                    if filter.keeps(s, t, cached) {
                        assert_eq!(
                            old_row[t as usize], new_row[t as usize],
                            "DEL kept a changed pair {s}->{t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn pair_filter_catches_the_star_counterexample() {
        // Hub 0 is the only landmark; adding leaf-leaf edge {1, 2} changes
        // d(1, 2) from 2 to 1 while every landmark-affected set is empty.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let landmarks = vec![0u32];
        let (hcl, sparse) = build_all(&g, &landmarks);
        let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Add(1, 2)).unwrap();
        assert_eq!(r.affected_vertices, 0, "no landmark distance moves");
        let filter = PairFilter::for_edit(&g, &r.graph, EdgeEdit::Add(1, 2));
        assert!(!filter.keeps(1, 2, Some(2)), "the 2->1 pair must be invalidated");
        assert!(filter.keeps(3, 4, Some(2)), "untouched pairs survive");
        assert_matches_rebuild(&r, &landmarks);
    }
}
