//! Highway cover distance labelling — the primary contribution of
//! *"A Highly Scalable Labelling Approach for Exact Distance Queries in
//! Complex Networks"* (Farhan, Wang, Lin, McKay — EDBT 2019).
//!
//! # Overview
//!
//! Given an undirected graph `G` and a small set of high-degree *landmarks*
//! `R`, the method precomputes:
//!
//! * a [`highway::Highway`]: the exact pairwise distances between
//!   landmarks, and
//! * a [`labels::HighwayLabels`] store: for each non-landmark
//!   vertex `v`, the entry `(r, d(r, v))` for exactly those landmarks `r`
//!   with no other landmark on any shortest `r–v` path (Lemma 3.7). This
//!   labelling is *minimal* among all labellings satisfying the
//!   highway-cover property (Theorem 3.12) and independent of landmark
//!   order (Lemma 3.11).
//!
//! A query `d(s, t)` first computes the upper bound
//! `d⊤ = min δL(ri, s) + δH(ri, rj) + δL(rj, t)` (Equation 4, with the
//! Lemma 5.1 optimisation), which is exact whenever some shortest path
//! crosses a landmark, then closes the gap with a distance-bounded
//! bidirectional BFS on the sparsified graph `G[V∖R]` (Algorithm 2). The
//! oracle front-ends precompute `G[V∖R]` once as a [`sparse::SparseView`],
//! so the search traverses a plain CSR with no per-edge landmark filtering.
//!
//! # Quick start
//!
//! ```
//! use hcl_graph::generate;
//! use hcl_core::landmarks::LandmarkStrategy;
//! use hcl_core::{HighwayCoverLabelling, HlOracle};
//! use hcl_graph::DistanceOracle;
//!
//! let g = generate::barabasi_albert(1_000, 4, 7);
//! let landmarks = LandmarkStrategy::TopDegree(16).select(&g);
//! let (labelling, stats) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
//! println!("built {} label entries in {:?}", labelling.labels().total_entries(), stats.duration);
//!
//! let mut oracle = HlOracle::new(&g, labelling);
//! let d = oracle.distance(3, 977);
//! assert!(d.is_some());
//! ```

pub mod build;
pub mod epoch;
pub mod fault;
pub mod fixture;
pub mod highway;
pub mod io;
pub mod labels;
pub mod landmarks;
pub mod parallel;
pub mod partition;
pub mod query;
pub mod shared;
pub mod sparse;
pub mod storage;
#[cfg(feature = "testing")]
pub mod testing;
pub mod update;
pub mod weighted;

pub use build::{BuildStats, HighwayCoverLabelling};
pub use epoch::{EpochCell, OracleEpoch};
pub use highway::Highway;
pub use labels::{HighwayLabels, LabelEntry};
pub use partition::{PartitionMap, PartitionStrategy, ShardRoute};
pub use query::{HlOracle, QueryContext};
pub use shared::{ContextPool, PooledContext, SharedOracle};
pub use sparse::SparseView;
pub use storage::{LabelStorage, MemIndex, QueryPhases, SparseNeighbors};
pub use update::{EdgeEdit, PairFilter, UpdateError, UpdateResult};
pub use weighted::{WeightedHighwayCoverLabelling, WeightedHlOracle};

/// Errors produced while constructing a highway cover labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A landmark id is not a vertex of the graph.
    LandmarkOutOfRange { landmark: u32, n: usize },
    /// The same vertex appears twice in the landmark list.
    DuplicateLandmark { landmark: u32 },
    /// More than `u16::MAX` landmarks were requested (the label encoding
    /// stores landmark ranks in 16 bits; the paper never uses more than 50).
    TooManyLandmarks { requested: usize },
    /// A label distance exceeded `u16::MAX` (cannot happen on the
    /// small-diameter complex networks the method targets, but possible on
    /// adversarial inputs such as million-vertex paths).
    DistanceOverflow { landmark: u32, vertex: u32, distance: u32 },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::LandmarkOutOfRange { landmark, n } => {
                write!(f, "landmark {landmark} out of range for graph with {n} vertices")
            }
            BuildError::DuplicateLandmark { landmark } => {
                write!(f, "duplicate landmark {landmark}")
            }
            BuildError::TooManyLandmarks { requested } => {
                write!(f, "{requested} landmarks requested, at most 65535 supported")
            }
            BuildError::DistanceOverflow { landmark, vertex, distance } => write!(
                f,
                "distance {distance} from landmark {landmark} to vertex {vertex} exceeds the 16-bit label range"
            ),
        }
    }
}

impl std::error::Error for BuildError {}
