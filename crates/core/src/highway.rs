//! The highway structure `H = (R, δH)` (Definition 3.1): a landmark set plus
//! a *distance decoding function* giving the exact pairwise landmark
//! distances.

use hcl_graph::{VertexId, INF};

/// A highway over a graph: the ordered landmark list, a vertex→rank lookup
/// table, and the dense `|R| × |R|` matrix of exact pairwise distances.
///
/// Landmark *ranks* (positions in the landmark list) are the ids stored in
/// label entries; the rank order is purely presentational — the labelling
/// itself is order-independent (Lemma 3.11).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Highway {
    landmarks: Vec<VertexId>,
    /// `rank_of[v]` = rank of `v` if `v` is a landmark, else `u32::MAX`.
    rank_of: Vec<u32>,
    /// Row-major `|R| × |R|` distance matrix; `INF` for disconnected pairs.
    dist: Vec<u32>,
}

impl Highway {
    pub(crate) const NOT_A_LANDMARK: u32 = u32::MAX;

    /// Creates a highway with all pairwise distances unset (`INF` except the
    /// zero diagonal). The builder fills distances in and then calls
    /// [`close`](Highway::close).
    pub(crate) fn new(n: usize, landmarks: &[VertexId]) -> Self {
        let r = landmarks.len();
        let mut rank_of = vec![Self::NOT_A_LANDMARK; n];
        for (i, &v) in landmarks.iter().enumerate() {
            rank_of[v as usize] = i as u32;
        }
        let mut dist = vec![INF; r * r];
        for i in 0..r {
            dist[i * r + i] = 0;
        }
        Highway { landmarks: landmarks.to_vec(), rank_of, dist }
    }

    /// Number of landmarks `|R|`.
    #[inline]
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// The landmark vertex with the given rank.
    #[inline]
    pub fn landmark(&self, rank: u32) -> VertexId {
        self.landmarks[rank as usize]
    }

    /// All landmarks in rank order.
    #[inline]
    pub fn landmarks(&self) -> &[VertexId] {
        &self.landmarks
    }

    /// The rank of `v` if it is a landmark.
    #[inline]
    pub fn rank(&self, v: VertexId) -> Option<u32> {
        match self.rank_of.get(v as usize) {
            Some(&r) if r != Self::NOT_A_LANDMARK => Some(r),
            _ => None,
        }
    }

    /// Whether `v` is a landmark.
    #[inline]
    pub fn is_landmark(&self, v: VertexId) -> bool {
        matches!(self.rank_of.get(v as usize), Some(&r) if r != Self::NOT_A_LANDMARK)
    }

    /// Exact distance between two landmarks, by rank (`INF` if disconnected).
    #[inline]
    pub fn distance(&self, rank_a: u32, rank_b: u32) -> u32 {
        self.dist[rank_a as usize * self.landmarks.len() + rank_b as usize]
    }

    /// The distance-matrix row of `rank`: `row(a)[b as usize]` equals
    /// [`distance(a, b)`](Self::distance). Hoisting the row out of an inner
    /// loop replaces a multiply-and-index per pair with a plain slice index.
    #[inline]
    pub fn row(&self, rank: u32) -> &[u32] {
        let r = self.landmarks.len();
        let start = rank as usize * r;
        &self.dist[start..start + r]
    }

    /// Records a discovered landmark-to-landmark distance (kept if smaller
    /// than the current value; the matrix stays symmetric).
    pub(crate) fn record(&mut self, rank_a: u32, rank_b: u32, d: u32) {
        let r = self.landmarks.len();
        let (a, b) = (rank_a as usize, rank_b as usize);
        if d < self.dist[a * r + b] {
            self.dist[a * r + b] = d;
            self.dist[b * r + a] = d;
        }
    }

    /// Closes the partial distance matrix under shortest paths
    /// (Floyd–Warshall over the landmark set).
    ///
    /// Each pruned BFS from a landmark `r` stops once its label queue
    /// empties, which can happen before every other landmark is reached; the
    /// distances it *does* record are exact BFS distances. Any landmark pair
    /// `(r, r')` whose shortest path is not landmark-free splits at an
    /// interior landmark into two strictly shorter landmark pairs, and a
    /// pair with a landmark-free shortest path is always discovered directly
    /// (its path's interior vertices are labelled, or split again), so
    /// transitive closure over `R` recovers every exact distance — verified
    /// against brute-force BFS in the tests.
    pub(crate) fn close(&mut self) {
        let r = self.landmarks.len();
        for k in 0..r {
            for i in 0..r {
                let dik = self.dist[i * r + k];
                if dik == INF {
                    continue;
                }
                for j in 0..r {
                    let dkj = self.dist[k * r + j];
                    if dkj == INF {
                        continue;
                    }
                    let via = dik + dkj;
                    if via < self.dist[i * r + j] {
                        self.dist[i * r + j] = via;
                    }
                }
            }
        }
    }

    /// Bytes used by the highway (landmark list + rank table + matrix).
    ///
    /// Note the `rank_of` table is `O(n)`; the paper's size accounting
    /// ([`matrix_bytes`](Highway::matrix_bytes)) excludes it since it is a
    /// lookup acceleration, not part of the labelling.
    pub fn memory_bytes(&self) -> usize {
        self.landmarks.len() * std::mem::size_of::<VertexId>()
            + self.rank_of.len() * std::mem::size_of::<u32>()
            + self.dist.len() * std::mem::size_of::<u32>()
    }

    /// Bytes of the landmark list plus distance matrix only.
    pub fn matrix_bytes(&self) -> usize {
        self.landmarks.len() * std::mem::size_of::<VertexId>()
            + self.dist.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_lookup() {
        let h = Highway::new(10, &[7, 2, 5]);
        assert_eq!(h.num_landmarks(), 3);
        assert_eq!(h.rank(7), Some(0));
        assert_eq!(h.rank(2), Some(1));
        assert_eq!(h.rank(5), Some(2));
        assert_eq!(h.rank(0), None);
        assert!(h.is_landmark(5));
        assert!(!h.is_landmark(9));
        assert_eq!(h.landmark(1), 2);
        assert_eq!(h.landmarks(), &[7, 2, 5]);
    }

    #[test]
    fn row_matches_distance() {
        let mut h = Highway::new(6, &[0, 2, 4]);
        h.record(0, 1, 2);
        h.record(1, 2, 3);
        h.close();
        for a in 0..3u32 {
            let row = h.row(a);
            assert_eq!(row.len(), 3);
            for b in 0..3u32 {
                assert_eq!(row[b as usize], h.distance(a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn record_keeps_minimum_and_symmetry() {
        let mut h = Highway::new(5, &[0, 1]);
        h.record(0, 1, 5);
        h.record(1, 0, 3);
        h.record(0, 1, 9);
        assert_eq!(h.distance(0, 1), 3);
        assert_eq!(h.distance(1, 0), 3);
        assert_eq!(h.distance(0, 0), 0);
    }

    #[test]
    fn closure_fills_transitive_distances() {
        // Path landmarks: 0 -2- 1 -2- 2; (0,2) never directly discovered.
        let mut h = Highway::new(3, &[0, 1, 2]);
        h.record(0, 1, 2);
        h.record(1, 2, 2);
        assert_eq!(h.distance(0, 2), INF);
        h.close();
        assert_eq!(h.distance(0, 2), 4);
    }

    #[test]
    fn closure_preserves_disconnection() {
        let mut h = Highway::new(4, &[0, 1, 2]);
        h.record(0, 1, 1);
        h.close();
        assert_eq!(h.distance(0, 2), INF);
        assert_eq!(h.distance(2, 1), INF);
    }
}
