//! BFS ground-truth helpers shared by the integration tests (enable the
//! `testing` feature).
//!
//! Several test suites — the core concurrency hammer, the server loopback
//! and reload tests, the workspace-level invariant checks — all need the
//! same thing: single-threaded BFS distances to judge oracle answers
//! against. This module is that one implementation; it is compiled only
//! under the `testing` feature so it never ships in a normal build.

use crate::build::HighwayCoverLabelling;
use hcl_graph::{traversal, CsrGraph, VertexId, INF};
use std::collections::HashMap;
use std::sync::Arc;

/// BFS distances from `s`, as the oracle reports them: `None` for
/// unreachable instead of the sentinel `INF`.
pub fn bfs_truth(g: &CsrGraph, s: VertexId) -> Vec<Option<u32>> {
    traversal::bfs_distances(g, s).into_iter().map(|d| (d != INF).then_some(d)).collect()
}

/// One BFS distance row per source, in source order (raw `INF` sentinel —
/// the form the invariant tests index directly).
pub fn bfs_rows(g: &CsrGraph, sources: &[VertexId]) -> Vec<Vec<u32>> {
    sources.iter().map(|&s| traversal::bfs_distances(g, s)).collect()
}

/// All-pairs BFS distances (raw `INF` sentinel), for small graphs.
pub fn all_pairs(g: &CsrGraph) -> Vec<Vec<u32>> {
    let sources: Vec<VertexId> = (0..g.num_vertices() as VertexId).collect();
    bfs_rows(g, &sources)
}

/// Ground-truth answers for an explicit query set: one BFS per distinct
/// source, then a `(s, t) -> distance` map covering exactly `pairs`.
pub fn truth_map(
    g: &CsrGraph,
    pairs: impl IntoIterator<Item = (VertexId, VertexId)>,
) -> HashMap<(VertexId, VertexId), Option<u32>> {
    let pairs: Vec<(VertexId, VertexId)> = pairs.into_iter().collect();
    let mut rows: HashMap<VertexId, Vec<Option<u32>>> = HashMap::new();
    let mut truth = HashMap::with_capacity(pairs.len());
    for (s, t) in pairs {
        let row = rows.entry(s).or_insert_with(|| bfs_truth(g, s));
        truth.insert((s, t), row[t as usize]);
    }
    truth
}

/// A ready-made test index: a Barabási–Albert graph and the labelling
/// built over its top-`k` degree landmarks. The standard fixture of the
/// concurrency and serving tests.
pub fn ba_fixture(
    n: usize,
    deg: usize,
    seed: u64,
    k: usize,
) -> (Arc<CsrGraph>, Arc<HighwayCoverLabelling>) {
    let g = Arc::new(hcl_graph::generate::barabasi_albert(n, deg, seed));
    let landmarks = hcl_graph::order::top_degree(&g, k);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).expect("fixture build");
    (g, Arc::new(labelling))
}
