//! The distance label store.
//!
//! Labels live in a flat CSR-like layout: one offset array indexed by
//! vertex, plus two contiguous **lanes** — one `u16` lane of landmark ranks
//! and one `u16` lane of distances (structure-of-arrays). Per-vertex label
//! slices are sorted by rank so queries can merge two labels with a single
//! linear pass, and the split lanes let the Lemma 5.1 merge loops run over
//! dense same-type data the compiler can autovectorize.
//!
//! [`LabelEntry`] remains the logical unit — [`HighwayLabels::label`]
//! returns a [`LabelRef`] that yields entries by value — but nothing in the
//! hot path materialises `(rank, dist)` pairs; the merge reads the lanes
//! directly via [`HighwayLabels::label_lanes`].
//!
//! §5.2 of the paper compares a 32-bit-vertex/8-bit-distance encoding ("HL")
//! with an 8-bit/8-bit one ("HL(8)"); [`HighwayLabels::encoded_bytes`]
//! reports the size of the labelling under either scheme for Table 3.

use crate::highway::Highway;
use hcl_graph::VertexId;

/// One distance entry `(r, δL(r, v))` in a vertex's label.
///
/// `landmark` is the landmark's *rank* (index into
/// [`Highway::landmarks`]); `dist` is the exact graph distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelEntry {
    /// Rank of the landmark in the highway.
    pub landmark: u16,
    /// Exact distance from the landmark to the labelled vertex.
    pub dist: u16,
}

/// Borrowed view of one vertex's label: parallel rank and dist lanes of
/// equal length, sorted strictly by rank.
///
/// Iteration yields [`LabelEntry`] values, so code written against the old
/// `&[LabelEntry]` slice keeps its shape; the lanes themselves are exposed
/// for the vectorized merge.
#[derive(Clone, Copy)]
pub struct LabelRef<'a> {
    /// Landmark ranks, strictly increasing.
    pub ranks: &'a [u16],
    /// Distances, parallel to `ranks`.
    pub dists: &'a [u16],
}

impl<'a> LabelRef<'a> {
    /// Number of entries in the label.
    #[inline]
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when the label has no entries (landmarks, isolated vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The `i`-th entry, assembled from the lanes.
    #[inline]
    pub fn get(&self, i: usize) -> LabelEntry {
        LabelEntry { landmark: self.ranks[i], dist: self.dists[i] }
    }

    /// Iterates the entries by value, sorted by rank.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = LabelEntry> + 'a {
        self.ranks
            .iter()
            .zip(self.dists.iter())
            .map(|(&landmark, &dist)| LabelEntry { landmark, dist })
    }

    /// Collects the entries into a `Vec` (test / debug helper).
    pub fn to_vec(&self) -> Vec<LabelEntry> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for LabelRef<'a> {
    type Item = LabelEntry;
    type IntoIter = std::iter::Map<
        std::iter::Zip<std::slice::Iter<'a, u16>, std::slice::Iter<'a, u16>>,
        fn((&'a u16, &'a u16)) -> LabelEntry,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.ranks
            .iter()
            .zip(self.dists.iter())
            .map(|(&landmark, &dist)| LabelEntry { landmark, dist })
    }
}

impl std::fmt::Debug for LabelRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Flat per-vertex label store. Landmark vertices have empty labels — their
/// distances live in the [`Highway`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HighwayLabels {
    offsets: Vec<u32>,
    ranks: Vec<u16>,
    dists: Vec<u16>,
}

/// Label size accounting schemes from §5.2 / Table 3 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelEncoding {
    /// 32-bit landmark id + 8-bit distance per entry ("HL" in Table 3; the
    /// encoding FD and PLL use, kept for fair comparison).
    Wide32,
    /// 8-bit landmark id + 8-bit distance per entry ("HL(8)"); valid only
    /// when there are at most 256 landmarks and all distances fit in 8 bits.
    Compact8,
}

impl HighwayLabels {
    pub(crate) fn from_parts(offsets: Vec<u32>, ranks: Vec<u16>, dists: Vec<u16>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, ranks.len());
        debug_assert_eq!(ranks.len(), dists.len());
        HighwayLabels { offsets, ranks, dists }
    }

    /// Number of vertices the store covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// A copy of the store with the given vertices' labels replaced
    /// wholesale. `rows` must be sorted by strictly increasing vertex id;
    /// each replacement row must be sorted strictly by rank, as
    /// `(rank, dist)` pairs.
    ///
    /// The lanes between patched vertices are copied in bulk chunks and the
    /// offsets shifted in one linear pass, so the cost is `O(n)` memcpy
    /// work plus the patched rows themselves — this is the label half of
    /// what keeps a single-edge update cheap relative to a rebuild, which
    /// would re-push every entry of every vertex.
    pub(crate) fn patched(&self, rows: &[(VertexId, Vec<(u16, u16)>)]) -> HighwayLabels {
        debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "rows must be sorted by vertex");
        let mut delta = 0i64;
        for (v, row) in rows {
            let v = *v as usize;
            delta += row.len() as i64 - (self.offsets[v + 1] - self.offsets[v]) as i64;
        }
        let new_total = (self.ranks.len() as i64 + delta) as usize;
        let mut ranks = Vec::with_capacity(new_total);
        let mut dists = Vec::with_capacity(new_total);
        let mut offsets = self.offsets.clone();
        let mut cum = 0i64;
        let mut ri = 0usize;
        let n = self.num_vertices();
        for (v, slot) in offsets.iter_mut().enumerate().take(n) {
            *slot = (self.offsets[v] as i64 + cum) as u32;
            if ri < rows.len() && rows[ri].0 as usize == v {
                cum += rows[ri].1.len() as i64 - (self.offsets[v + 1] - self.offsets[v]) as i64;
                ri += 1;
            }
        }
        *offsets.last_mut().unwrap() = new_total as u32;
        let mut src = 0usize;
        for (v, row) in rows {
            let v = *v as usize;
            let (lo, hi) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            ranks.extend_from_slice(&self.ranks[src..lo]);
            dists.extend_from_slice(&self.dists[src..lo]);
            for &(r, d) in row {
                ranks.push(r);
                dists.push(d);
            }
            src = hi;
        }
        ranks.extend_from_slice(&self.ranks[src..]);
        dists.extend_from_slice(&self.dists[src..]);
        HighwayLabels::from_parts(offsets, ranks, dists)
    }

    /// The label of `v`, sorted by landmark rank.
    #[inline]
    pub fn label(&self, v: VertexId) -> LabelRef<'_> {
        let (ranks, dists) = self.label_lanes(v);
        LabelRef { ranks, dists }
    }

    /// The raw rank and dist lanes of `v`'s label (parallel slices, sorted
    /// strictly by rank). This is the merge's entry point: the two lanes are
    /// contiguous `u16` runs the autovectorizer can stream.
    #[inline]
    pub fn label_lanes(&self, v: VertexId) -> (&[u16], &[u16]) {
        let v = v as usize;
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        (&self.ranks[lo..hi], &self.dists[lo..hi])
    }

    /// Total number of entries `size(L)` (the paper's labelling size "LS").
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.ranks.len()
    }

    /// Average entries per vertex ("ALS" in Table 2).
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.ranks.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum entries in any single label.
    pub fn max_label_size(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Actual bytes used by the in-memory representation.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + (self.ranks.len() + self.dists.len()) * std::mem::size_of::<u16>()
    }

    /// Bytes in the rank lane alone (observability: STATS counters).
    pub fn rank_lane_bytes(&self) -> usize {
        self.ranks.len() * std::mem::size_of::<u16>()
    }

    /// Bytes in the dist lane alone (observability: STATS counters).
    pub fn dist_lane_bytes(&self) -> usize {
        self.dists.len() * std::mem::size_of::<u16>()
    }

    /// Size in bytes of this labelling under the given Table 3 encoding
    /// (entries only, plus one offset per vertex as in the C++ baselines'
    /// per-vertex arrays). Returns `None` if the labelling does not fit the
    /// encoding (e.g. >256 landmarks or a distance >255 under
    /// [`LabelEncoding::Compact8`]).
    pub fn encoded_bytes(&self, encoding: LabelEncoding) -> Option<usize> {
        let per_entry = match encoding {
            LabelEncoding::Wide32 => {
                if self.dists.iter().any(|&d| d > u8::MAX as u16) {
                    return None;
                }
                5
            }
            LabelEncoding::Compact8 => {
                if self.ranks.iter().any(|&r| r > u8::MAX as u16)
                    || self.dists.iter().any(|&d| d > u8::MAX as u16)
                {
                    return None;
                }
                2
            }
        };
        Some(self.ranks.len() * per_entry + self.offsets.len() * std::mem::size_of::<u32>())
    }

    /// Iterates `(vertex, entry)` over all labels (test / debug helper).
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, LabelEntry)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |v| self.label(v as VertexId).iter().map(move |e| (v as VertexId, e)))
    }

    /// Checks internal invariants: sorted, duplicate-free labels whose ranks
    /// are valid for `highway`, and empty labels on landmarks. Used by tests
    /// and debug assertions.
    pub fn validate(&self, highway: &Highway) -> Result<(), String> {
        let r = highway.num_landmarks() as u16;
        for v in 0..self.num_vertices() as VertexId {
            let (ranks, _) = self.label_lanes(v);
            if highway.is_landmark(v) && !ranks.is_empty() {
                return Err(format!("landmark {v} has a non-empty label"));
            }
            for w in ranks.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("label of {v} not strictly sorted by rank"));
                }
            }
            for &rank in ranks {
                if rank >= r {
                    return Err(format!("label of {v} references rank {rank} >= |R|"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HighwayLabels {
        // v0: [(0,1),(2,3)]; v1: []; v2: [(1,2)]
        HighwayLabels::from_parts(vec![0, 2, 2, 3], vec![0, 2, 1], vec![1, 3, 2])
    }

    #[test]
    fn label_access() {
        let l = sample();
        assert_eq!(l.num_vertices(), 3);
        assert_eq!(l.label(0).len(), 2);
        assert!(l.label(1).is_empty());
        assert_eq!(l.label(2).get(0), LabelEntry { landmark: 1, dist: 2 });
        assert_eq!(l.total_entries(), 3);
        assert!((l.avg_label_size() - 1.0).abs() < 1e-12);
        assert_eq!(l.max_label_size(), 2);
    }

    #[test]
    fn lanes_are_parallel_slices() {
        let l = sample();
        let (ranks, dists) = l.label_lanes(0);
        assert_eq!(ranks, &[0, 2]);
        assert_eq!(dists, &[1, 3]);
        assert_eq!(l.rank_lane_bytes(), 6);
        assert_eq!(l.dist_lane_bytes(), 6);
    }

    #[test]
    fn encoded_sizes() {
        let l = sample();
        // Wide32: 3 entries * 5 bytes + 4 offsets * 4 bytes.
        assert_eq!(l.encoded_bytes(LabelEncoding::Wide32), Some(31));
        // Compact8: 3 entries * 2 bytes + 16.
        assert_eq!(l.encoded_bytes(LabelEncoding::Compact8), Some(22));
    }

    #[test]
    fn encoded_rejects_overflow() {
        let l = HighwayLabels::from_parts(vec![0, 1], vec![300], vec![300]);
        assert_eq!(l.encoded_bytes(LabelEncoding::Compact8), None);
        assert_eq!(l.encoded_bytes(LabelEncoding::Wide32), None);
    }

    #[test]
    fn patched_replaces_rows_and_shifts_offsets() {
        let l = sample();
        let p = l.patched(&[(0, vec![(1, 9)]), (1, vec![(0, 4), (3, 5)])]);
        assert_eq!(p.label(0).to_vec(), vec![LabelEntry { landmark: 1, dist: 9 }]);
        assert_eq!(
            p.label(1).to_vec(),
            vec![LabelEntry { landmark: 0, dist: 4 }, LabelEntry { landmark: 3, dist: 5 }]
        );
        assert_eq!(p.label(2).to_vec(), l.label(2).to_vec());
        assert_eq!(p.total_entries(), 4);
        // Emptying a row shifts everything after it left.
        let q = l.patched(&[(0, vec![])]);
        assert!(q.label(0).is_empty());
        assert_eq!(q.label(2).to_vec(), l.label(2).to_vec());
        assert_eq!(q.total_entries(), 1);
        // The empty patch is an exact copy.
        assert_eq!(l.patched(&[]), l);
    }

    #[test]
    fn iter_walks_all_entries() {
        let l = sample();
        let all: Vec<_> = l.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[2], (2, LabelEntry { landmark: 1, dist: 2 }));
    }
}
