//! The distance label store.
//!
//! Labels live in a flat CSR-like layout: one offset array indexed by
//! vertex, one contiguous entry array. Each entry is a `(landmark rank,
//! distance)` pair packed into four bytes; per-vertex entry lists are sorted
//! by rank so queries can merge two labels with a single linear pass.
//!
//! §5.2 of the paper compares a 32-bit-vertex/8-bit-distance encoding ("HL")
//! with an 8-bit/8-bit one ("HL(8)"); [`HighwayLabels::encoded_bytes`]
//! reports the size of the labelling under either scheme for Table 3.

use crate::highway::Highway;
use hcl_graph::VertexId;

/// One distance entry `(r, δL(r, v))` in a vertex's label.
///
/// `landmark` is the landmark's *rank* (index into
/// [`Highway::landmarks`]); `dist` is the exact graph distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LabelEntry {
    /// Rank of the landmark in the highway.
    pub landmark: u16,
    /// Exact distance from the landmark to the labelled vertex.
    pub dist: u16,
}

/// Flat per-vertex label store. Landmark vertices have empty labels — their
/// distances live in the [`Highway`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HighwayLabels {
    offsets: Vec<u32>,
    entries: Vec<LabelEntry>,
}

/// Label size accounting schemes from §5.2 / Table 3 of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LabelEncoding {
    /// 32-bit landmark id + 8-bit distance per entry ("HL" in Table 3; the
    /// encoding FD and PLL use, kept for fair comparison).
    Wide32,
    /// 8-bit landmark id + 8-bit distance per entry ("HL(8)"); valid only
    /// when there are at most 256 landmarks and all distances fit in 8 bits.
    Compact8,
}

impl HighwayLabels {
    pub(crate) fn from_parts(offsets: Vec<u32>, entries: Vec<LabelEntry>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, entries.len());
        HighwayLabels { offsets, entries }
    }

    /// Number of vertices the store covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The label of `v`, sorted by landmark rank.
    #[inline]
    pub fn label(&self, v: VertexId) -> &[LabelEntry] {
        let v = v as usize;
        &self.entries[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Total number of entries `size(L)` (the paper's labelling size "LS").
    #[inline]
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Average entries per vertex ("ALS" in Table 2).
    pub fn avg_label_size(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.entries.len() as f64 / self.num_vertices() as f64
        }
    }

    /// Maximum entries in any single label.
    pub fn max_label_size(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| (self.offsets[v + 1] - self.offsets[v]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Actual bytes used by the in-memory representation.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u32>()
            + self.entries.len() * std::mem::size_of::<LabelEntry>()
    }

    /// Size in bytes of this labelling under the given Table 3 encoding
    /// (entries only, plus one offset per vertex as in the C++ baselines'
    /// per-vertex arrays). Returns `None` if the labelling does not fit the
    /// encoding (e.g. >256 landmarks or a distance >255 under
    /// [`LabelEncoding::Compact8`]).
    pub fn encoded_bytes(&self, encoding: LabelEncoding) -> Option<usize> {
        let per_entry = match encoding {
            LabelEncoding::Wide32 => {
                if self.entries.iter().any(|e| e.dist > u8::MAX as u16) {
                    return None;
                }
                5
            }
            LabelEncoding::Compact8 => {
                if self
                    .entries
                    .iter()
                    .any(|e| e.landmark > u8::MAX as u16 || e.dist > u8::MAX as u16)
                {
                    return None;
                }
                2
            }
        };
        Some(self.entries.len() * per_entry + self.offsets.len() * std::mem::size_of::<u32>())
    }

    /// Iterates `(vertex, entry)` over all labels (test / debug helper).
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, LabelEntry)> + '_ {
        (0..self.num_vertices())
            .flat_map(move |v| self.label(v as VertexId).iter().map(move |&e| (v as VertexId, e)))
    }

    /// Checks internal invariants: sorted, duplicate-free labels whose ranks
    /// are valid for `highway`, and empty labels on landmarks. Used by tests
    /// and debug assertions.
    pub fn validate(&self, highway: &Highway) -> Result<(), String> {
        let r = highway.num_landmarks() as u16;
        for v in 0..self.num_vertices() as VertexId {
            let label = self.label(v);
            if highway.is_landmark(v) && !label.is_empty() {
                return Err(format!("landmark {v} has a non-empty label"));
            }
            for w in label.windows(2) {
                if w[0].landmark >= w[1].landmark {
                    return Err(format!("label of {v} not strictly sorted by rank"));
                }
            }
            for e in label {
                if e.landmark >= r {
                    return Err(format!("label of {v} references rank {} >= |R|", e.landmark));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HighwayLabels {
        // v0: [(0,1),(2,3)]; v1: []; v2: [(1,2)]
        HighwayLabels::from_parts(
            vec![0, 2, 2, 3],
            vec![
                LabelEntry { landmark: 0, dist: 1 },
                LabelEntry { landmark: 2, dist: 3 },
                LabelEntry { landmark: 1, dist: 2 },
            ],
        )
    }

    #[test]
    fn label_access() {
        let l = sample();
        assert_eq!(l.num_vertices(), 3);
        assert_eq!(l.label(0).len(), 2);
        assert!(l.label(1).is_empty());
        assert_eq!(l.label(2)[0], LabelEntry { landmark: 1, dist: 2 });
        assert_eq!(l.total_entries(), 3);
        assert!((l.avg_label_size() - 1.0).abs() < 1e-12);
        assert_eq!(l.max_label_size(), 2);
    }

    #[test]
    fn encoded_sizes() {
        let l = sample();
        // Wide32: 3 entries * 5 bytes + 4 offsets * 4 bytes.
        assert_eq!(l.encoded_bytes(LabelEncoding::Wide32), Some(31));
        // Compact8: 3 entries * 2 bytes + 16.
        assert_eq!(l.encoded_bytes(LabelEncoding::Compact8), Some(22));
    }

    #[test]
    fn encoded_rejects_overflow() {
        let l =
            HighwayLabels::from_parts(vec![0, 1], vec![LabelEntry { landmark: 300, dist: 300 }]);
        assert_eq!(l.encoded_bytes(LabelEncoding::Compact8), None);
        assert_eq!(l.encoded_bytes(LabelEncoding::Wide32), None);
    }

    #[test]
    fn iter_walks_all_entries() {
        let l = sample();
        let all: Vec<_> = l.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].0, 0);
        assert_eq!(all[2], (2, LabelEntry { landmark: 1, dist: 2 }));
    }
}
