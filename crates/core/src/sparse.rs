//! The precomputed sparsified graph `G[V∖R]` the query fast path traverses.
//!
//! Every bounded bidirectional search of the querying framework (§4,
//! Algorithm 2) conceptually runs on the landmark-free subgraph `G[V∖R]`
//! (Lemma 4.5). Filtering landmarks on the fly with a per-edge skip
//! predicate is correct but expensive on exactly the graphs the method
//! targets: landmarks are top-degree hubs, so the unfiltered search both
//! scans the largest adjacency lists in the graph and pays a branchy rank
//! lookup on every neighbour examination. A [`SparseView`] materialises
//! `G[V∖R]` **once** — at index build/load time — so queries traverse it
//! directly with no skip predicate and no rank lookups.
//!
//! On top of the sparsification, the view is **degree-ordered**: the
//! materialised CSR is renumbered by decreasing degree
//! ([`hcl_graph::subgraph::relabel_by_degree`]), so the high-degree
//! vertices that dominate BFS frontiers sit in adjacent cache lines.
//! Queries still address original vertex ids — [`SparseView::view_of`]
//! translates the two endpoints once at the query boundary, and the search
//! then runs entirely in view space. Landmarks have degree zero in
//! `G[V∖R]`, so the degree order sends them to the tail of the id space,
//! still isolated.
//!
//! The view is derived state: it is a deterministic function of the graph
//! and the landmark set (degree order breaks ties by original id), rebuilt
//! whenever either changes — the packed `IndexView` rebuilds the *same*
//! view from its on-disk original-space CSR at open time.
//! [`SharedOracle`](crate::SharedOracle) owns one per index generation, so
//! a hot reload swaps the view atomically with the labelling.

use crate::highway::Highway;
use hcl_graph::{CsrGraph, VertexId};

/// A compacted, degree-ordered CSR of the sparsified graph `G[V∖R]`, plus
/// the two id translation arrays between original and view space.
///
/// Memory cost: one extra CSR of at most `2m` 32-bit adjacency entries plus
/// the `n + 1` offset array and two `n`-entry permutations — never larger
/// than the input graph plus `8n` bytes, and in practice much smaller on
/// power-law graphs because the removed landmark rows are the largest ones.
/// [`memory_bytes`](SparseView::memory_bytes) reports the exact figure
/// (surfaced by the server's `STATS`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseView {
    /// The sparsified graph in view (degree-ordered) id space.
    graph: CsrGraph,
    /// `to_view[original] = view` (total permutation).
    to_view: Vec<VertexId>,
    /// `to_orig[view] = original` (inverse permutation).
    to_orig: Vec<VertexId>,
    /// Edges of the original graph dropped because an endpoint is a
    /// landmark.
    removed_edges: usize,
}

impl SparseView {
    /// Materialises the degree-ordered `G[V∖R]` for `graph` under
    /// `highway`'s landmark set: one `O(n + m)` sparsification pass, then
    /// the deterministic degree relabelling.
    pub fn build(graph: &CsrGraph, highway: &Highway) -> Self {
        let sparse = graph.without_vertices(highway.landmarks());
        let removed_edges = graph.num_edges() - sparse.num_edges();
        Self::from_original_space(sparse, removed_edges)
    }

    /// Builds the view from an already-sparsified graph in **original** id
    /// space (landmarks isolated, ids unchanged). This is the constructor
    /// the packed `IndexView` uses at open time: the on-disk sparse CSR is
    /// stored in original ids, and because the degree relabelling is
    /// deterministic (ties broken by ascending original id), the packed and
    /// in-memory paths reconstruct byte-identical views from it.
    pub fn from_original_space(sparse: CsrGraph, removed_edges: usize) -> Self {
        let n = sparse.num_vertices();
        let (relabelled, to_orig) = hcl_graph::subgraph::relabel_by_degree(&sparse);
        let to_view = hcl_graph::order::ranks(n, &to_orig);
        SparseView { graph: relabelled, to_view, to_orig, removed_edges }
    }

    /// Patches the view for a single edge edit (given in **original** ids)
    /// without re-running the sparsification pass or the degree
    /// relabelling. The existing degree-order permutation is kept — after
    /// an edit it may be slightly stale as an *ordering* (a vertex whose
    /// degree changed keeps its old slot), which costs nothing for
    /// correctness: the bounded searches only require the view to contain
    /// exactly the edges of `G[V∖R]`, and the next full build re-sorts.
    ///
    /// An edit incident to a landmark never touches the view's edges (they
    /// are sparsified away); only the [`removed_edges`](Self::removed_edges)
    /// bookkeeping moves. Returns `None` when the splice is impossible
    /// (adding a present edge / removing an absent one), which callers
    /// treat as an invariant violation since the source graph accepted the
    /// same edit.
    pub fn with_edit(
        &self,
        u: VertexId,
        v: VertexId,
        add: bool,
        highway: &Highway,
    ) -> Option<Self> {
        if highway.is_landmark(u) || highway.is_landmark(v) {
            let removed_edges =
                if add { self.removed_edges + 1 } else { self.removed_edges.checked_sub(1)? };
            return Some(SparseView {
                graph: self.graph.clone(),
                to_view: self.to_view.clone(),
                to_orig: self.to_orig.clone(),
                removed_edges,
            });
        }
        let (uv, vv) = (self.to_view[u as usize], self.to_view[v as usize]);
        let graph =
            if add { self.graph.with_edge(uv, vv)? } else { self.graph.without_edge(uv, vv)? };
        Some(SparseView {
            graph,
            to_view: self.to_view.clone(),
            to_orig: self.to_orig.clone(),
            removed_edges: self.removed_edges,
        })
    }

    /// The identity-order reference view: same sparsification, **no**
    /// degree relabelling (view space == original space). The property
    /// tests drive the fast path against this to isolate the relabelling
    /// as a pure layout change.
    pub fn identity(graph: &CsrGraph, highway: &Highway) -> Self {
        let sparse = graph.without_vertices(highway.landmarks());
        let removed_edges = graph.num_edges() - sparse.num_edges();
        let ident: Vec<VertexId> = (0..sparse.num_vertices() as VertexId).collect();
        SparseView { graph: sparse, to_view: ident.clone(), to_orig: ident, removed_edges }
    }

    /// The sparsified graph in **view** (degree-ordered) id space.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Maps an original vertex id to its view-space id.
    #[inline]
    pub fn view_of(&self, v: VertexId) -> VertexId {
        self.to_view[v as usize]
    }

    /// Maps a view-space id back to the original vertex id.
    #[inline]
    pub fn original_of(&self, v: VertexId) -> VertexId {
        self.to_orig[v as usize]
    }

    /// The sorted neighbour list of *original-space* vertex `v`, translated
    /// back to original ids. Cold-path helper for the packer, which stores
    /// the sparse CSR on disk in original id space (see `docs/FORMAT.md`).
    pub fn original_neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut row: Vec<VertexId> = self
            .graph
            .neighbors(self.to_view[v as usize])
            .iter()
            .map(|&w| self.to_orig[w as usize])
            .collect();
        row.sort_unstable();
        row
    }

    /// Vertices in the view (equal to the source graph's count; landmarks
    /// are isolated, not dropped).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Edges surviving sparsification.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Edges of the source graph dropped (incident to a landmark).
    #[inline]
    pub fn removed_edges(&self) -> usize {
        self.removed_edges
    }

    /// Bytes of the materialised view (adjacency + offsets + the two id
    /// translation arrays).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + (self.to_view.len() + self.to_orig.len()) * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::HighwayCoverLabelling;
    use hcl_graph::generate;

    #[test]
    fn view_isolates_landmarks_and_translates_ids() {
        let g = generate::barabasi_albert(200, 4, 3);
        let landmarks = hcl_graph::order::top_degree(&g, 8);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_edges() + view.removed_edges(), g.num_edges());
        for &r in &landmarks {
            assert_eq!(view.graph().degree(view.view_of(r)), 0, "landmark {r} must be isolated");
        }
        for v in g.vertices() {
            // Round-trip permutations.
            assert_eq!(view.original_of(view.view_of(v)), v);
            if hcl.highway().is_landmark(v) {
                continue;
            }
            let expect: Vec<u32> =
                g.neighbors(v).iter().copied().filter(|&w| !hcl.highway().is_landmark(w)).collect();
            assert_eq!(view.original_neighbors(v), expect, "vertex {v}");
        }
    }

    #[test]
    fn view_is_degree_ordered() {
        let g = generate::barabasi_albert(300, 4, 5);
        let landmarks = hcl_graph::order::top_degree(&g, 10);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        for v in 1..view.num_vertices() as VertexId {
            assert!(
                view.graph().degree(v - 1) >= view.graph().degree(v),
                "view ids must be sorted by decreasing degree at {v}"
            );
        }
    }

    #[test]
    fn relabelling_keeps_landmarks_isolated() {
        // The unit test the degree reorder must never break: landmarks have
        // degree 0 in G[V∖R], so they land at the tail of the view id space
        // and stay neighbour-free there.
        let g = generate::watts_strogatz(150, 6, 0.1, 7);
        let landmarks = hcl_graph::order::top_degree(&g, 12);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        for &r in &landmarks {
            let vr = view.view_of(r);
            assert!(view.graph().neighbors(vr).is_empty(), "landmark {r} (view {vr})");
            assert!(view.original_neighbors(r).is_empty(), "landmark {r}");
            // No other vertex may list a landmark as a neighbour.
            for v in 0..view.num_vertices() as VertexId {
                assert!(!view.graph().neighbors(v).contains(&vr), "{v} links landmark {r}");
            }
        }
    }

    #[test]
    fn identity_view_matches_original_space() {
        let g = generate::barabasi_albert(120, 3, 9);
        let landmarks = hcl_graph::order::top_degree(&g, 6);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let ident = SparseView::identity(&g, hcl.highway());
        let fast = SparseView::build(&g, hcl.highway());
        assert_eq!(ident.num_edges(), fast.num_edges());
        assert_eq!(ident.removed_edges(), fast.removed_edges());
        for v in g.vertices() {
            assert_eq!(ident.view_of(v), v);
            assert_eq!(ident.original_of(v), v);
            assert_eq!(ident.original_neighbors(v), fast.original_neighbors(v), "vertex {v}");
            // Identity view's graph rows ARE original-space rows.
            assert_eq!(ident.graph().neighbors(v), ident.original_neighbors(v).as_slice());
        }
    }

    #[test]
    fn empty_landmark_set_view_is_a_relabelled_graph() {
        let g = generate::cycle(12);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[]).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        assert_eq!(view.num_edges(), g.num_edges());
        assert_eq!(view.removed_edges(), 0);
        assert!(view.memory_bytes() > 0);
        for v in g.vertices() {
            let mut expect: Vec<u32> = g.neighbors(v).to_vec();
            expect.sort_unstable();
            assert_eq!(view.original_neighbors(v), expect);
        }
    }
}
