//! The precomputed sparsified graph `G[V∖R]` the query fast path traverses.
//!
//! Every bounded bidirectional search of the querying framework (§4,
//! Algorithm 2) conceptually runs on the landmark-free subgraph `G[V∖R]`
//! (Lemma 4.5). Filtering landmarks on the fly with a per-edge skip
//! predicate is correct but expensive on exactly the graphs the method
//! targets: landmarks are top-degree hubs, so the unfiltered search both
//! scans the largest adjacency lists in the graph and pays a branchy rank
//! lookup on every neighbour examination. A [`SparseView`] materialises
//! `G[V∖R]` **once** — at index build/load time — in the *original* vertex
//! id space (landmarks simply become isolated), so queries traverse it
//! directly: no skip predicate, no rank lookups, no id translation, and
//! smaller frontiers because hub adjacencies are gone.
//!
//! The view is derived state: it is a function of the graph and the
//! landmark set, rebuilt whenever either changes.
//! [`SharedOracle`](crate::SharedOracle) owns one per index generation, so
//! a hot reload swaps the view atomically with the labelling.

use crate::highway::Highway;
use hcl_graph::CsrGraph;

/// A compacted CSR of the sparsified graph `G[V∖R]`, ids unchanged.
///
/// Memory cost: one extra CSR of at most `2m` 32-bit adjacency entries plus
/// the `n + 1` offset array — never larger than the input graph (equal only
/// in the degenerate no-landmark case), and in practice much smaller on
/// power-law graphs because the removed landmark rows are the largest ones.
/// [`memory_bytes`](SparseView::memory_bytes) reports the exact figure
/// (surfaced by the server's `STATS`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseView {
    graph: CsrGraph,
    /// Edges of the original graph dropped because an endpoint is a
    /// landmark.
    removed_edges: usize,
}

impl SparseView {
    /// Materialises `G[V∖R]` for `graph` under `highway`'s landmark set.
    /// One `O(n + m)` pass; no re-sorting.
    pub fn build(graph: &CsrGraph, highway: &Highway) -> Self {
        let sparse = graph.without_vertices(highway.landmarks());
        SparseView { removed_edges: graph.num_edges() - sparse.num_edges(), graph: sparse }
    }

    /// The sparsified graph, in the original vertex id space.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Vertices in the view (equal to the source graph's count; landmarks
    /// are isolated, not renumbered).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Edges surviving sparsification.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Edges of the source graph dropped (incident to a landmark).
    #[inline]
    pub fn removed_edges(&self) -> usize {
        self.removed_edges
    }

    /// Bytes of the materialised view (adjacency + offsets).
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::HighwayCoverLabelling;
    use hcl_graph::generate;

    #[test]
    fn view_isolates_landmarks_and_keeps_ids() {
        let g = generate::barabasi_albert(200, 4, 3);
        let landmarks = hcl_graph::order::top_degree(&g, 8);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_edges() + view.removed_edges(), g.num_edges());
        for &r in &landmarks {
            assert_eq!(view.graph().degree(r), 0, "landmark {r} must be isolated");
        }
        for v in g.vertices().filter(|v| !hcl.highway().is_landmark(*v)) {
            let expect: Vec<u32> =
                g.neighbors(v).iter().copied().filter(|&w| !hcl.highway().is_landmark(w)).collect();
            assert_eq!(view.graph().neighbors(v), expect.as_slice(), "vertex {v}");
        }
    }

    #[test]
    fn empty_landmark_set_view_is_the_graph() {
        let g = generate::cycle(12);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &[]).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        assert_eq!(view.graph(), &g);
        assert_eq!(view.removed_edges(), 0);
        assert!(view.memory_bytes() > 0);
    }
}
