//! Parallel labelling construction — "HL-P" (§5.1).
//!
//! Because the labelling is *deterministic for a given landmark set*
//! (Lemma 3.11), the pruned BFSs of different landmarks are completely
//! independent: each worker thread claims landmarks from a shared counter,
//! runs pruned BFSs with its own buffers, and ships `(vertex, dist)` batches
//! back over a channel. The main thread merges batches in landmark-rank
//! order, so the parallel build is byte-identical to the sequential one —
//! tested below, and the property the paper highlights in Figure 1(c)
//! ("Parallel? — landmarks").

use crate::build::{
    assemble_labels, validate_landmarks, BuildStats, HighwayCoverLabelling, PrunedBfsWorker,
};
use crate::highway::Highway;
use crate::BuildError;
use hcl_graph::{CsrGraph, VertexId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// Result of one worker-side pruned BFS: labels, discovered
/// landmark-to-landmark distances, and the edge-traversal count.
type BfsOutput = (Vec<(VertexId, u16)>, Vec<(u32, u32)>, u64);

impl HighwayCoverLabelling {
    /// Builds the labelling with `num_threads` worker threads ("HL-P").
    /// `num_threads = 0` uses all available cores. The result is identical
    /// to [`HighwayCoverLabelling::build`].
    pub fn build_parallel(
        g: &CsrGraph,
        landmarks: &[VertexId],
        num_threads: usize,
    ) -> Result<(Self, BuildStats), BuildError> {
        let start = Instant::now();
        validate_landmarks(g, landmarks)?;
        let threads = if num_threads == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            num_threads
        };
        let threads = threads.min(landmarks.len().max(1));

        let r = landmarks.len();
        if r == 0 || threads <= 1 {
            // Degenerate cases: the sequential path produces the identical
            // labelling by construction.
            let (built, mut stats) = HighwayCoverLabelling::build(g, landmarks)?;
            stats.duration = start.elapsed();
            return Ok((built, stats));
        }

        let mut highway = Highway::new(g.num_vertices(), landmarks);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<BfsOutput, BuildError>)>();

        let mut per_landmark: Vec<Vec<(VertexId, u16)>> = vec![Vec::new(); r];
        let mut hw_batches: Vec<(u32, Vec<(u32, u32)>)> = Vec::with_capacity(r);
        let mut stats = BuildStats::default();
        let mut first_error: Option<BuildError> = None;

        {
            // Workers only need rank lookups from the highway; distance
            // recording is deferred to the main thread after the scope ends.
            let highway_ref = &highway;
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || {
                        let mut worker = PrunedBfsWorker::new(g.num_vertices());
                        loop {
                            let idx = next.fetch_add(1, Ordering::Relaxed);
                            if idx >= r {
                                break;
                            }
                            let root = landmarks[idx];
                            let mut labels_out = Vec::new();
                            let mut hw_out = Vec::new();
                            let res = worker
                                .run(g, idx as u32, root, highway_ref, &mut labels_out, &mut hw_out)
                                .map(|edges| (labels_out, hw_out, edges));
                            if tx.send((idx, res)).is_err() {
                                break;
                            }
                        }
                    });
                }
                drop(tx);
                for (idx, res) in rx {
                    match res {
                        Ok((labels_out, hw_out, edges)) => {
                            stats.edges_traversed += edges;
                            stats.labels_added += labels_out.len() as u64;
                            per_landmark[idx] = labels_out;
                            hw_batches.push((idx as u32, hw_out));
                        }
                        Err(e) => {
                            if first_error.is_none() {
                                first_error = Some(e);
                            }
                        }
                    }
                }
            });
        }

        if let Some(e) = first_error {
            return Err(e);
        }
        for (rank, batch) in hw_batches {
            for (other, d) in batch {
                highway.record(rank, other, d);
            }
        }
        highway.close();
        let labels = assemble_labels(g.num_vertices(), &per_landmark);
        stats.duration = start.elapsed();
        Ok((HighwayCoverLabelling::from_parts(highway, labels), stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;

    #[test]
    fn parallel_build_identical_to_sequential() {
        for seed in 0..3u64 {
            let g = generate::barabasi_albert(400, 4, seed);
            let landmarks = hcl_graph::order::top_degree(&g, 12);
            let (seq, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
            for threads in [2usize, 3, 8] {
                let (par, _) =
                    HighwayCoverLabelling::build_parallel(&g, &landmarks, threads).unwrap();
                assert_eq!(seq, par, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_with_zero_threads_uses_default() {
        let g = generate::barabasi_albert(100, 3, 1);
        let landmarks = hcl_graph::order::top_degree(&g, 4);
        let (seq, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let (par, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_empty_landmarks() {
        let g = generate::cycle(6);
        let (par, _) = HighwayCoverLabelling::build_parallel(&g, &[], 4).unwrap();
        assert_eq!(par.num_landmarks(), 0);
    }

    #[test]
    fn parallel_more_threads_than_landmarks() {
        let g = generate::barabasi_albert(120, 3, 7);
        let landmarks = hcl_graph::order::top_degree(&g, 2);
        let (seq, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let (par, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 16).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_propagates_errors() {
        let g = generate::path(70_000);
        let err = HighwayCoverLabelling::build_parallel(&g, &[0, 69_999], 2);
        assert!(matches!(err, Err(BuildError::DistanceOverflow { .. })));
    }

    #[test]
    fn parallel_on_paper_example() {
        let g = crate::fixture::paper_graph();
        let landmarks = crate::fixture::paper_landmarks();
        let (par, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 3).unwrap();
        assert_eq!(par.labels().total_entries(), 13);
    }
}
