//! Label-storage backends: the seam that lets one query implementation
//! serve both the in-memory index and `hcl-store`'s memory-mapped packed
//! format.
//!
//! The querying framework (§4–5 of the paper) needs exactly four things
//! from an index: per-vertex labels sorted by landmark rank, the highway
//! matrix, the landmark-rank lookup, and the sparsified graph `G[V∖R]`.
//! [`LabelStorage`] and [`SparseNeighbors`] capture those; the generic
//! functions in this module ([`upper_bound_on`], [`bound_from_landmark_on`],
//! [`distance_on`]) implement Equation 4 with the Lemma 5.1 merge, the
//! Corollary 3.8 landmark-endpoint shortcut, and the Algorithm 2 bounded
//! search over any backend.
//!
//! # Data layout of the hot path
//!
//! The merge runs over **label lanes**: two parallel `&[u16]` slices (ranks
//! and distances) per endpoint, obtained through
//! [`LabelStorage::label_into`]. The in-memory backends return their stored
//! lanes by reference with zero copying; the packed `IndexView` decodes its
//! delta-varint streams into per-[`QueryContext`] scratch lanes, after
//! which both backends monomorphise the *same* branch-light merge loops —
//! a sorted two-pointer intersection for the common-landmark direct sums,
//! then a dense min-reduction over the highway rows for the s-only/t-only
//! cross terms, with saturating adds standing in for `INF` branches so the
//! compiler can autovectorize.
//!
//! The bounded search runs in the sparse view's **degree-ordered id
//! space**: [`SparseNeighbors::view_of`] translates the two endpoints once
//! at the query boundary, and every frontier expansion then touches the
//! relabelled CSR, where high-degree vertices share cache lines (labels,
//! cache keys, and all public APIs stay in original ids).
//!
//! Because both backends run the same monomorphised code, packed-vs-memory
//! equivalence reduces to the storage traits returning the same sequences —
//! which is exactly what `hcl-store`'s round-trip property tests check.

use crate::build::HighwayCoverLabelling;
use crate::query::{LaneScratch, QueryContext};
use crate::sparse::SparseView;
use hcl_graph::{Adjacency, VertexId, INF};

/// Read access to one generation of a highway cover index: labels, highway
/// matrix, and landmark ranks.
///
/// Implementations must uphold the index invariants the query functions
/// rely on: labels sorted strictly by rank, ranks `< num_landmarks()`,
/// empty labels on landmarks, and a symmetric highway matrix with a zero
/// diagonal (`INF` = disconnected).
pub trait LabelStorage {
    /// Iterator over one vertex's label as `(landmark rank, distance)`
    /// pairs in strictly increasing rank order.
    type LabelIter<'a>: Iterator<Item = (u32, u32)>
    where
        Self: 'a;

    /// Number of vertices the index covers.
    fn num_vertices(&self) -> usize;

    /// Number of landmarks `|R|`.
    fn num_landmarks(&self) -> usize;

    /// The rank of `v` if it is a landmark.
    fn rank(&self, v: VertexId) -> Option<u32>;

    /// Whether `v` is a landmark.
    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.rank(v).is_some()
    }

    /// Exact landmark-to-landmark distance by rank (`INF` = disconnected).
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32;

    /// The highway matrix row of `rank` (length `num_landmarks()`).
    fn highway_row(&self, rank: u32) -> &[u32];

    /// The label of `v` in rank order.
    fn label(&self, v: VertexId) -> Self::LabelIter<'_>;

    /// The label of `v` as parallel rank/dist lanes, using `ranks`/`dists`
    /// as decode scratch when the backend does not store lanes natively.
    ///
    /// The in-memory backends override this to return their stored lanes
    /// by reference (the scratch is untouched); the packed backend decodes
    /// its varint stream into the scratch. Either way the merge sees two
    /// contiguous `u16` runs.
    fn label_into<'a>(
        &'a self,
        v: VertexId,
        ranks: &'a mut Vec<u16>,
        dists: &'a mut Vec<u16>,
    ) -> (&'a [u16], &'a [u16]) {
        ranks.clear();
        dists.clear();
        for (r, d) in self.label(v) {
            ranks.push(r as u16);
            dists.push(d as u16);
        }
        (ranks, dists)
    }
}

/// Adjacency access to the sparsified graph `G[V∖R]` of the same index
/// generation, in the view's (degree-ordered) id space.
///
/// [`view_of`](Self::view_of) is the single translation point between the
/// original id space (labels, caches, the public API) and the relabelled
/// space the bounded search traverses.
pub trait SparseNeighbors {
    /// Maps an original vertex id into the sparse view's id space.
    fn view_of(&self, v: VertexId) -> VertexId;

    /// Neighbours of *view-space* vertex `v` in `G[V∖R]` (sorted,
    /// duplicate-free, view-space ids; landmarks isolated).
    fn sparse_neighbors(&self, v: VertexId) -> &[VertexId];
}

/// Adapter presenting a backend's sparsified graph as
/// [`hcl_graph::Adjacency`] so [`SearchSpace::bounded_bibfs_sparse`]
/// traverses it directly (in view-space ids).
///
/// [`SearchSpace`]: hcl_graph::SearchSpace
struct SparseAdj<'a, S: ?Sized>(&'a S);

impl<S: LabelStorage + SparseNeighbors + ?Sized> Adjacency for SparseAdj<'_, S> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.0.sparse_neighbors(v)
    }
}

/// The upper bound `d⊤(s, t)` of Equation 4 over any [`LabelStorage`],
/// using the Lemma 5.1 merge: landmarks common to both labels contribute
/// their direct sum, cross terms run only between the label-exclusive
/// remainders (buffered as lanes in `ctx`), and each cross row is pruned on
/// the best-so-far (`da + min_dt + 1 >= best` skips the whole row when even
/// the cheapest partner through a via-distance of 1 loses — valid because
/// the remainders' rank sets are disjoint, so every via is `>= 1`).
/// Landmark endpoints are answered from the highway / Corollary 3.8.
pub fn upper_bound_on<S: LabelStorage + ?Sized>(
    index: &S,
    ctx: &mut QueryContext,
    s: VertexId,
    t: VertexId,
) -> u32 {
    if s == t {
        return 0;
    }
    match (index.rank(s), index.rank(t)) {
        (Some(a), Some(b)) => index.highway_distance(a, b),
        (Some(a), None) => bound_from_landmark_on(index, a, t),
        (None, Some(b)) => bound_from_landmark_on(index, b, s),
        (None, None) => {
            let LaneScratch {
                dec_s_ranks,
                dec_s_dists,
                dec_t_ranks,
                dec_t_dists,
                only_s_ranks,
                only_s_dists,
                only_t_ranks,
                only_t_dists,
            } = ctx.lanes();
            let (s_ranks, s_dists) = index.label_into(s, dec_s_ranks, dec_s_dists);
            let (t_ranks, t_dists) = index.label_into(t, dec_t_ranks, dec_t_dists);

            only_s_ranks.clear();
            only_s_dists.clear();
            only_t_ranks.clear();
            only_t_dists.clear();

            // One two-pointer pass over both rank-sorted lanes: equal ranks
            // are direct sums, unmatched entries spill into the cross-term
            // remainder lanes.
            let mut best = INF;
            let (mut i, mut j) = (0usize, 0usize);
            while i < s_ranks.len() && j < t_ranks.len() {
                let ra = s_ranks[i];
                let rb = t_ranks[j];
                match ra.cmp(&rb) {
                    std::cmp::Ordering::Equal => {
                        let cand = s_dists[i] as u32 + t_dists[j] as u32;
                        if cand < best {
                            best = cand;
                        }
                        i += 1;
                        j += 1;
                    }
                    std::cmp::Ordering::Less => {
                        only_s_ranks.push(ra);
                        only_s_dists.push(s_dists[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        only_t_ranks.push(rb);
                        only_t_dists.push(t_dists[j]);
                        j += 1;
                    }
                }
            }
            only_s_ranks.extend_from_slice(&s_ranks[i..]);
            only_s_dists.extend_from_slice(&s_dists[i..]);
            only_t_ranks.extend_from_slice(&t_ranks[j..]);
            only_t_dists.extend_from_slice(&t_dists[j..]);

            if !only_s_ranks.is_empty() && !only_t_ranks.is_empty() {
                // The cheapest possible t-side partner bounds every row.
                let mut min_dt = u16::MAX;
                for &d in only_t_dists.iter() {
                    min_dt = min_dt.min(d);
                }
                let min_dt = min_dt as u32;
                for (k, &ra) in only_s_ranks.iter().enumerate() {
                    let da = only_s_dists[k] as u32;
                    // Disjoint rank sets mean every via-distance is >= 1,
                    // so no pair in this row can beat `best`.
                    if da + min_dt + 1 >= best {
                        continue;
                    }
                    let row = index.highway_row(ra as u32);
                    // Branch-free inner reduction: a saturating add turns a
                    // disconnected `INF` via into a candidate that can
                    // never win the min, so the loop is a pure min-scan the
                    // compiler can vectorize.
                    let mut row_best = u32::MAX;
                    for (&rb, &db) in only_t_ranks.iter().zip(only_t_dists.iter()) {
                        row_best = row_best.min(row[rb as usize].saturating_add(db as u32));
                    }
                    let cand = da.saturating_add(row_best);
                    if cand < best {
                        best = cand;
                    }
                }
            }
            best
        }
    }
}

/// Exact distance from the landmark with rank `rank` to vertex `v`
/// (Corollary 3.8): `min over (rj, δ) ∈ L(v) of δH(rank, rj) + δ`.
pub fn bound_from_landmark_on<S: LabelStorage + ?Sized>(index: &S, rank: u32, v: VertexId) -> u32 {
    if let Some(vr) = index.rank(v) {
        return index.highway_distance(rank, vr);
    }
    let row = index.highway_row(rank);
    let mut best = INF;
    for (rj, d) in index.label(v) {
        let via = row[rj as usize];
        if via == INF {
            continue;
        }
        let cand = via + d;
        if cand < best {
            best = cand;
        }
    }
    best
}

/// Exact distance via the full framework over any backend implementing both
/// storage traits: label upper bound, Corollary 3.8 shortcut for landmark
/// endpoints, then the distance-bounded bidirectional BFS (Algorithm 2) on
/// the backend's sparsified graph. The endpoints are translated into the
/// view's degree-ordered id space exactly once, here.
pub fn distance_on<S: LabelStorage + SparseNeighbors + ?Sized>(
    index: &S,
    ctx: &mut QueryContext,
    s: VertexId,
    t: VertexId,
) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let landmark_endpoint = index.is_landmark(s) || index.is_landmark(t);
    let bound = upper_bound_on(index, ctx, s, t);
    if landmark_endpoint {
        // Corollary 3.8 / the highway matrix make the bound exact;
        // landmark endpoints are isolated in the sparsified graph, so the
        // search must not run.
        return if bound == INF { None } else { Some(bound) };
    }
    let (vs, vt) = (index.view_of(s), index.view_of(t));
    let d = ctx.search_space().bounded_bibfs_sparse(&SparseAdj(index), vs, vt, bound);
    if d == INF {
        None
    } else {
        Some(d)
    }
}

/// Per-query phase timings from [`distance_on_timed`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryPhases {
    /// Nanoseconds in the label merge (Equation 4 upper bound).
    pub merge_ns: u64,
    /// Nanoseconds in the bounded bidirectional search (0 when the bound
    /// alone answered the query).
    pub search_ns: u64,
    /// Whether the bounded search ran at all.
    pub searched: bool,
}

/// [`distance_on`] with per-phase wall-clock accounting, for observability
/// (server `METRICS`) and the committed benchmark's merge-vs-BFS split.
/// Semantically identical to [`distance_on`]; the two `Instant` reads per
/// query keep it off the raw throughput loops.
pub fn distance_on_timed<S: LabelStorage + SparseNeighbors + ?Sized>(
    index: &S,
    ctx: &mut QueryContext,
    s: VertexId,
    t: VertexId,
) -> (Option<u32>, QueryPhases) {
    let mut phases = QueryPhases::default();
    if s == t {
        return (Some(0), phases);
    }
    let landmark_endpoint = index.is_landmark(s) || index.is_landmark(t);
    let start = std::time::Instant::now();
    let bound = upper_bound_on(index, ctx, s, t);
    phases.merge_ns = start.elapsed().as_nanos() as u64;
    if landmark_endpoint {
        return (if bound == INF { None } else { Some(bound) }, phases);
    }
    let (vs, vt) = (index.view_of(s), index.view_of(t));
    let start = std::time::Instant::now();
    let d = ctx.search_space().bounded_bibfs_sparse(&SparseAdj(index), vs, vt, bound);
    phases.search_ns = start.elapsed().as_nanos() as u64;
    phases.searched = true;
    (if d == INF { None } else { Some(d) }, phases)
}

/// Label iterator over the in-memory store: a lock-step walk of the rank
/// and dist lanes mapping to `(rank, dist)` pairs. Kept as a named type
/// (not a closure `Map`) so the generic merge monomorphises to the same
/// code the hand-written slice merge compiled to.
pub struct MemLabelIter<'a> {
    ranks: std::slice::Iter<'a, u16>,
    dists: std::slice::Iter<'a, u16>,
}

impl Iterator for MemLabelIter<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        let r = self.ranks.next()?;
        let d = self.dists.next()?;
        Some((*r as u32, *d as u32))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ranks.size_hint()
    }
}

impl LabelStorage for HighwayCoverLabelling {
    type LabelIter<'a> = MemLabelIter<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.labels().num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.highway().num_landmarks()
    }

    #[inline]
    fn rank(&self, v: VertexId) -> Option<u32> {
        self.highway().rank(v)
    }

    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.highway().is_landmark(v)
    }

    #[inline]
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32 {
        self.highway().distance(rank_a, rank_b)
    }

    #[inline]
    fn highway_row(&self, rank: u32) -> &[u32] {
        self.highway().row(rank)
    }

    #[inline]
    fn label(&self, v: VertexId) -> MemLabelIter<'_> {
        let (ranks, dists) = self.labels().label_lanes(v);
        MemLabelIter { ranks: ranks.iter(), dists: dists.iter() }
    }

    #[inline]
    fn label_into<'a>(
        &'a self,
        v: VertexId,
        _ranks: &'a mut Vec<u16>,
        _dists: &'a mut Vec<u16>,
    ) -> (&'a [u16], &'a [u16]) {
        self.labels().label_lanes(v)
    }
}

/// The in-memory backend: a labelling plus the matching precomputed
/// [`SparseView`]. [`SharedOracle`](crate::SharedOracle) queries go through
/// this adapter, making the in-memory fast path an instantiation of the
/// same generic framework the packed path uses.
#[derive(Clone, Copy, Debug)]
pub struct MemIndex<'a> {
    labelling: &'a HighwayCoverLabelling,
    sparse: &'a SparseView,
}

impl<'a> MemIndex<'a> {
    /// Pairs `labelling` with the sparse view built from the same graph and
    /// landmark set.
    pub fn new(labelling: &'a HighwayCoverLabelling, sparse: &'a SparseView) -> Self {
        MemIndex { labelling, sparse }
    }
}

impl LabelStorage for MemIndex<'_> {
    type LabelIter<'b>
        = MemLabelIter<'b>
    where
        Self: 'b;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.labelling.labels().num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.labelling.highway().num_landmarks()
    }

    #[inline]
    fn rank(&self, v: VertexId) -> Option<u32> {
        self.labelling.highway().rank(v)
    }

    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.labelling.highway().is_landmark(v)
    }

    #[inline]
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32 {
        self.labelling.highway().distance(rank_a, rank_b)
    }

    #[inline]
    fn highway_row(&self, rank: u32) -> &[u32] {
        self.labelling.highway().row(rank)
    }

    #[inline]
    fn label(&self, v: VertexId) -> MemLabelIter<'_> {
        let (ranks, dists) = self.labelling.labels().label_lanes(v);
        MemLabelIter { ranks: ranks.iter(), dists: dists.iter() }
    }

    #[inline]
    fn label_into<'b>(
        &'b self,
        v: VertexId,
        _ranks: &'b mut Vec<u16>,
        _dists: &'b mut Vec<u16>,
    ) -> (&'b [u16], &'b [u16]) {
        self.labelling.labels().label_lanes(v)
    }
}

impl SparseNeighbors for MemIndex<'_> {
    #[inline]
    fn view_of(&self, v: VertexId) -> VertexId {
        self.sparse.view_of(v)
    }

    #[inline]
    fn sparse_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.sparse.graph().neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;

    fn build(n: usize, k: usize, seed: u64) -> (hcl_graph::CsrGraph, HighwayCoverLabelling) {
        let g = generate::barabasi_albert(n, 3, seed);
        let landmarks = hcl_graph::order::top_degree(&g, k);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        (g, hcl)
    }

    #[test]
    fn mem_backend_matches_reference_upper_bound() {
        let (g, hcl) = build(150, 8, 5);
        let mut ctx = QueryContext::new(g.num_vertices());
        for s in g.vertices().step_by(3) {
            for t in g.vertices().step_by(5) {
                assert_eq!(upper_bound_on(&hcl, &mut ctx, s, t), hcl.upper_bound(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn mem_backend_distance_matches_distance_with() {
        let (g, hcl) = build(200, 10, 9);
        let sparse = SparseView::build(&g, hcl.highway());
        let index = MemIndex::new(&hcl, &sparse);
        let mut ctx = QueryContext::new(g.num_vertices());
        let mut ctx2 = QueryContext::new(g.num_vertices());
        for s in g.vertices().step_by(7) {
            for t in g.vertices() {
                assert_eq!(
                    distance_on(&index, &mut ctx, s, t),
                    hcl.distance_with(&g, &mut ctx2, s, t),
                    "{s}->{t}"
                );
            }
        }
    }

    #[test]
    fn landmark_endpoints_skip_the_search() {
        let (g, hcl) = build(120, 6, 2);
        let sparse = SparseView::build(&g, hcl.highway());
        let index = MemIndex::new(&hcl, &sparse);
        let mut ctx = QueryContext::new(g.num_vertices());
        let r = hcl.highway().landmark(0);
        for t in g.vertices() {
            let truth = hcl_graph::traversal::bfs_distances(&g, r)[t as usize];
            let expect = (truth != INF).then_some(truth);
            assert_eq!(distance_on(&index, &mut ctx, r, t), expect, "{r}->{t}");
            assert_eq!(distance_on(&index, &mut ctx, t, r), expect, "{t}->{r}");
        }
    }

    #[test]
    fn default_label_into_decodes_through_the_iterator() {
        // Exercise the trait's default (scratch-decoding) path against the
        // overridden zero-copy one: both must produce identical lanes.
        struct IterOnly<'a>(&'a HighwayCoverLabelling);
        impl LabelStorage for IterOnly<'_> {
            type LabelIter<'b>
                = MemLabelIter<'b>
            where
                Self: 'b;
            fn num_vertices(&self) -> usize {
                self.0.num_vertices()
            }
            fn num_landmarks(&self) -> usize {
                LabelStorage::num_landmarks(self.0)
            }
            fn rank(&self, v: VertexId) -> Option<u32> {
                self.0.rank(v)
            }
            fn highway_distance(&self, a: u32, b: u32) -> u32 {
                self.0.highway_distance(a, b)
            }
            fn highway_row(&self, rank: u32) -> &[u32] {
                self.0.highway_row(rank)
            }
            fn label(&self, v: VertexId) -> MemLabelIter<'_> {
                self.0.label(v)
            }
        }

        let (g, hcl) = build(150, 8, 7);
        let wrapped = IterOnly(&hcl);
        let mut ctx = QueryContext::new(g.num_vertices());
        for s in g.vertices().step_by(3) {
            for t in g.vertices().step_by(5) {
                assert_eq!(
                    upper_bound_on(&wrapped, &mut ctx, s, t),
                    hcl.upper_bound(s, t),
                    "{s}->{t}"
                );
            }
        }
    }

    #[test]
    fn timed_distance_matches_untimed() {
        let (g, hcl) = build(180, 8, 4);
        let sparse = SparseView::build(&g, hcl.highway());
        let index = MemIndex::new(&hcl, &sparse);
        let mut ctx = QueryContext::new(g.num_vertices());
        let mut searched_any = false;
        for s in g.vertices().step_by(5) {
            for t in g.vertices().step_by(7) {
                let (d, phases) = distance_on_timed(&index, &mut ctx, s, t);
                assert_eq!(d, distance_on(&index, &mut ctx, s, t), "{s}->{t}");
                if s != t && !hcl.highway().is_landmark(s) && !hcl.highway().is_landmark(t) {
                    assert!(phases.searched);
                    searched_any = true;
                } else {
                    assert!(!phases.searched);
                    assert_eq!(phases.search_ns, 0);
                }
            }
        }
        assert!(searched_any);
    }
}
