//! Label-storage backends: the seam that lets one query implementation
//! serve both the in-memory index and `hcl-store`'s memory-mapped packed
//! format.
//!
//! The querying framework (§4–5 of the paper) needs exactly four things
//! from an index: per-vertex labels sorted by landmark rank, the highway
//! matrix, the landmark-rank lookup, and the sparsified graph `G[V∖R]`.
//! [`LabelStorage`] and [`SparseNeighbors`] capture those; the generic
//! functions in this module ([`upper_bound_on`], [`bound_from_landmark_on`],
//! [`distance_on`]) implement Equation 4 with the Lemma 5.1 merge, the
//! Corollary 3.8 landmark-endpoint shortcut, and the Algorithm 2 bounded
//! search over any backend.
//!
//! Two backends exist:
//!
//! * the in-memory index — [`HighwayCoverLabelling`] implements
//!   [`LabelStorage`] directly (labels come straight off `&[LabelEntry]`
//!   slices), and [`MemIndex`] pairs it with a
//!   [`SparseView`] to add [`SparseNeighbors`]. The
//!   public query entry points
//!   ([`upper_bound_with`](HighwayCoverLabelling::upper_bound_with),
//!   [`distance_sparse`](HighwayCoverLabelling::distance_sparse)) are thin
//!   wrappers over the generic functions, so the fast path *is* the generic
//!   path, monomorphised for slices.
//! * `hcl-store`'s `IndexView` — labels are decoded on the fly from
//!   delta-varint bytes in a memory-mapped file ("decode-on-merge"): the
//!   label iterator type absorbs the difference and the merge logic,
//!   pruning included, is shared verbatim.
//!
//! Because both backends run the same monomorphised code, packed-vs-memory
//! equivalence reduces to the storage traits returning the same sequences —
//! which is exactly what `hcl-store`'s round-trip property tests check.

use crate::build::HighwayCoverLabelling;
use crate::query::QueryContext;
use crate::sparse::SparseView;
use hcl_graph::{Adjacency, VertexId, INF};

/// Read access to one generation of a highway cover index: labels, highway
/// matrix, and landmark ranks.
///
/// Implementations must uphold the index invariants the query functions
/// rely on: labels sorted strictly by rank, ranks `< num_landmarks()`,
/// empty labels on landmarks, and a symmetric highway matrix with a zero
/// diagonal (`INF` = disconnected).
pub trait LabelStorage {
    /// Iterator over one vertex's label as `(landmark rank, distance)`
    /// pairs in strictly increasing rank order.
    type LabelIter<'a>: Iterator<Item = (u32, u32)>
    where
        Self: 'a;

    /// Number of vertices the index covers.
    fn num_vertices(&self) -> usize;

    /// Number of landmarks `|R|`.
    fn num_landmarks(&self) -> usize;

    /// The rank of `v` if it is a landmark.
    fn rank(&self, v: VertexId) -> Option<u32>;

    /// Whether `v` is a landmark.
    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.rank(v).is_some()
    }

    /// Exact landmark-to-landmark distance by rank (`INF` = disconnected).
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32;

    /// The highway matrix row of `rank` (length `num_landmarks()`).
    fn highway_row(&self, rank: u32) -> &[u32];

    /// The label of `v` in rank order.
    fn label(&self, v: VertexId) -> Self::LabelIter<'_>;
}

/// Adjacency access to the sparsified graph `G[V∖R]` of the same index
/// generation (original vertex ids; landmarks isolated).
pub trait SparseNeighbors {
    /// Neighbours of `v` in `G[V∖R]` (sorted, duplicate-free).
    fn sparse_neighbors(&self, v: VertexId) -> &[VertexId];
}

/// Adapter presenting a backend's sparsified graph as
/// [`hcl_graph::Adjacency`] so [`SearchSpace::bounded_bibfs_sparse`]
/// traverses it directly.
///
/// [`SearchSpace`]: hcl_graph::SearchSpace
struct SparseAdj<'a, S: ?Sized>(&'a S);

impl<S: LabelStorage + SparseNeighbors + ?Sized> Adjacency for SparseAdj<'_, S> {
    #[inline]
    fn num_vertices(&self) -> usize {
        self.0.num_vertices()
    }

    #[inline]
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        self.0.sparse_neighbors(v)
    }
}

/// The upper bound `d⊤(s, t)` of Equation 4 over any [`LabelStorage`],
/// using the Lemma 5.1 merge: landmarks common to both labels contribute
/// their direct sum, cross terms run only between the label-exclusive
/// remainders (buffered in `ctx`), and the inner loop prunes on the
/// best-so-far (`da + db + 1 >= best` skips the matrix lookup when even a
/// via-distance of 1 loses). Landmark endpoints are answered from the
/// highway / Corollary 3.8.
pub fn upper_bound_on<S: LabelStorage + ?Sized>(
    index: &S,
    ctx: &mut QueryContext,
    s: VertexId,
    t: VertexId,
) -> u32 {
    if s == t {
        return 0;
    }
    match (index.rank(s), index.rank(t)) {
        (Some(a), Some(b)) => index.highway_distance(a, b),
        (Some(a), None) => bound_from_landmark_on(index, a, t),
        (None, Some(b)) => bound_from_landmark_on(index, b, s),
        (None, None) => {
            let mut best = INF;
            let (only_s, only_t) = ctx.merge_buffers();
            only_s.clear();
            only_t.clear();
            let mut ls = index.label(s);
            let mut lt = index.label(t);
            let mut es = ls.next();
            let mut et = lt.next();
            // One linear pass over both rank-sorted labels: equal ranks are
            // direct sums, unmatched entries become cross-term candidates.
            loop {
                match (es, et) {
                    (Some((ra, da)), Some((rb, db))) => match ra.cmp(&rb) {
                        std::cmp::Ordering::Equal => {
                            let cand = da + db;
                            if cand < best {
                                best = cand;
                            }
                            es = ls.next();
                            et = lt.next();
                        }
                        std::cmp::Ordering::Less => {
                            only_s.push((ra, da));
                            es = ls.next();
                        }
                        std::cmp::Ordering::Greater => {
                            only_t.push((rb, db));
                            et = lt.next();
                        }
                    },
                    (Some(e), None) => {
                        only_s.push(e);
                        only_s.extend(ls);
                        break;
                    }
                    (None, Some(e)) => {
                        only_t.push(e);
                        only_t.extend(lt);
                        break;
                    }
                    (None, None) => break,
                }
            }
            for &(ra, da) in only_s.iter() {
                // Distinct landmarks are at distance >= 1, so no pair in
                // this row can beat `best` once `da + 1 >= best`.
                if da.saturating_add(1) >= best {
                    continue;
                }
                let row = index.highway_row(ra);
                for &(rb, db) in only_t.iter() {
                    // Best-so-far pruning: skip the matrix lookup when even
                    // the minimum possible via-distance (1) loses.
                    if da + db + 1 >= best {
                        continue;
                    }
                    let via = row[rb as usize];
                    if via == INF {
                        continue;
                    }
                    let cand = da + via + db;
                    if cand < best {
                        best = cand;
                    }
                }
            }
            best
        }
    }
}

/// Exact distance from the landmark with rank `rank` to vertex `v`
/// (Corollary 3.8): `min over (rj, δ) ∈ L(v) of δH(rank, rj) + δ`.
pub fn bound_from_landmark_on<S: LabelStorage + ?Sized>(index: &S, rank: u32, v: VertexId) -> u32 {
    if let Some(vr) = index.rank(v) {
        return index.highway_distance(rank, vr);
    }
    let row = index.highway_row(rank);
    let mut best = INF;
    for (rj, d) in index.label(v) {
        let via = row[rj as usize];
        if via == INF {
            continue;
        }
        let cand = via + d;
        if cand < best {
            best = cand;
        }
    }
    best
}

/// Exact distance via the full framework over any backend implementing both
/// storage traits: label upper bound, Corollary 3.8 shortcut for landmark
/// endpoints, then the distance-bounded bidirectional BFS (Algorithm 2) on
/// the backend's sparsified graph.
pub fn distance_on<S: LabelStorage + SparseNeighbors + ?Sized>(
    index: &S,
    ctx: &mut QueryContext,
    s: VertexId,
    t: VertexId,
) -> Option<u32> {
    if s == t {
        return Some(0);
    }
    let landmark_endpoint = index.is_landmark(s) || index.is_landmark(t);
    let bound = upper_bound_on(index, ctx, s, t);
    if landmark_endpoint {
        // Corollary 3.8 / the highway matrix make the bound exact;
        // landmark endpoints are isolated in the sparsified graph, so the
        // search must not run.
        return if bound == INF { None } else { Some(bound) };
    }
    let d = ctx.search_space().bounded_bibfs_sparse(&SparseAdj(index), s, t, bound);
    if d == INF {
        None
    } else {
        Some(d)
    }
}

/// Label iterator over the in-memory store: a slice walk mapping
/// [`LabelEntry`](crate::LabelEntry) to `(rank, dist)`. Kept as a named
/// type (not a closure `Map`) so the generic merge monomorphises to the
/// same code the hand-written slice merge compiled to.
pub struct MemLabelIter<'a>(std::slice::Iter<'a, crate::labels::LabelEntry>);

impl Iterator for MemLabelIter<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        self.0.next().map(|e| (e.landmark as u32, e.dist as u32))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl LabelStorage for HighwayCoverLabelling {
    type LabelIter<'a> = MemLabelIter<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.labels().num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.highway().num_landmarks()
    }

    #[inline]
    fn rank(&self, v: VertexId) -> Option<u32> {
        self.highway().rank(v)
    }

    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.highway().is_landmark(v)
    }

    #[inline]
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32 {
        self.highway().distance(rank_a, rank_b)
    }

    #[inline]
    fn highway_row(&self, rank: u32) -> &[u32] {
        self.highway().row(rank)
    }

    #[inline]
    fn label(&self, v: VertexId) -> MemLabelIter<'_> {
        MemLabelIter(self.labels().label(v).iter())
    }
}

/// The in-memory backend: a labelling plus the matching precomputed
/// [`SparseView`]. [`SharedOracle`](crate::SharedOracle) queries go through
/// this adapter, making the in-memory fast path an instantiation of the
/// same generic framework the packed path uses.
#[derive(Clone, Copy, Debug)]
pub struct MemIndex<'a> {
    labelling: &'a HighwayCoverLabelling,
    sparse: &'a SparseView,
}

impl<'a> MemIndex<'a> {
    /// Pairs `labelling` with the sparse view built from the same graph and
    /// landmark set.
    pub fn new(labelling: &'a HighwayCoverLabelling, sparse: &'a SparseView) -> Self {
        MemIndex { labelling, sparse }
    }
}

impl LabelStorage for MemIndex<'_> {
    type LabelIter<'b>
        = MemLabelIter<'b>
    where
        Self: 'b;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.labelling.labels().num_vertices()
    }

    #[inline]
    fn num_landmarks(&self) -> usize {
        self.labelling.highway().num_landmarks()
    }

    #[inline]
    fn rank(&self, v: VertexId) -> Option<u32> {
        self.labelling.highway().rank(v)
    }

    #[inline]
    fn is_landmark(&self, v: VertexId) -> bool {
        self.labelling.highway().is_landmark(v)
    }

    #[inline]
    fn highway_distance(&self, rank_a: u32, rank_b: u32) -> u32 {
        self.labelling.highway().distance(rank_a, rank_b)
    }

    #[inline]
    fn highway_row(&self, rank: u32) -> &[u32] {
        self.labelling.highway().row(rank)
    }

    #[inline]
    fn label(&self, v: VertexId) -> MemLabelIter<'_> {
        MemLabelIter(self.labelling.labels().label(v).iter())
    }
}

impl SparseNeighbors for MemIndex<'_> {
    #[inline]
    fn sparse_neighbors(&self, v: VertexId) -> &[VertexId] {
        self.sparse.graph().neighbors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;

    fn build(n: usize, k: usize, seed: u64) -> (hcl_graph::CsrGraph, HighwayCoverLabelling) {
        let g = generate::barabasi_albert(n, 3, seed);
        let landmarks = hcl_graph::order::top_degree(&g, k);
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        (g, hcl)
    }

    #[test]
    fn mem_backend_matches_reference_upper_bound() {
        let (g, hcl) = build(150, 8, 5);
        let mut ctx = QueryContext::new(g.num_vertices());
        for s in g.vertices().step_by(3) {
            for t in g.vertices().step_by(5) {
                assert_eq!(upper_bound_on(&hcl, &mut ctx, s, t), hcl.upper_bound(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn mem_backend_distance_matches_distance_with() {
        let (g, hcl) = build(200, 10, 9);
        let sparse = SparseView::build(&g, hcl.highway());
        let index = MemIndex::new(&hcl, &sparse);
        let mut ctx = QueryContext::new(g.num_vertices());
        let mut ctx2 = QueryContext::new(g.num_vertices());
        for s in g.vertices().step_by(7) {
            for t in g.vertices() {
                assert_eq!(
                    distance_on(&index, &mut ctx, s, t),
                    hcl.distance_with(&g, &mut ctx2, s, t),
                    "{s}->{t}"
                );
            }
        }
    }

    #[test]
    fn landmark_endpoints_skip_the_search() {
        let (g, hcl) = build(120, 6, 2);
        let sparse = SparseView::build(&g, hcl.highway());
        let index = MemIndex::new(&hcl, &sparse);
        let mut ctx = QueryContext::new(g.num_vertices());
        let r = hcl.highway().landmark(0);
        for t in g.vertices() {
            let truth = hcl_graph::traversal::bfs_distances(&g, r)[t as usize];
            let expect = (truth != INF).then_some(truth);
            assert_eq!(distance_on(&index, &mut ctx, r, t), expect, "{r}->{t}");
            assert_eq!(distance_on(&index, &mut ctx, t, r), expect, "{t}->{r}");
        }
    }
}
