//! Persistence for highway cover labellings.
//!
//! A labelling is the product of minutes of preprocessing on large graphs;
//! saving it lets a query service start instantly. The format is a simple
//! little-endian container: magic, vertex count, landmark list, the highway
//! distance matrix, label offsets, and packed `(rank, dist)` entries.

use crate::build::HighwayCoverLabelling;
use crate::highway::Highway;
use crate::labels::HighwayLabels;
use hcl_graph::GraphError;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HCLIDX01";

/// Serialises a labelling.
pub fn write_labelling<W: Write>(l: &HighwayCoverLabelling, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    let n = l.labels().num_vertices() as u64;
    let r = l.num_landmarks() as u64;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&r.to_le_bytes())?;
    for rank in 0..l.num_landmarks() as u32 {
        w.write_all(&l.highway().landmark(rank).to_le_bytes())?;
    }
    for a in 0..l.num_landmarks() as u32 {
        for b in 0..l.num_landmarks() as u32 {
            w.write_all(&l.highway().distance(a, b).to_le_bytes())?;
        }
    }
    let mut total: u32 = 0;
    w.write_all(&total.to_le_bytes())?;
    for v in 0..l.labels().num_vertices() as u32 {
        total += l.labels().label(v).len() as u32;
        w.write_all(&total.to_le_bytes())?;
    }
    for v in 0..l.labels().num_vertices() as u32 {
        for e in l.labels().label(v) {
            w.write_all(&e.landmark.to_le_bytes())?;
            w.write_all(&e.dist.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Deserialises a labelling written by [`write_labelling`].
pub fn read_labelling<R: Read>(reader: R) -> Result<HighwayCoverLabelling, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad labelling magic".to_string()));
    }
    let n = read_u64(&mut r)?;
    if n >= u32::MAX as u64 {
        return Err(GraphError::Format(format!("implausible vertex count {n}")));
    }
    let n = n as usize;
    let num_landmarks = read_u64(&mut r)? as usize;
    if num_landmarks > u16::MAX as usize + 1 {
        return Err(GraphError::Format(format!("implausible landmark count {num_landmarks}")));
    }
    let mut landmarks = Vec::with_capacity(num_landmarks.min(1 << 16));
    for _ in 0..num_landmarks {
        landmarks.push(read_u32(&mut r)?);
    }
    if landmarks.iter().any(|&v| v as usize >= n) {
        return Err(GraphError::Format("landmark out of range".to_string()));
    }
    // Buffer the matrix before building the (O(n) + O(r²)) highway, so a
    // corrupted header fails on a short read instead of a huge allocation.
    let mut matrix = Vec::with_capacity((num_landmarks * num_landmarks).min(1 << 20));
    for _ in 0..num_landmarks * num_landmarks {
        matrix.push(read_u32(&mut r)?);
    }
    // Capped reservations: corrupted counts must fail on read, not alloc.
    let mut offsets = Vec::with_capacity((n + 1).min(1 << 20));
    for _ in 0..=n {
        offsets.push(read_u32(&mut r)?);
    }
    if offsets[0] != 0 || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Format("non-monotone label offsets".to_string()));
    }
    let total = *offsets.last().unwrap() as usize;
    let mut ranks = Vec::with_capacity(total.min(1 << 20));
    let mut dists = Vec::with_capacity(total.min(1 << 20));
    for _ in 0..total {
        let landmark = read_u16(&mut r)?;
        let dist = read_u16(&mut r)?;
        if landmark as usize >= num_landmarks {
            return Err(GraphError::Format("label entry rank out of range".to_string()));
        }
        ranks.push(landmark);
        dists.push(dist);
    }
    if offsets.len() != n + 1 {
        return Err(GraphError::Format("offset table length mismatch".to_string()));
    }
    let mut highway = Highway::new(n, &landmarks);
    for a in 0..num_landmarks as u32 {
        for b in 0..num_landmarks as u32 {
            let d = matrix[(a as usize) * num_landmarks + b as usize];
            if a != b && d != hcl_graph::INF {
                highway.record(a, b, d);
            }
        }
    }
    Ok(HighwayCoverLabelling::from_parts(highway, HighwayLabels::from_parts(offsets, ranks, dists)))
}

/// Saves a labelling to a file.
pub fn save_labelling<P: AsRef<Path>>(
    l: &HighwayCoverLabelling,
    path: P,
) -> Result<(), GraphError> {
    write_labelling(l, std::fs::File::create(path)?)
}

/// Loads a labelling from a file.
pub fn load_labelling<P: AsRef<Path>>(path: P) -> Result<HighwayCoverLabelling, GraphError> {
    read_labelling(std::fs::File::open(path)?)
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u16<R: Read>(r: &mut R) -> Result<u16, GraphError> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;
    use std::io::Cursor;

    #[test]
    fn roundtrip() {
        let g = generate::barabasi_albert(200, 3, 8);
        let landmarks = hcl_graph::order::top_degree(&g, 7);
        let (l, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let mut buf = Vec::new();
        write_labelling(&l, &mut buf).unwrap();
        let l2 = read_labelling(Cursor::new(buf)).unwrap();
        assert_eq!(l, l2);
    }

    #[test]
    fn roundtrip_disconnected_highway() {
        let g = hcl_graph::CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let (l, _) = HighwayCoverLabelling::build(&g, &[0, 3]).unwrap();
        let mut buf = Vec::new();
        write_labelling(&l, &mut buf).unwrap();
        let l2 = read_labelling(Cursor::new(buf)).unwrap();
        assert_eq!(l, l2);
        assert_eq!(l2.highway().distance(0, 1), hcl_graph::INF);
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(read_labelling(Cursor::new(b"WRONG!!!".to_vec())).is_err());
        let g = generate::cycle(8);
        let (l, _) = HighwayCoverLabelling::build(&g, &[0, 4]).unwrap();
        let mut buf = Vec::new();
        write_labelling(&l, &mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(read_labelling(Cursor::new(buf)).is_err());
    }

    #[test]
    fn file_roundtrip_and_queries_work_after_load() {
        let dir = std::env::temp_dir().join("hcl_core_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = generate::barabasi_albert(150, 3, 2);
        let landmarks = hcl_graph::order::top_degree(&g, 5);
        let (l, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let path = dir.join("index.hcl");
        save_labelling(&l, &path).unwrap();
        let l2 = load_labelling(&path).unwrap();
        let mut oracle = crate::HlOracle::new(&g, l2);
        let mut reference = crate::HlOracle::new(&g, l);
        for (s, t) in [(0u32, 149u32), (3, 77), (10, 10)] {
            assert_eq!(oracle.query(s, t), reference.query(s, t));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
