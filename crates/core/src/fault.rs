//! Deterministic syscall-level fault injection for chaos tests.
//!
//! The serving stack (server reactor, router, store) funnels every raw
//! syscall-ish operation — stream reads/writes, `accept`, `epoll_wait`,
//! non-blocking `connect`, eventfd wakeups, `mmap` — through a single
//! [`check`] hook keyed by [`Op`]. Tests install a [`Script`]: an ordered
//! rule table saying "on the N-th `Read`, return `EINTR`", "every other
//! `Write` is short", "the first `Mmap` fails with `ENOMEM`". The faulted
//! call *does not happen*; the injected outcome flows through the exact
//! error-handling arm the real syscall result would have taken, so retry
//! loops, backoff paths, and fallbacks are exercised byte-for-byte.
//!
//! Determinism: each installed script owns one atomic call counter **per
//! op**, and rules trigger on that per-op count. As long as a given op is
//! only issued from one thread (true for every reactor-owned fd), the same
//! script always produces the same failure sequence — chaos tests are
//! replayable, not flaky.
//!
//! # Cost when disabled
//!
//! Without the `fault-injection` cargo feature, [`check`] is an
//! `#[inline(always)]` constant returning [`Verdict::Proceed`]; every
//! call site folds to nothing. The feature is never enabled by default
//! builds or tier-1 tests — only the dedicated chaos CI job turns it on.
//!
//! # Writing a chaos test
//!
//! ```ignore
//! use hcl_core::fault::{self, Fault, Op, Script, Trigger};
//!
//! let _serial = fault::exclusive(); // one global script at a time
//! let guard = fault::install_global(
//!     Script::new()
//!         .on(Op::Read, Trigger::At(2), Fault::Errno(fault::ECONNRESET))
//!         .on(Op::Read, Trigger::Always, Fault::Short(1)),
//! );
//! // ... drive the server; the 3rd read resets, every other read is 1 byte
//! assert!(guard.calls(Op::Read) > 2);
//! // dropping `guard` uninstalls the script
//! ```

use std::io;

/// The faultable operation classes. Server-side connection I/O and
/// router-side upstream I/O are distinct lanes so a router chaos test can
/// break the client leg and the upstream leg independently.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Op {
    /// A connection-stream `read` in the server/router accept path.
    Read = 0,
    /// A connection-stream `write` in the server/router accept path.
    Write = 1,
    /// `accept` on the listening socket.
    Accept = 2,
    /// `epoll_wait` in a reactor loop.
    EpollWait = 3,
    /// Non-blocking `connect` initiation (router → upstream).
    Connect = 4,
    /// `read` on a router upstream wire.
    UpstreamRead = 5,
    /// `write` on a router upstream wire.
    UpstreamWrite = 6,
    /// `mmap` of a packed index file.
    Mmap = 7,
    /// The raw `read` draining an eventfd wakeup.
    EventFdRead = 8,
    /// The raw `write` signalling an eventfd wakeup.
    EventFdWrite = 9,
}

/// Number of [`Op`] lanes (length of the per-script counter array).
pub const NUM_OPS: usize = 10;

/// `EINTR`: interrupted by signal (kind [`io::ErrorKind::Interrupted`]).
pub const EINTR: i32 = 4;
/// `EAGAIN`/`EWOULDBLOCK` (kind [`io::ErrorKind::WouldBlock`]).
pub const EAGAIN: i32 = 11;
/// `ENOMEM`: out of memory — the classic `mmap` failure.
pub const ENOMEM: i32 = 12;
/// `EMFILE`: fd table full — the classic `accept` failure.
pub const EMFILE: i32 = 24;
/// `ECONNRESET` (kind [`io::ErrorKind::ConnectionReset`]).
pub const ECONNRESET: i32 = 104;

/// What an injected fault does to the intercepted call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The call fails with this OS errno (the hook surfaces it as
    /// `io::Error::from_raw_os_error`, so `.kind()` matching in the real
    /// error arms applies unchanged).
    Errno(i32),
    /// A read/write/mmap succeeds but only for the first `n` bytes.
    Short(usize),
    /// A read observes end-of-stream (returns 0 bytes).
    Eof,
}

/// When a rule fires, in terms of the per-op call count (0-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// Exactly the `n`-th call.
    At(u64),
    /// Calls in `[start, end)`.
    Range(u64, u64),
    /// Every `k`-th call (`count % k == 0`); `Every(1)` ≡ `Always`.
    Every(u64),
    /// Every call.
    Always,
}

impl Trigger {
    /// Whether this trigger fires on the given 0-based per-op call count.
    pub fn matches(&self, count: u64) -> bool {
        match *self {
            Trigger::At(n) => count == n,
            Trigger::Range(start, end) => count >= start && count < end,
            Trigger::Every(k) => k != 0 && count.is_multiple_of(k),
            Trigger::Always => true,
        }
    }
}

/// One scripted fault: `fault` fires whenever `trigger` matches the
/// per-`op` call count. Rules are consulted in insertion order; the first
/// match wins.
#[derive(Clone, Copy, Debug)]
pub struct Rule {
    pub op: Op,
    pub trigger: Trigger,
    pub fault: Fault,
}

/// The outcome of [`check`]: what the call site should do.
#[derive(Debug)]
pub enum Verdict {
    /// No fault — perform the real operation.
    Proceed,
    /// Perform the operation, but clamped to at most this many bytes.
    Short(usize),
    /// Skip the operation and fail with this error.
    Fail(io::Error),
    /// Skip the operation and report end-of-stream (0 bytes).
    Eof,
}

#[cfg(feature = "fault-injection")]
pub use imp::{exclusive, install, install_global, Script, ScriptGuard};

#[cfg(feature = "fault-injection")]
mod imp {
    use super::{Fault, Op, Rule, Trigger, Verdict, NUM_OPS};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard};

    /// An installed fault script: an ordered rule table plus one call
    /// counter per [`Op`] lane. Build with [`Script::new`] + [`Script::on`],
    /// then activate with [`install`] (this thread only) or
    /// [`install_global`] (all threads, e.g. a spawned reactor).
    #[derive(Debug, Default)]
    pub struct Script {
        rules: Vec<Rule>,
        counters: [AtomicU64; NUM_OPS],
    }

    impl Script {
        pub fn new() -> Script {
            Script { rules: Vec::new(), counters: std::array::from_fn(|_| AtomicU64::new(0)) }
        }

        /// Appends a rule (first matching rule wins).
        pub fn on(mut self, op: Op, trigger: Trigger, fault: Fault) -> Script {
            self.rules.push(Rule { op, trigger, fault });
            self
        }

        /// Consumes one call on `op`'s counter and returns the verdict.
        fn apply(&self, op: Op) -> Verdict {
            let count = self.counters[op as usize].fetch_add(1, Ordering::SeqCst);
            for rule in &self.rules {
                if rule.op == op && rule.trigger.matches(count) {
                    return match rule.fault {
                        Fault::Errno(errno) => {
                            Verdict::Fail(std::io::Error::from_raw_os_error(errno))
                        }
                        Fault::Short(n) => Verdict::Short(n),
                        Fault::Eof => Verdict::Eof,
                    };
                }
            }
            Verdict::Proceed
        }

        /// How many times `op` has been checked against this script.
        pub fn calls(&self, op: Op) -> u64 {
            self.counters[op as usize].load(Ordering::SeqCst)
        }
    }

    thread_local! {
        static TLS_SCRIPT: RefCell<Option<Arc<Script>>> = const { RefCell::new(None) };
    }

    static GLOBAL_SCRIPT: Mutex<Option<Arc<Script>>> = Mutex::new(None);

    /// Serialises tests that install global scripts: hold the returned
    /// guard for the whole test so two `#[test]` threads in one binary
    /// never see each other's faults.
    static SERIAL: Mutex<()> = Mutex::new(());

    pub fn exclusive() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Uninstalls its script on drop; exposes the script's call counters
    /// so tests can assert how far the failure sequence ran.
    #[must_use = "dropping the guard uninstalls the script immediately"]
    pub struct ScriptGuard {
        script: Arc<Script>,
        global: bool,
    }

    impl ScriptGuard {
        /// How many times `op` was checked while this script was live.
        pub fn calls(&self, op: Op) -> u64 {
            self.script.calls(op)
        }
    }

    impl Drop for ScriptGuard {
        fn drop(&mut self) {
            if self.global {
                *GLOBAL_SCRIPT.lock().unwrap_or_else(|p| p.into_inner()) = None;
            } else {
                let _ = TLS_SCRIPT.try_with(|slot| slot.borrow_mut().take());
            }
        }
    }

    /// Installs `script` for the **current thread** only. Use for unit
    /// tests that drive the faulted code on the test thread itself.
    pub fn install(script: Script) -> ScriptGuard {
        let script = Arc::new(script);
        TLS_SCRIPT.with(|slot| *slot.borrow_mut() = Some(Arc::clone(&script)));
        ScriptGuard { script, global: false }
    }

    /// Installs `script` for **every thread without a thread-local
    /// script** — the way to fault a spawned reactor. Pair with
    /// [`exclusive`] so concurrent tests in one binary don't interleave.
    pub fn install_global(script: Script) -> ScriptGuard {
        let script = Arc::new(script);
        *GLOBAL_SCRIPT.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&script));
        ScriptGuard { script, global: true }
    }

    pub(super) fn check_installed(op: Op) -> Verdict {
        // A thread-local script shadows the global one; TLS teardown
        // (thread exit) falls through to the global table.
        let tls = TLS_SCRIPT.try_with(|slot| slot.borrow().as_ref().map(Arc::clone)).ok().flatten();
        if let Some(script) = tls {
            return script.apply(op);
        }
        let global = GLOBAL_SCRIPT.lock().unwrap_or_else(|p| p.into_inner()).clone();
        match global {
            Some(script) => script.apply(op),
            None => Verdict::Proceed,
        }
    }

    #[allow(dead_code)]
    fn _rule_fields_are_public(r: Rule) -> (Op, Trigger, Fault) {
        (r.op, r.trigger, r.fault)
    }
}

/// The hot-path hook: every faultable call site asks "what should this
/// call do?". With the `fault-injection` feature off this is a constant
/// [`Verdict::Proceed`] and the whole call-site match folds away.
#[cfg(feature = "fault-injection")]
#[inline]
pub fn check(op: Op) -> Verdict {
    imp::check_installed(op)
}

/// The hot-path hook (disabled build): always [`Verdict::Proceed`].
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn check(_op: Op) -> Verdict {
    Verdict::Proceed
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn triggers_match_expected_counts() {
        assert!(Trigger::At(3).matches(3) && !Trigger::At(3).matches(2));
        assert!(Trigger::Range(1, 4).matches(1) && Trigger::Range(1, 4).matches(3));
        assert!(!Trigger::Range(1, 4).matches(4));
        assert!(Trigger::Every(2).matches(0) && Trigger::Every(2).matches(4));
        assert!(!Trigger::Every(2).matches(3));
        assert!(!Trigger::Every(0).matches(0), "Every(0) never fires");
        assert!(Trigger::Always.matches(u64::MAX));
    }

    #[test]
    fn thread_local_script_fires_in_order_and_uninstalls_on_drop() {
        let _serial = exclusive();
        let guard = install(
            Script::new()
                .on(Op::Read, Trigger::At(1), Fault::Errno(EINTR))
                .on(Op::Read, Trigger::At(2), Fault::Short(1))
                .on(Op::Read, Trigger::At(3), Fault::Eof),
        );
        assert!(matches!(check(Op::Read), Verdict::Proceed));
        match check(Op::Read) {
            Verdict::Fail(e) => assert_eq!(e.kind(), io::ErrorKind::Interrupted),
            other => panic!("expected EINTR, got {other:?}"),
        }
        assert!(matches!(check(Op::Read), Verdict::Short(1)));
        assert!(matches!(check(Op::Read), Verdict::Eof));
        assert!(matches!(check(Op::Read), Verdict::Proceed));
        // Ops are independent lanes.
        assert!(matches!(check(Op::Write), Verdict::Proceed));
        assert_eq!(guard.calls(Op::Read), 5);
        assert_eq!(guard.calls(Op::Write), 1);
        drop(guard);
        assert!(matches!(check(Op::Read), Verdict::Proceed));
    }

    #[test]
    fn global_script_reaches_other_threads_and_first_rule_wins() {
        let _serial = exclusive();
        let guard =
            install_global(Script::new().on(Op::Accept, Trigger::At(0), Fault::Errno(EMFILE)).on(
                Op::Accept,
                Trigger::Always,
                Fault::Errno(ECONNRESET),
            ));
        let kinds: Vec<io::ErrorKind> = std::thread::spawn(|| {
            (0..2)
                .map(|_| match check(Op::Accept) {
                    Verdict::Fail(e) => e.kind(),
                    other => panic!("expected Fail, got {other:?}"),
                })
                .collect()
        })
        .join()
        .unwrap();
        // EMFILE has no dedicated stable ErrorKind; match via raw errno
        // semantics: first call EMFILE rule, second the reset catch-all.
        assert_ne!(kinds[0], io::ErrorKind::ConnectionReset);
        assert_eq!(kinds[1], io::ErrorKind::ConnectionReset);
        assert_eq!(guard.calls(Op::Accept), 2);
        drop(guard);
        assert!(matches!(check(Op::Accept), Verdict::Proceed));
    }

    #[test]
    fn thread_local_shadows_global() {
        let _serial = exclusive();
        let _global =
            install_global(Script::new().on(Op::Mmap, Trigger::Always, Fault::Errno(ENOMEM)));
        let tls = install(Script::new());
        assert!(matches!(check(Op::Mmap), Verdict::Proceed), "empty TLS script shadows global");
        drop(tls);
        assert!(matches!(check(Op::Mmap), Verdict::Fail(_)));
    }
}
