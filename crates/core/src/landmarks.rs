//! Landmark selection strategies.
//!
//! The paper selects the top-`k` highest-degree vertices (§6.3) and names
//! better selection strategies as future work (§8). This module implements
//! the paper's choice plus two alternatives exercised by the ablation
//! benchmark: uniform random selection (the natural lower baseline) and a
//! two-hop degree heuristic (a cheap centrality proxy that counts the edges
//! reachable within two hops).

use hcl_graph::{order, CsrGraph, VertexId};
use rand_like::shuffle_first_k;

/// How to pick the landmark set `R`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LandmarkStrategy {
    /// The `k` highest-degree vertices (the paper's setting).
    TopDegree(usize),
    /// The `k` vertices with the largest sum of neighbour degrees
    /// (two-hop coverage proxy; future-work experiment).
    TopTwoHopDegree(usize),
    /// `k` distinct vertices drawn uniformly with the given seed.
    Random { k: usize, seed: u64 },
    /// An explicit, caller-provided landmark list.
    Given(Vec<VertexId>),
}

impl LandmarkStrategy {
    /// Selects the landmark set over `g` (deterministic for a fixed input).
    pub fn select(&self, g: &CsrGraph) -> Vec<VertexId> {
        match self {
            LandmarkStrategy::TopDegree(k) => order::top_degree(g, *k),
            LandmarkStrategy::TopTwoHopDegree(k) => {
                let mut score: Vec<(u64, VertexId)> = g
                    .vertices()
                    .map(|v| {
                        let two_hop: u64 = g.neighbors(v).iter().map(|&u| g.degree(u) as u64).sum();
                        (two_hop + g.degree(v) as u64, v)
                    })
                    .collect();
                score.sort_by_key(|&(s, v)| (std::cmp::Reverse(s), v));
                score.truncate((*k).min(g.num_vertices()));
                score.into_iter().map(|(_, v)| v).collect()
            }
            LandmarkStrategy::Random { k, seed } => {
                let mut ids: Vec<VertexId> = g.vertices().collect();
                let k = (*k).min(ids.len());
                shuffle_first_k(&mut ids, k, *seed);
                ids.truncate(k);
                ids
            }
            LandmarkStrategy::Given(list) => list.clone(),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LandmarkStrategy::TopDegree(_) => "top-degree",
            LandmarkStrategy::TopTwoHopDegree(_) => "two-hop-degree",
            LandmarkStrategy::Random { .. } => "random",
            LandmarkStrategy::Given(_) => "given",
        }
    }
}

/// A tiny deterministic partial Fisher–Yates shuffle (splitmix64-based), so
/// landmark selection does not pull the full `rand` dependency into this
/// crate.
mod rand_like {
    pub(super) fn shuffle_first_k(items: &mut [u32], k: usize, seed: u64) {
        let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let n = items.len();
        for i in 0..k.min(n) {
            let j = i + (next() % (n - i) as u64) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;

    #[test]
    fn top_degree_picks_hubs() {
        let g = generate::star(20);
        assert_eq!(LandmarkStrategy::TopDegree(1).select(&g), vec![0]);
    }

    #[test]
    fn two_hop_degree_prefers_hub_neighbours_over_leaves() {
        // Two stars joined by a bridge: 0 is a hub, 1 is a hub, 2 bridges.
        let mut edges = vec![(0u32, 2u32), (1, 2)];
        for v in 3..13 {
            edges.push((0, v));
        }
        for v in 13..23 {
            edges.push((1, v));
        }
        let g = hcl_graph::CsrGraph::from_edges(23, &edges);
        let picks = LandmarkStrategy::TopTwoHopDegree(3).select(&g);
        // The bridge sees both hubs' edges, beating every leaf.
        assert!(picks.contains(&2), "bridge vertex should rank in top 3: {picks:?}");
        assert!(picks.contains(&0) && picks.contains(&1));
    }

    #[test]
    fn random_is_deterministic_and_distinct() {
        let g = generate::cycle(50);
        let a = LandmarkStrategy::Random { k: 10, seed: 3 }.select(&g);
        let b = LandmarkStrategy::Random { k: 10, seed: 3 }.select(&g);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "landmarks must be distinct");
        let c = LandmarkStrategy::Random { k: 10, seed: 4 }.select(&g);
        assert_ne!(a, c);
    }

    #[test]
    fn random_clamps_k() {
        let g = generate::cycle(5);
        assert_eq!(LandmarkStrategy::Random { k: 50, seed: 1 }.select(&g).len(), 5);
    }

    #[test]
    fn given_passthrough() {
        let g = generate::cycle(5);
        assert_eq!(LandmarkStrategy::Given(vec![4, 1]).select(&g), vec![4, 1]);
    }
}
