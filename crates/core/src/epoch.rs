//! Epoch-tagged hot swapping of a [`SharedOracle`].
//!
//! A serving process wants to replace its index (new graph snapshot,
//! recomputed labelling) without dropping connections. The ingredients:
//!
//! * [`OracleEpoch`] — one immutable *generation* of the index: a
//!   [`SharedOracle`] tagged with a monotonically increasing epoch number.
//! * [`EpochCell`] — the swap point: an `RwLock<Arc<OracleEpoch>>` (std-only
//!   stand-in for `ArcSwap`). Readers clone the `Arc` out under a read lock
//!   held for two pointer ops; a swap takes the write lock just long enough
//!   to publish the next generation.
//!
//! Queries pin a generation by cloning the `Arc` once up front and using it
//! for *everything* — range validation, the graph, the labelling, the
//! precomputed sparsified view the searches traverse, and the context pool.
//! The [`SparseView`](crate::SparseView) is owned by the generation's
//! [`SharedOracle`] (built in its constructor), so a swap replaces view and
//! labelling in the same pointer store — a query can never observe a new
//! labelling with an old view or vice versa. In-flight queries therefore
//! finish on the epoch they started on, while new queries observe the new
//! one; the old generation is freed when its last in-flight query drops its
//! `Arc`. Consumers that cache answers must tag them with
//! [`OracleEpoch::epoch`] so answers computed against one generation can
//! never be served under another (`hcl-server`'s sharded cache does exactly
//! that).

use crate::shared::SharedOracle;
use std::sync::{Arc, RwLock};

/// One immutable generation of the serving index.
///
/// Generic over the index type so serving stacks can swap more than the
/// default in-memory [`SharedOracle`] — `hcl-server` instantiates it with
/// an enum covering both the in-memory oracle and `hcl-store`'s
/// memory-mapped packed index, making a reload a *remap* (publish a new
/// mapping) rather than a rebuild.
#[derive(Debug)]
pub struct OracleEpoch<T = SharedOracle> {
    epoch: u64,
    index: T,
}

impl<T> OracleEpoch<T> {
    /// Tags `index` as generation `epoch`.
    pub fn new(epoch: u64, index: T) -> Self {
        OracleEpoch { epoch, index }
    }

    /// The generation number (0 for the index the process started with).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The serving index of this generation.
    pub fn index(&self) -> &T {
        &self.index
    }
}

impl OracleEpoch<SharedOracle> {
    /// The oracle of this generation.
    pub fn oracle(&self) -> &SharedOracle {
        &self.index
    }

    /// Number of vertices queries against this generation may address.
    pub fn num_vertices(&self) -> usize {
        self.index.num_vertices()
    }
}

/// The swap point for hot index reload; see the module docs.
#[derive(Debug)]
pub struct EpochCell<T = SharedOracle> {
    current: RwLock<Arc<OracleEpoch<T>>>,
}

impl<T> EpochCell<T> {
    /// A cell holding `index` as generation 0.
    pub fn new(index: T) -> Self {
        EpochCell { current: RwLock::new(Arc::new(OracleEpoch::new(0, index))) }
    }

    /// Pins the current generation. The returned `Arc` keeps that
    /// generation alive (graph, labelling, context pool — or file mapping)
    /// even across a concurrent [`swap`](Self::swap).
    pub fn load(&self) -> Arc<OracleEpoch<T>> {
        Arc::clone(&self.current.read().expect("epoch cell poisoned"))
    }

    /// The current generation number.
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("epoch cell poisoned").epoch
    }

    /// Publishes `index` as the next generation and returns it. Queries
    /// that already pinned the previous generation finish on it; every
    /// subsequent [`load`](Self::load) observes the new one.
    pub fn swap(&self, index: T) -> Arc<OracleEpoch<T>> {
        let mut current = self.current.write().expect("epoch cell poisoned");
        let next = Arc::new(OracleEpoch::new(current.epoch + 1, index));
        *current = Arc::clone(&next);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::HighwayCoverLabelling;
    use hcl_graph::generate;

    fn oracle(n: usize, seed: u64) -> SharedOracle {
        let g = Arc::new(generate::barabasi_albert(n, 3, seed));
        let landmarks = hcl_graph::order::top_degree(&g, 4);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        SharedOracle::new(g, Arc::new(labelling))
    }

    #[test]
    fn swap_bumps_epoch_and_pins_old_generations() {
        let cell = EpochCell::new(oracle(60, 1));
        assert_eq!(cell.epoch(), 0);
        let pinned = cell.load();
        assert_eq!(pinned.epoch(), 0);
        let d_old = pinned.oracle().distance(0, 59);

        let swapped = cell.swap(oracle(80, 2));
        assert_eq!(swapped.epoch(), 1);
        assert_eq!(cell.epoch(), 1);
        assert_eq!(cell.load().num_vertices(), 80);

        // The pinned generation still answers exactly as before the swap.
        assert_eq!(pinned.num_vertices(), 60);
        assert_eq!(pinned.oracle().distance(0, 59), d_old);
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_generation() {
        let cell = Arc::new(EpochCell::new(oracle(50, 3)));
        let sizes = [50usize, 70, 90];
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    for _ in 0..300 {
                        let snap = cell.load();
                        // Epoch, oracle, and sparse view travel together:
                        // the sizes always match the generation's tag.
                        assert_eq!(snap.num_vertices(), sizes[snap.epoch() as usize]);
                        assert_eq!(
                            snap.oracle().sparse_view().num_vertices(),
                            snap.num_vertices(),
                            "view must belong to the pinned generation"
                        );
                        assert!(snap.oracle().distance(0, 1).is_some());
                    }
                });
            }
            scope.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                cell.swap(oracle(70, 4));
                std::thread::sleep(std::time::Duration::from_millis(2));
                cell.swap(oracle(90, 5));
            });
        });
        assert_eq!(cell.epoch(), 2);
    }
}
