//! The paper's worked example graph (Figure 2), reconstructed from the
//! constraints in Examples 3.3–4.3 and Figures 2–4.
//!
//! The reconstruction is validated by the fact that it reproduces *every*
//! number the paper reports for it:
//!
//! * the label table of Figure 2(c) entry-for-entry, with total labelling
//!   size LS = 13 (Figure 3);
//! * the highway distances used in Example 4.2 (δH(5,1) = δH(9,1) = 1);
//! * the upper bound d⊤(2, 11) = 3 and exact distance 3 (Examples 4.2/4.3);
//! * the pruned-landmark-labelling sizes of Figure 4: LS = 25 under the
//!   landmark order ⟨1, 5, 9⟩ and LS = 30 under ⟨9, 5, 1⟩.
//!
//! Paper vertex ids are 1-based; this module exposes the same graph 0-based
//! via [`paper_vertex`].

use hcl_graph::{CsrGraph, VertexId};

/// Number of vertices in the example graph.
pub const PAPER_N: usize = 14;

/// Maps a 1-based paper vertex id to the 0-based id used here.
#[inline]
pub fn paper_vertex(paper_id: u32) -> VertexId {
    assert!((1..=PAPER_N as u32).contains(&paper_id), "paper ids are 1..=14");
    paper_id - 1
}

/// Edge list of Figure 2(a), in 1-based paper ids.
pub const PAPER_EDGES: [(u32, u32); 21] = [
    (1, 4),
    (1, 5),
    (1, 9),
    (1, 11),
    (1, 13),
    (1, 14),
    (5, 2),
    (5, 3),
    (5, 8),
    (5, 12),
    (9, 6),
    (9, 7),
    (9, 10),
    (2, 7),
    (2, 12),
    (2, 14),
    (4, 11),
    (4, 13),
    (10, 11),
    (3, 8),
    (6, 7),
];

/// Builds the example graph of Figure 2(a) (0-based ids).
pub fn paper_graph() -> CsrGraph {
    let edges: Vec<(VertexId, VertexId)> =
        PAPER_EDGES.iter().map(|&(u, v)| (paper_vertex(u), paper_vertex(v))).collect();
    CsrGraph::from_edges(PAPER_N, &edges)
}

/// The landmark set of Figure 2(b): vertices 1, 5 and 9 (paper ids).
pub fn paper_landmarks() -> Vec<VertexId> {
    vec![paper_vertex(1), paper_vertex(5), paper_vertex(9)]
}

/// The expected highway cover labelling of Figure 2(c), as
/// `(vertex, landmark, distance)` triples in 0-based ids.
pub fn paper_expected_labels() -> Vec<(VertexId, VertexId, u32)> {
    let raw: [(u32, u32, u32); 13] = [
        (2, 5, 1),
        (2, 9, 2),
        (3, 5, 1),
        (4, 1, 1),
        (6, 9, 1),
        (7, 5, 2),
        (7, 9, 1),
        (8, 5, 1),
        (10, 9, 1),
        (11, 1, 1),
        (12, 5, 1),
        (13, 1, 1),
        (14, 1, 1),
    ];
    raw.iter().map(|&(v, r, d)| (paper_vertex(v), paper_vertex(r), d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::connectivity;

    #[test]
    fn graph_shape() {
        let g = paper_graph();
        assert_eq!(g.num_vertices(), 14);
        assert_eq!(g.num_edges(), 21);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    fn landmark_degrees_are_hubs() {
        // The figure picks high-degree vertices as landmarks: each landmark
        // has degree >= 4 and the two biggest hubs (1 and 5) are landmarks.
        let g = paper_graph();
        for r in paper_landmarks() {
            assert!(g.degree(r) >= 4, "landmark {r} has degree {}", g.degree(r));
        }
        let top2 = hcl_graph::order::top_degree(&g, 2);
        assert_eq!(top2, vec![paper_vertex(1), paper_vertex(5)]);
    }

    #[test]
    fn key_distances_from_examples() {
        // Example 3.3: <11,1,4> is the 1-constrained shortest path between
        // 11 and 4, and the direct edge (11,4) exists.
        let g = paper_graph();
        assert!(g.has_edge(paper_vertex(11), paper_vertex(4)));
        assert!(g.has_edge(paper_vertex(11), paper_vertex(1)));
        assert!(g.has_edge(paper_vertex(1), paper_vertex(4)));
        // Example 4.3: in G \ {1,5,9}, N(2) = {7, 12, 14} and N(11) = {4, 10}.
        let spars_n = |v: u32| -> Vec<u32> {
            g.neighbors(paper_vertex(v))
                .iter()
                .copied()
                .filter(|&u| ![paper_vertex(1), paper_vertex(5), paper_vertex(9)].contains(&u))
                .map(|u| u + 1)
                .collect()
        };
        assert_eq!(spars_n(2), vec![7, 12, 14]);
        assert_eq!(spars_n(11), vec![4, 10]);
    }
}
