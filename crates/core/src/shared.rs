//! Concurrent, shareable query access to a highway cover labelling.
//!
//! The labelling and the graph it was built from are immutable after
//! construction, so queries are embarrassingly parallel — the only mutable
//! state is the per-query scratch in [`QueryContext`] (search buffers +
//! label-merge vectors). [`SharedOracle`] packages the immutable parts
//! behind `Arc`s together with a [`ContextPool`] of reusable contexts, so
//! any number of threads can call [`SharedOracle::distance`] on `&self`
//! concurrently. This is the seam the serving subsystem (`hcl-server`)
//! builds on.
//!
//! [`HlOracle`](crate::HlOracle) remains the ergonomic single-threaded
//! front door; it is a thin wrapper over a [`SharedOracle`] that borrows
//! its graph and skips the pool by holding a private context.
//!
//! ```
//! use std::sync::Arc;
//! use hcl_core::{HighwayCoverLabelling, SharedOracle};
//! use hcl_core::landmarks::LandmarkStrategy;
//! use hcl_graph::generate;
//!
//! let g = Arc::new(generate::barabasi_albert(1_000, 4, 7));
//! let landmarks = LandmarkStrategy::TopDegree(8).select(&g);
//! let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
//! let oracle = SharedOracle::new(Arc::clone(&g), Arc::new(labelling));
//!
//! // `&self` queries: clone the handle into any number of threads.
//! std::thread::scope(|scope| {
//!     for _ in 0..4 {
//!         let oracle = &oracle;
//!         scope.spawn(move || {
//!             assert!(oracle.distance(1, 999).is_some());
//!         });
//!     }
//! });
//! ```

use crate::build::HighwayCoverLabelling;
use crate::query::QueryContext;
use crate::sparse::SparseView;
use hcl_graph::{CsrGraph, VertexId};
use std::borrow::Borrow;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};

/// A pool of reusable [`QueryContext`]s for one graph size.
///
/// Checking out pops a context (or creates one when the pool is dry);
/// dropping the guard returns it. A plain mutex around a `Vec` is
/// deliberately simple: the critical section is two pointer moves, and at
/// serving concurrency the real cost is the query itself.
#[derive(Debug)]
pub struct ContextPool {
    num_vertices: usize,
    /// Contexts currently checked in.
    idle: Mutex<Vec<QueryContext>>,
    /// Upper bound on contexts retained at checkin; beyond this, returned
    /// contexts are dropped instead of pooled (guards against a burst of
    /// threads pinning memory forever).
    max_idle: usize,
}

impl ContextPool {
    /// Default cap on retained contexts.
    pub const DEFAULT_MAX_IDLE: usize = 256;

    /// A pool producing contexts for graphs with `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        ContextPool { num_vertices, idle: Mutex::new(Vec::new()), max_idle: Self::DEFAULT_MAX_IDLE }
    }

    /// Checks a context out; it returns to the pool when the guard drops.
    pub fn checkout(&self) -> PooledContext<'_> {
        let ctx = self
            .idle
            .lock()
            .expect("context pool poisoned")
            .pop()
            .unwrap_or_else(|| QueryContext::new(self.num_vertices));
        PooledContext { pool: self, ctx: Some(ctx) }
    }

    /// Number of contexts currently idle in the pool.
    pub fn idle_count(&self) -> usize {
        self.idle.lock().expect("context pool poisoned").len()
    }

    fn checkin(&self, ctx: QueryContext) {
        let mut idle = self.idle.lock().expect("context pool poisoned");
        if idle.len() < self.max_idle {
            idle.push(ctx);
        }
    }
}

/// RAII guard over a pooled [`QueryContext`]; derefs to the context and
/// returns it to its [`ContextPool`] on drop.
#[derive(Debug)]
pub struct PooledContext<'p> {
    pool: &'p ContextPool,
    ctx: Option<QueryContext>,
}

impl Deref for PooledContext<'_> {
    type Target = QueryContext;

    fn deref(&self) -> &QueryContext {
        self.ctx.as_ref().expect("context taken")
    }
}

impl DerefMut for PooledContext<'_> {
    fn deref_mut(&mut self) -> &mut QueryContext {
        self.ctx.as_mut().expect("context taken")
    }
}

impl Drop for PooledContext<'_> {
    fn drop(&mut self) {
        if let Some(ctx) = self.ctx.take() {
            self.pool.checkin(ctx);
        }
    }
}

/// A thread-safe exact-distance oracle: immutable labelling + graph behind
/// shared ownership, queries on `&self`.
///
/// `G` is the graph storage — [`Arc<CsrGraph>`] by default (the serving
/// case), or `&CsrGraph` when a caller already owns the graph
/// ([`HlOracle`](crate::HlOracle) uses that flavour). `SharedOracle` is
/// `Send + Sync` for any sendable `G`, so one instance can serve every
/// connection handler and worker thread in a process.
#[derive(Debug)]
pub struct SharedOracle<G: Borrow<CsrGraph> = Arc<CsrGraph>> {
    graph: G,
    labelling: Arc<HighwayCoverLabelling>,
    /// The precomputed sparsified graph `G[V∖R]` every bounded search
    /// traverses. Built once at construction, so it always corresponds to
    /// exactly this graph + labelling pair and swaps atomically with them
    /// under hot reload.
    sparse: Arc<SparseView>,
    pool: ContextPool,
}

impl SharedOracle {
    /// The owning flavour used by servers: both halves behind `Arc`.
    pub fn new(graph: Arc<CsrGraph>, labelling: Arc<HighwayCoverLabelling>) -> Self {
        SharedOracle::with_graph(graph, labelling)
    }

    /// Assembles an oracle from already-consistent parts — the incremental
    /// update path (`hcl_core::update::apply_edit`) produces a patched
    /// sparse view alongside the new graph and labelling, so rebuilding the
    /// view here would throw the `O(affected)` work away. The caller
    /// guarantees the triple belongs together (the same invariant
    /// [`with_graph`](Self::with_graph) establishes internally).
    pub fn from_parts(
        graph: Arc<CsrGraph>,
        labelling: Arc<HighwayCoverLabelling>,
        sparse: Arc<SparseView>,
    ) -> Self {
        let pool = ContextPool::new(graph.num_vertices());
        SharedOracle { graph, labelling, sparse, pool }
    }
}

impl<G: Borrow<CsrGraph>> SharedOracle<G> {
    /// Wraps a labelling built over `graph` (any storage implementing
    /// `Borrow<CsrGraph>`).
    pub fn with_graph(graph: G, labelling: impl Into<Arc<HighwayCoverLabelling>>) -> Self {
        let labelling = labelling.into();
        let sparse = Arc::new(SparseView::build(graph.borrow(), labelling.highway()));
        let pool = ContextPool::new(graph.borrow().num_vertices());
        SharedOracle { graph, labelling, sparse, pool }
    }

    /// The graph the labelling was built from.
    pub fn graph(&self) -> &CsrGraph {
        self.graph.borrow()
    }

    /// The precomputed sparsified graph `G[V∖R]` the query path traverses.
    pub fn sparse_view(&self) -> &SparseView {
        &self.sparse
    }

    /// The underlying labelling.
    pub fn labelling(&self) -> &HighwayCoverLabelling {
        &self.labelling
    }

    /// A new shared handle to the labelling (cheap; no label data copied).
    pub fn labelling_arc(&self) -> Arc<HighwayCoverLabelling> {
        Arc::clone(&self.labelling)
    }

    /// The context pool (exposed so long-lived workers can hold one context
    /// across many queries instead of checking out per query).
    pub fn context_pool(&self) -> &ContextPool {
        &self.pool
    }

    /// Number of vertices queries may address.
    pub fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    /// Exact distance between `s` and `t` (`None` when disconnected),
    /// using a pooled context. Callable concurrently from any number of
    /// threads. The bounded search runs on the precomputed [`SparseView`]
    /// — no skip predicate, no rank lookups.
    pub fn distance(&self, s: VertexId, t: VertexId) -> Option<u32> {
        let mut ctx = self.pool.checkout();
        self.labelling.distance_sparse(&self.sparse, &mut ctx, s, t)
    }

    /// Exact distance using a caller-held context (the zero-overhead path
    /// for worker loops). Runs on the [`SparseView`].
    pub fn distance_with(&self, ctx: &mut QueryContext, s: VertexId, t: VertexId) -> Option<u32> {
        self.labelling.distance_sparse(&self.sparse, ctx, s, t)
    }

    /// [`distance_with`](Self::distance_with) plus per-phase wall-clock
    /// accounting (label merge vs bounded search), for the server's
    /// cumulative `METRICS` phase counters.
    pub fn distance_with_timed(
        &self,
        ctx: &mut QueryContext,
        s: VertexId,
        t: VertexId,
    ) -> (Option<u32>, crate::storage::QueryPhases) {
        self.labelling.distance_sparse_timed(&self.sparse, ctx, s, t)
    }

    /// The query upper bound `d⊤(s, t)` (Equation 4), using a pooled
    /// context.
    pub fn upper_bound(&self, s: VertexId, t: VertexId) -> u32 {
        let mut ctx = self.pool.checkout();
        self.labelling.upper_bound_with(&mut ctx, s, t)
    }

    /// Answers a batch across `num_threads` scoped worker threads
    /// (0 = all cores), preserving input order. Each worker queries the
    /// [`SparseView`] with a context checked out of this oracle's
    /// persistent pool, so repeated batches allocate no per-call contexts.
    pub fn batch_distances(
        &self,
        pairs: &[(VertexId, VertexId)],
        num_threads: usize,
    ) -> Vec<Option<u32>> {
        // Capture only the Sync halves (graph storage `G` need not be).
        let (labelling, sparse) = (&*self.labelling, &*self.sparse);
        crate::query::batch_over(&self.pool, pairs, num_threads, |ctx, s, t| {
            labelling.distance_sparse(sparse, ctx, s, t)
        })
    }

    /// Recovers the labelling, cloning only if other `Arc` handles exist.
    pub fn into_labelling(self) -> HighwayCoverLabelling {
        Arc::try_unwrap(self.labelling).unwrap_or_else(|arc| (*arc).clone())
    }
}

impl<G: Borrow<CsrGraph> + Clone> Clone for SharedOracle<G> {
    /// Clones the handle (shared labelling and sparse view, fresh context
    /// pool).
    fn clone(&self) -> Self {
        SharedOracle {
            graph: self.graph.clone(),
            labelling: Arc::clone(&self.labelling),
            sparse: Arc::clone(&self.sparse),
            pool: ContextPool::new(self.graph.borrow().num_vertices()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::{generate, traversal, INF};

    fn shared_oracle(n: usize, deg: usize, seed: u64, k: usize) -> SharedOracle {
        let g = Arc::new(generate::barabasi_albert(n, deg, seed));
        let landmarks = hcl_graph::order::top_degree(&g, k);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        SharedOracle::new(g, Arc::new(labelling))
    }

    #[test]
    fn shared_oracle_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedOracle>();
        assert_send_sync::<SharedOracle<&'static CsrGraph>>();
        assert_send_sync::<ContextPool>();
    }

    #[test]
    fn pool_reuses_contexts() {
        let pool = ContextPool::new(10);
        assert_eq!(pool.idle_count(), 0);
        {
            let _a = pool.checkout();
            let _b = pool.checkout();
            assert_eq!(pool.idle_count(), 0);
        }
        assert_eq!(pool.idle_count(), 2);
        {
            let _c = pool.checkout();
            assert_eq!(pool.idle_count(), 1);
        }
        assert_eq!(pool.idle_count(), 2);
    }

    #[test]
    fn shared_distance_matches_ground_truth() {
        let oracle = shared_oracle(300, 4, 11, 10);
        for s in (0..300u32).step_by(17) {
            let truth = traversal::bfs_distances(oracle.graph(), s);
            for t in 0..300u32 {
                let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
                assert_eq!(oracle.distance(s, t), expect, "{s}->{t}");
            }
        }
    }

    #[test]
    fn borrowed_graph_flavour_works() {
        let g = generate::erdos_renyi(120, 300, 3);
        let landmarks = hcl_graph::order::top_degree(&g, 6);
        let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let oracle: SharedOracle<&CsrGraph> = SharedOracle::with_graph(&g, labelling);
        let mut space = hcl_graph::SearchSpace::new(g.num_vertices());
        for (s, t) in [(0u32, 119u32), (5, 5), (17, 80)] {
            assert_eq!(oracle.distance(s, t), space.bibfs_distance(&g, s, t));
        }
    }

    #[test]
    fn into_labelling_round_trips() {
        let oracle = shared_oracle(100, 3, 5, 4);
        let d = oracle.distance(0, 99);
        let labelling = oracle.into_labelling();
        let g = generate::barabasi_albert(100, 3, 5);
        let mut ctx = QueryContext::new(g.num_vertices());
        assert_eq!(labelling.distance_with(&g, &mut ctx, 0, 99), d);
    }

    #[test]
    fn clone_shares_labelling() {
        let oracle = shared_oracle(80, 3, 9, 4);
        let clone = oracle.clone();
        for (s, t) in [(0u32, 79u32), (3, 41)] {
            assert_eq!(oracle.distance(s, t), clone.distance(s, t));
        }
    }
}
