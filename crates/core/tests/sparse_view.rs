//! The sparsified-view fast path is a pure constant-factor rewrite of the
//! skip-closure search: `distance_sparse` over the precomputed,
//! **degree-ordered** `G[V∖R]` CSR must agree with the identity-order view
//! (same sparsification, no relabelling) and with the reference
//! `distance_with` (per-edge landmark filter) on every input — every
//! generator family, disconnected graphs, single-vertex components,
//! landmark endpoints, and every landmark-set size including zero. The
//! three-way check isolates the degree relabelling as a pure layout change:
//! any disagreement pins the bug to either the sparsification or the
//! reordering.

use hcl_core::{HighwayCoverLabelling, QueryContext, SharedOracle, SparseView};
use hcl_graph::{generate, CsrGraph, VertexId};
use proptest::prelude::*;

/// Compares the degree-ordered fast path against the identity-order view
/// and the skip-closure reference on a grid of pairs that always includes
/// every landmark as an endpoint.
fn assert_paths_agree(g: &CsrGraph, landmarks: &[VertexId], tag: &str) {
    let (hcl, _) = HighwayCoverLabelling::build(g, landmarks).unwrap();
    let view = SparseView::build(g, hcl.highway());
    let ident = SparseView::identity(g, hcl.highway());
    assert_eq!(view.num_edges() + view.removed_edges(), g.num_edges(), "{tag}: edge accounting");
    assert_eq!(ident.num_edges(), view.num_edges(), "{tag}: views sparsify identically");
    let mut reference = QueryContext::new(g.num_vertices());
    let mut fast = QueryContext::new(g.num_vertices());
    let mut unordered = QueryContext::new(g.num_vertices());
    let n = g.num_vertices() as VertexId;
    let sources: Vec<VertexId> = g.vertices().step_by(7).chain(landmarks.iter().copied()).collect();
    for &s in &sources {
        for t in (0..n).step_by(3).chain(landmarks.iter().copied()) {
            let want = hcl.distance_with(g, &mut reference, s, t);
            let via_ident = hcl.distance_sparse(&ident, &mut unordered, s, t);
            let got = hcl.distance_sparse(&view, &mut fast, s, t);
            assert_eq!(via_ident, want, "{tag}: identity view {s}->{t}");
            assert_eq!(got, want, "{tag}: degree-ordered view {s}->{t}");
        }
    }
}

#[test]
fn sparse_path_matches_reference_on_all_families() {
    let families: Vec<(&str, CsrGraph)> = vec![
        ("erdos_renyi", generate::erdos_renyi(70, 150, 1)),
        ("barabasi_albert", generate::barabasi_albert(90, 3, 2)),
        ("watts_strogatz", generate::watts_strogatz(80, 4, 0.2, 3)),
        ("web_copying", generate::web_copying(100, 4, 0.3, 4)),
        ("random_tree", generate::random_tree(60, 5)),
        ("grid", generate::grid(8, 9)),
        ("path", generate::path(40)),
        ("cycle", generate::cycle(30)),
        (
            "disconnected",
            CsrGraph::from_edges(12, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (9, 10)]),
        ),
        // Every vertex its own component: the degree order has nothing but
        // ties, so this pins down the by-id tiebreak on all-zero degrees.
        ("edgeless", CsrGraph::from_edges(6, &[])),
        // One non-trivial component surrounded by single-vertex components.
        ("mostly_isolated", CsrGraph::from_edges(10, &[(4, 5), (5, 6)])),
    ];
    for (name, g) in &families {
        for k in [0usize, 1, 4, 10] {
            let landmarks = hcl_graph::order::top_degree(g, k);
            assert_paths_agree(g, &landmarks, &format!("{name} k={k}"));
        }
    }
}

#[test]
fn shared_oracle_view_agrees_with_reference_labelling_path() {
    let g = generate::barabasi_albert(300, 4, 19);
    let landmarks = hcl_graph::order::top_degree(&g, 10);
    let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
    let reference = hcl.clone();
    let oracle: SharedOracle<&CsrGraph> = SharedOracle::with_graph(&g, hcl);
    let mut ctx = QueryContext::new(g.num_vertices());
    for s in g.vertices().step_by(11) {
        for t in g.vertices().step_by(5) {
            assert_eq!(
                oracle.distance(s, t),
                reference.distance_with(&g, &mut ctx, s, t),
                "{s}->{t}"
            );
        }
    }
    // Batches take the same fast path.
    let pairs: Vec<(u32, u32)> = (0..200).map(|i| ((i * 7) % 300, (i * 13 + 1) % 300)).collect();
    let mut expect = Vec::new();
    for &(s, t) in &pairs {
        expect.push(reference.distance_with(&g, &mut ctx, s, t));
    }
    for threads in [1usize, 2, 4] {
        assert_eq!(oracle.batch_distances(&pairs, threads), expect, "threads {threads}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random instances across generator families with random landmark
    /// counts: the degree-ordered fast path, the identity-order view, and
    /// the skip-closure reference agree on a random sample of pairs
    /// (landmark endpoints included by construction). Erdős–Rényi draws
    /// below the connectivity threshold, so disconnected graphs and
    /// single-vertex components arise organically.
    #[test]
    fn sparse_path_matches_reference_on_random_instances(
        n in 10usize..120,
        extra_edges in 0usize..200,
        k in 0usize..12,
        family in 0u8..3,
        seed in 0u64..1000,
    ) {
        let g = match family {
            0 => generate::erdos_renyi(n, n / 2 + extra_edges, seed),
            1 => generate::barabasi_albert(n, 1 + extra_edges % 4, seed),
            _ => generate::random_tree(n, seed),
        };
        let landmarks = hcl_graph::order::top_degree(&g, k.min(n));
        let (hcl, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
        let view = SparseView::build(&g, hcl.highway());
        let ident = SparseView::identity(&g, hcl.highway());
        let mut reference = QueryContext::new(g.num_vertices());
        let mut fast = QueryContext::new(g.num_vertices());
        let mut unordered = QueryContext::new(g.num_vertices());
        let nv = g.num_vertices() as u64;
        for i in 0..64u64 {
            // Deterministic pair stream biased to touch landmarks.
            let s = if i % 5 == 0 && !landmarks.is_empty() {
                landmarks[(i / 5) as usize % landmarks.len()]
            } else {
                ((i.wrapping_mul(2654435761).wrapping_add(seed)) % nv) as u32
            };
            let t = ((i.wrapping_mul(40503).wrapping_add(seed * 7 + 1)) % nv) as u32;
            let want = hcl.distance_with(&g, &mut reference, s, t);
            let via_ident = hcl.distance_sparse(&ident, &mut unordered, s, t);
            let got = hcl.distance_sparse(&view, &mut fast, s, t);
            prop_assert_eq!(via_ident, want, "identity: n={} k={} seed={} {}->{}", n, k, seed, s, t);
            prop_assert_eq!(got, want, "ordered: n={} k={} seed={} {}->{}", n, k, seed, s, t);
        }
    }
}
