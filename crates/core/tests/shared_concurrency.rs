//! Concurrent-correctness tests for [`SharedOracle`]: many threads
//! hammering one shared instance must all see exactly the distances a
//! single-threaded BFS computes.

use hcl_core::testing::bfs_rows;
use hcl_core::{HighwayCoverLabelling, SharedOracle};
use hcl_graph::{generate, INF};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn eight_threads_hammering_one_oracle_match_bfs() {
    const THREADS: usize = 8;
    const QUERIES_PER_THREAD: usize = 2_000;

    let g = Arc::new(generate::barabasi_albert(1_500, 5, 42));
    let n = g.num_vertices() as u32;
    let landmarks = hcl_graph::order::top_degree(&g, 16);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();
    let oracle = SharedOracle::new(Arc::clone(&g), Arc::new(labelling));

    // Single-threaded BFS ground truth from a spread of sources; every
    // thread derives its queries from these sources so each answer is
    // checkable.
    let sources: Vec<u32> = (0..n).step_by(97).collect();
    let truth = bfs_rows(&g, &sources);

    let checked = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let oracle = &oracle;
            let sources = &sources;
            let truth = &truth;
            let checked = &checked;
            scope.spawn(move || {
                // Deterministic per-thread query stream, interleaved so all
                // threads touch overlapping pairs concurrently.
                for i in 0..QUERIES_PER_THREAD {
                    let si = (i * 7 + thread) % sources.len();
                    let s = sources[si];
                    let t = ((i as u64 * 2_654_435_761 + thread as u64 * 97) % n as u64) as u32;
                    let expect = (truth[si][t as usize] != INF).then_some(truth[si][t as usize]);
                    assert_eq!(
                        oracle.distance(s, t),
                        expect,
                        "thread {thread} query {i}: d({s}, {t})"
                    );
                    // Symmetric direction exercises the other label order.
                    assert_eq!(
                        oracle.distance(t, s),
                        expect,
                        "thread {thread} query {i}: d({t}, {s})"
                    );
                    checked.fetch_add(2, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(checked.load(Ordering::Relaxed), THREADS * QUERIES_PER_THREAD * 2);

    // The pool retained contexts for reuse, but never more than the cap.
    let idle = oracle.context_pool().idle_count();
    assert!((1..=THREADS).contains(&idle), "unexpected idle context count {idle}");
}

#[test]
fn concurrent_batches_match_sequential_batches() {
    let g = Arc::new(generate::watts_strogatz(600, 6, 0.1, 9));
    let landmarks = hcl_graph::order::top_degree(&g, 10);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
    let oracle = SharedOracle::new(Arc::clone(&g), Arc::new(labelling));

    let pairs: Vec<(u32, u32)> =
        (0..500u32).map(|i| ((i * 13) % 600, (i * 31 + 7) % 600)).collect();
    let expect = oracle.batch_distances(&pairs, 1);

    std::thread::scope(|scope| {
        for threads in [2usize, 4, 8] {
            let oracle = &oracle;
            let pairs = &pairs;
            let expect = &expect;
            scope.spawn(move || {
                assert_eq!(&oracle.batch_distances(pairs, threads), expect);
            });
        }
    });
}

#[test]
fn shared_handles_disconnected_pairs_concurrently() {
    // Two components: every cross-component query must be None from every
    // thread.
    let mut edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
    edges.extend((100..199).map(|i| (i, i + 1)));
    let g = Arc::new(hcl_graph::CsrGraph::from_edges(200, &edges));
    let (labelling, _) = HighwayCoverLabelling::build(&g, &[50, 150]).unwrap();
    let oracle = SharedOracle::new(Arc::clone(&g), Arc::new(labelling));

    std::thread::scope(|scope| {
        for thread in 0..8u32 {
            let oracle = &oracle;
            scope.spawn(move || {
                for i in 0..200u32 {
                    let s = (i + thread) % 100;
                    let t = 100 + ((i * 3 + thread) % 100);
                    assert_eq!(oracle.distance(s, t), None, "{s}->{t}");
                    assert_eq!(
                        oracle.distance(s, (s + 7) % 100),
                        Some({
                            let (a, b) = ((s % 100), ((s + 7) % 100));
                            a.abs_diff(b)
                        })
                    );
                }
            });
        }
    });
}
