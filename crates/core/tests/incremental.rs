//! Differential harness for the incremental update path: random edit
//! scripts (interleaved `ADD` / `DEL` / query ops) applied through
//! `hcl_core::update::apply_edit` must be **label-equivalent** and
//! **answer-equivalent** to `HighwayCoverLabelling::build_parallel` run
//! from scratch after *every* step — the rebuild is the oracle that keeps
//! the `O(affected)` algorithm honest.
//!
//! Coverage is deliberately adversarial for an incremental scheme:
//! Erdős–Rényi draws below the connectivity threshold (disconnected
//! graphs and single-vertex components arise organically), random trees
//! make every deletion a disconnecting one, scripts are biased to touch
//! landmark-incident edges, and inserts re-join components (exercising
//! highway-matrix changes in both directions).
//!
//! The `HCL_PROPTEST_CASES` environment variable overrides the per-test
//! case count (the CI `incremental-soak` job runs 10× tier-1's default).

use hcl_core::update::{apply_edit, EdgeEdit, PairFilter};
use hcl_core::{HighwayCoverLabelling, QueryContext, SparseView};
use hcl_graph::{generate, traversal, CsrGraph, VertexId, INF};
use proptest::prelude::*;

/// Per-test case count: default for tier-1, `HCL_PROPTEST_CASES` for the
/// soak job.
fn cases(default: u32) -> ProptestConfig {
    let n =
        std::env::var("HCL_PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(default);
    ProptestConfig::with_cases(n)
}

/// A deterministic value stream for edit-script construction (the shim's
/// strategies drive the *parameters*; the script itself derives from the
/// seed so failures reproduce from the printed case alone).
struct Stream(u64);

impl Stream {
    fn next(&mut self) -> u64 {
        // xorshift64*
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Picks the next edit: deletes an existing edge or inserts an absent one,
/// optionally forced to be incident to `pin` (a landmark). Returns `None`
/// when the wanted kind is unavailable (empty or complete graph).
fn pick_edit(
    g: &CsrGraph,
    s: &mut Stream,
    want_delete: bool,
    pin: Option<VertexId>,
) -> Option<EdgeEdit> {
    let n = g.num_vertices() as u64;
    if want_delete {
        if let Some(p) = pin {
            let row = g.neighbors(p);
            if row.is_empty() {
                return None;
            }
            let q = row[(s.next() % row.len() as u64) as usize];
            return Some(EdgeEdit::Delete(p, q));
        }
        if g.num_edges() == 0 {
            return None;
        }
        let (u, v) = g.edges().nth((s.next() % g.num_edges() as u64) as usize)?;
        Some(EdgeEdit::Delete(u, v))
    } else {
        for _ in 0..64 {
            let a = pin.unwrap_or_else(|| (s.next() % n) as VertexId);
            let b = (s.next() % n) as VertexId;
            if a != b && !g.has_edge(a, b) {
                return Some(EdgeEdit::Add(a, b));
            }
        }
        None
    }
}

/// The oracle: labelling from the incremental step must equal a parallel
/// rebuild from scratch, entry for entry, and both must answer a sampled
/// pair grid (landmark endpoints included) identically — with the queries
/// running over the *patched* sparse view, so the view's correctness is
/// part of the property.
fn assert_equivalent(
    graph: &CsrGraph,
    incremental: &HighwayCoverLabelling,
    sparse: &SparseView,
    landmarks: &[VertexId],
    tag: &str,
) {
    let (fresh, _) = HighwayCoverLabelling::build_parallel(graph, landmarks, 1).unwrap();
    assert_eq!(
        incremental.highway().landmarks(),
        fresh.highway().landmarks(),
        "{tag}: landmark set drifted"
    );
    for i in 0..fresh.num_landmarks() as u32 {
        assert_eq!(incremental.highway().row(i), fresh.highway().row(i), "{tag}: highway row {i}");
    }
    for x in 0..graph.num_vertices() as VertexId {
        assert_eq!(
            incremental.labels().label(x).to_vec(),
            fresh.labels().label(x).to_vec(),
            "{tag}: label of {x}"
        );
    }
    incremental.labels().validate(incremental.highway()).unwrap();

    let n = graph.num_vertices() as VertexId;
    let mut ctx = QueryContext::new(graph.num_vertices());
    let sources: Vec<VertexId> = (0..n).step_by(5).chain(landmarks.iter().copied()).collect();
    for &s in &sources {
        let truth = traversal::bfs_distances(graph, s);
        for t in (0..n).step_by(3).chain(landmarks.iter().copied()) {
            let expect = (truth[t as usize] != INF).then_some(truth[t as usize]);
            assert_eq!(
                incremental.distance_sparse(sparse, &mut ctx, s, t),
                expect,
                "{tag}: query {s}->{t}"
            );
        }
    }
}

/// Runs `steps` random edits over `g` incrementally, checking equivalence
/// after every step. Every third step pins the edit to a landmark.
fn run_script(g: CsrGraph, k: usize, seed: u64, steps: usize, tag: &str) {
    let landmarks = hcl_graph::order::top_degree(&g, k.min(g.num_vertices()));
    let (hcl, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 1).unwrap();
    let sparse = SparseView::build(&g, hcl.highway());
    let (mut graph, mut hcl, mut sparse) = (g, hcl, sparse);
    let mut stream = Stream(seed | 1);
    let mut applied = 0usize;
    for step in 0..steps {
        let want_delete = stream.next().is_multiple_of(2);
        let pin = (step % 3 == 2 && !landmarks.is_empty())
            .then(|| landmarks[(stream.next() % landmarks.len() as u64) as usize]);
        // Fall back to the opposite kind when the wanted one is impossible
        // (deleting from an edgeless graph, inserting into a complete one).
        let Some(edit) = pick_edit(&graph, &mut stream, want_delete, pin)
            .or_else(|| pick_edit(&graph, &mut stream, !want_delete, None))
        else {
            continue;
        };
        let old_graph = graph.clone();
        let r = apply_edit(&graph, &hcl, &sparse, edit)
            .unwrap_or_else(|e| panic!("{tag} step {step}: {edit} rejected: {e}"));

        // Interleaved PairFilter check: every pair it keeps must really be
        // unchanged (the serving layer's cache-retag soundness).
        let filter = PairFilter::for_edit(&old_graph, &r.graph, edit);
        let n = graph.num_vertices() as VertexId;
        for s in (0..n).step_by(7) {
            let old_row = traversal::bfs_distances(&old_graph, s);
            let new_row = traversal::bfs_distances(&r.graph, s);
            for t in (0..n).step_by(11) {
                let cached = (old_row[t as usize] != INF).then_some(old_row[t as usize]);
                if filter.keeps(s, t, cached) {
                    assert_eq!(
                        old_row[t as usize], new_row[t as usize],
                        "{tag} step {step}: filter kept changed pair {s}->{t}"
                    );
                }
            }
        }

        assert_equivalent(
            &r.graph,
            &r.labelling,
            &r.sparse,
            &landmarks,
            &format!("{tag} step {step} ({edit})"),
        );
        graph = r.graph;
        hcl = r.labelling;
        sparse = r.sparse;
        applied += 1;
    }
    assert!(applied > 0, "{tag}: script applied no edits");
}

#[test]
fn deterministic_scripts_cover_every_family() {
    let families: Vec<(&str, CsrGraph, usize)> = vec![
        ("erdos_renyi_sparse", generate::erdos_renyi(40, 30, 3), 4),
        ("erdos_renyi_dense", generate::erdos_renyi(35, 120, 4), 6),
        ("barabasi_albert", generate::barabasi_albert(50, 3, 5), 5),
        // Trees: every deletion disconnects a component.
        ("random_tree", generate::random_tree(40, 6), 4),
        ("grid", generate::grid(6, 6), 3),
        ("path", generate::path(20), 2),
        (
            "disconnected",
            CsrGraph::from_edges(14, &[(0, 1), (1, 2), (2, 3), (5, 6), (6, 7), (9, 10), (11, 12)]),
            3,
        ),
        ("mostly_isolated", CsrGraph::from_edges(10, &[(4, 5), (5, 6)]), 2),
    ];
    for (name, g, k) in families {
        run_script(g, k, 0x9E37_79B9 ^ name.len() as u64, 8, name);
    }
}

#[test]
fn single_landmark_and_empty_landmark_sets() {
    // k = 1: the highway is 1×1 and every cover test is trivial — the
    // affected-map machinery carries the whole property.
    run_script(generate::erdos_renyi(30, 45, 9), 1, 11, 6, "k1");
    // k = 0: labels are empty everywhere; updates only maintain the graph
    // and sparse view, queries fall through to the bounded search.
    run_script(generate::erdos_renyi(25, 35, 10), 0, 13, 4, "k0");
}

#[test]
fn bridge_deletions_disconnect_and_reconnect() {
    // Two dense clusters joined by one bridge; landmarks live in both.
    let mut edges = Vec::new();
    for a in 0..8u32 {
        for b in (a + 1)..8 {
            edges.push((a, b));
        }
    }
    for a in 8..16u32 {
        for b in (a + 1)..16 {
            edges.push((a, b));
        }
    }
    edges.push((3, 12));
    let g = CsrGraph::from_edges(16, &edges);
    let landmarks = vec![0u32, 9];
    let (hcl, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 1).unwrap();
    let sparse = SparseView::build(&g, hcl.highway());

    // Sever the bridge: the landmark pair goes to INF.
    let r = apply_edit(&g, &hcl, &sparse, EdgeEdit::Delete(3, 12)).unwrap();
    assert!(r.highway_changed);
    assert_eq!(r.labelling.highway().distance(0, 1), INF);
    assert_equivalent(&r.graph, &r.labelling, &r.sparse, &landmarks, "severed");

    // Re-join elsewhere: finite again, by a different route.
    let r2 = apply_edit(&r.graph, &r.labelling, &r.sparse, EdgeEdit::Add(0, 9)).unwrap();
    assert!(r2.highway_changed);
    assert_eq!(r2.labelling.highway().distance(0, 1), 1);
    assert_equivalent(&r2.graph, &r2.labelling, &r2.sparse, &landmarks, "rejoined");
}

proptest! {
    #![proptest_config(cases(24))]

    /// The headline property: a random edit script over a random instance
    /// stays equivalent to the from-scratch parallel rebuild after every
    /// step, labels and answers both.
    #[test]
    fn edit_scripts_match_rebuild_from_scratch(
        n in 10usize..70,
        extra_edges in 0usize..120,
        k in 0usize..8,
        family in 0u8..3,
        seed in 0u64..100_000,
        steps in 1usize..7,
    ) {
        let g = match family {
            0 => generate::erdos_renyi(n, n / 2 + extra_edges, seed),
            1 => generate::barabasi_albert(n, 1 + extra_edges % 4, seed),
            _ => generate::random_tree(n, seed),
        };
        run_script(
            g,
            k,
            seed ^ 0xD1B5_4A32_D192_ED03,
            steps,
            &format!("n={n} k={k} family={family} seed={seed}"),
        );
    }
}
