//! The twelve dataset stand-ins (paper Table 1).

use hcl_graph::{connectivity, generate, CsrGraph};

/// Network category from Table 1; decides which generator is used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetworkType {
    /// Computer / internet-topology networks (Skitter, ClueWeb09).
    Computer,
    /// Social networks and wikis.
    Social,
    /// Web crawls (Indochina, it2004, uk2007).
    Web,
}

impl NetworkType {
    /// Table 1's `Type` column text.
    pub fn as_str(&self) -> &'static str {
        match self {
            NetworkType::Computer => "computer",
            NetworkType::Social => "social",
            NetworkType::Web => "web",
        }
    }
}

/// One dataset row of Table 1, with its synthetic stand-in parameters.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Network category.
    pub network_type: NetworkType,
    /// Vertex count of the real dataset.
    pub paper_n: u64,
    /// Edge count of the real dataset.
    pub paper_m: u64,
    /// Target average `m/n` (Table 1's density column), used as the
    /// generator's attachment/out-degree parameter.
    pub density: usize,
    /// Generation seed (fixed per dataset for reproducibility).
    pub seed: u64,
}

/// Default vertex count: paper size scaled down ~1000×, clamped to keep
/// every stand-in exercisable on one machine.
const MIN_N: u64 = 4_000;
const MAX_N: u64 = 400_000;

impl DatasetSpec {
    /// Vertex count of the stand-in at the given scale multiplier
    /// (`scale = 1.0` is the default ~1/1000 of the paper).
    pub fn scaled_n(&self, scale: f64) -> usize {
        let base = (self.paper_n / 1000).clamp(MIN_N, MAX_N) as f64;
        (base * scale).round().max(16.0) as usize
    }

    /// Generates the stand-in graph and extracts its largest connected
    /// component (the paper's networks are used as connected undirected
    /// graphs). Deterministic for a fixed `(self, scale)`.
    pub fn generate(&self, scale: f64) -> CsrGraph {
        let n = self.scaled_n(scale);
        let g = match self.network_type {
            NetworkType::Social | NetworkType::Computer => {
                generate::barabasi_albert(n, self.density.max(1), self.seed)
            }
            NetworkType::Web => generate::web_copying(n, self.density.max(1), 0.25, self.seed),
        };
        connectivity::largest_connected_component(&g).0
    }
}

/// All twelve Table 1 datasets, smallest to largest as in the paper.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "Skitter",
            network_type: NetworkType::Computer,
            paper_n: 1_700_000,
            paper_m: 11_000_000,
            density: 6,
            seed: 0xD5_01,
        },
        DatasetSpec {
            name: "Flickr",
            network_type: NetworkType::Social,
            paper_n: 1_700_000,
            paper_m: 16_000_000,
            density: 9,
            seed: 0xD5_02,
        },
        DatasetSpec {
            name: "Hollywood",
            network_type: NetworkType::Social,
            paper_n: 1_100_000,
            paper_m: 114_000_000,
            density: 49,
            seed: 0xD5_03,
        },
        DatasetSpec {
            name: "Orkut",
            network_type: NetworkType::Social,
            paper_n: 3_100_000,
            paper_m: 117_000_000,
            density: 38,
            seed: 0xD5_04,
        },
        DatasetSpec {
            name: "enwiki2013",
            network_type: NetworkType::Social,
            paper_n: 4_200_000,
            paper_m: 101_000_000,
            density: 22,
            seed: 0xD5_05,
        },
        DatasetSpec {
            name: "LiveJournal",
            network_type: NetworkType::Social,
            paper_n: 4_800_000,
            paper_m: 69_000_000,
            density: 9,
            seed: 0xD5_06,
        },
        DatasetSpec {
            name: "Indochina",
            network_type: NetworkType::Web,
            paper_n: 7_400_000,
            paper_m: 194_000_000,
            density: 20,
            seed: 0xD5_07,
        },
        DatasetSpec {
            name: "it2004",
            network_type: NetworkType::Web,
            paper_n: 41_000_000,
            paper_m: 1_200_000_000,
            density: 25,
            seed: 0xD5_08,
        },
        DatasetSpec {
            name: "Twitter",
            network_type: NetworkType::Social,
            paper_n: 42_000_000,
            paper_m: 1_500_000_000,
            density: 29,
            seed: 0xD5_09,
        },
        DatasetSpec {
            name: "Friendster",
            network_type: NetworkType::Social,
            paper_n: 66_000_000,
            paper_m: 1_800_000_000,
            density: 22,
            seed: 0xD5_0A,
        },
        DatasetSpec {
            name: "uk2007",
            network_type: NetworkType::Web,
            paper_n: 106_000_000,
            paper_m: 3_700_000_000,
            density: 31,
            seed: 0xD5_0B,
        },
        DatasetSpec {
            name: "ClueWeb09",
            network_type: NetworkType::Computer,
            paper_n: 2_000_000_000,
            paper_m: 8_000_000_000,
            density: 6,
            seed: 0xD5_0C,
        },
    ]
}

/// Looks a dataset up by (case-insensitive) name.
pub fn dataset_by_name(name: &str) -> Option<DatasetSpec> {
    all_datasets().into_iter().find(|d| d.name.eq_ignore_ascii_case(name))
}

/// Scale multiplier from the `HCL_SCALE` environment variable (default 1.0).
pub fn scale_from_env() -> f64 {
    std::env::var("HCL_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twelve_paper_rows() {
        let all = all_datasets();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0].name, "Skitter");
        assert_eq!(all[11].name, "ClueWeb09");
        // Unique names and seeds.
        let mut names: Vec<_> = all.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(dataset_by_name("skitter").is_some());
        assert!(dataset_by_name("UK2007").is_some());
        assert!(dataset_by_name("nope").is_none());
    }

    #[test]
    fn scaled_sizes_are_clamped_and_ordered() {
        let all = all_datasets();
        for d in &all {
            let n = d.scaled_n(1.0);
            assert!((4_000..=400_000).contains(&n), "{}: {n}", d.name);
        }
        // The paper's largest datasets stay the largest stand-ins.
        let n_of = |name: &str| dataset_by_name(name).unwrap().scaled_n(1.0);
        assert!(n_of("ClueWeb09") > n_of("Skitter"));
        assert!(n_of("uk2007") > n_of("Indochina"));
    }

    #[test]
    fn generated_standins_match_density_and_connectivity() {
        for d in all_datasets().iter().take(3) {
            let g = d.generate(0.25);
            assert!(hcl_graph::connectivity::is_connected(&g));
            let avg = g.avg_degree() / 2.0; // m/n
            let target = d.density as f64;
            assert!(
                avg > target * 0.5 && avg < target * 1.6,
                "{}: m/n = {avg:.1}, target {target}",
                d.name
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d = dataset_by_name("Flickr").unwrap();
        assert_eq!(d.generate(0.1), d.generate(0.1));
    }

    #[test]
    fn web_standins_use_copying_model() {
        let d = dataset_by_name("Indochina").unwrap();
        assert_eq!(d.network_type, NetworkType::Web);
        let g = d.generate(0.1);
        // Copying model produces heavy hubs.
        assert!(g.max_degree() > 5 * (g.avg_degree() as usize));
    }
}
