//! Evaluation workloads: synthetic stand-ins for the paper's twelve
//! real-world networks (Table 1) and the query workloads run against them.
//!
//! The original datasets (KONECT, WebGraph, SNAP, NetworkRepository dumps up
//! to 2 billion vertices) are neither redistributable nor tractable in this
//! environment, so [`datasets`] generates one synthetic graph per paper
//! dataset that preserves what the algorithms actually see: the network
//! *category* (social/computer networks → Barabási–Albert preferential
//! attachment; web crawls → a copying model with link locality), the
//! paper's edge-to-vertex ratio, a giant connected component, and the
//! small-world distance distribution of Figure 6. Vertex counts default to
//! roughly 1/1000 of the paper's (clamped), scalable via the `HCL_SCALE`
//! environment variable.
//!
//! [`queries`] reproduces the paper's workload: uniformly sampled vertex
//! pairs (100,000 in the paper; `HCL_QUERIES` here) and the distance
//! distribution over them (Figure 6).

pub mod datasets;
pub mod queries;

pub use datasets::{all_datasets, DatasetSpec, NetworkType};
pub use queries::{sample_pairs, DistanceDistribution};
