//! Query workloads: uniformly sampled vertex pairs and the Figure 6
//! distance distribution.

use hcl_graph::oracle::DistanceOracle;
use hcl_graph::{CsrGraph, SearchSpace, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples `count` uniform vertex pairs with `s != t` (the paper samples
/// 100,000 pairs from `V × V` per dataset). Deterministic in `seed`.
pub fn sample_pairs(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(n >= 2, "need at least two vertices to sample pairs");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(count);
    while pairs.len() < count {
        let s = rng.random_range(0..n as VertexId);
        let t = rng.random_range(0..n as VertexId);
        if s != t {
            pairs.push((s, t));
        }
    }
    pairs
}

/// Number of query pairs from the `HCL_QUERIES` environment variable
/// (default `default`).
pub fn queries_from_env(default: usize) -> usize {
    std::env::var("HCL_QUERIES").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Histogram of exact distances over a pair workload (Figure 6).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DistanceDistribution {
    /// `counts[d]` = number of pairs at distance `d`.
    pub counts: Vec<usize>,
    /// Pairs with no connecting path.
    pub unreachable: usize,
    /// Total pairs measured.
    pub total: usize,
}

impl DistanceDistribution {
    /// Measures the distribution with bidirectional BFS (the reference
    /// method; independent of any index).
    pub fn measure(g: &CsrGraph, pairs: &[(VertexId, VertexId)]) -> Self {
        let mut space = SearchSpace::new(g.num_vertices());
        let mut dist = DistanceDistribution::default();
        for &(s, t) in pairs {
            dist.record(space.bibfs_distance(g, s, t));
        }
        dist
    }

    /// Measures the distribution using any distance oracle.
    pub fn measure_with(oracle: &mut dyn DistanceOracle, pairs: &[(VertexId, VertexId)]) -> Self {
        let mut dist = DistanceDistribution::default();
        for &(s, t) in pairs {
            dist.record(oracle.distance(s, t));
        }
        dist
    }

    /// Adds one observation.
    pub fn record(&mut self, d: Option<u32>) {
        self.total += 1;
        match d {
            None => self.unreachable += 1,
            Some(d) => {
                let d = d as usize;
                if self.counts.len() <= d {
                    self.counts.resize(d + 1, 0);
                }
                self.counts[d] += 1;
            }
        }
    }

    /// Fraction of pairs at exactly distance `d` (Figure 6's y-axis).
    pub fn fraction(&self, d: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.counts.get(d).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// Mean distance over reachable pairs.
    pub fn mean(&self) -> f64 {
        let reachable: usize = self.counts.iter().sum();
        if reachable == 0 {
            return f64::NAN;
        }
        let sum: f64 = self.counts.iter().enumerate().map(|(d, &c)| (d * c) as f64).sum();
        sum / reachable as f64
    }

    /// Largest observed distance.
    pub fn max_distance(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcl_graph::generate;

    #[test]
    fn pairs_are_deterministic_distinct_and_in_range() {
        let a = sample_pairs(50, 200, 9);
        let b = sample_pairs(50, 200, 9);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for &(s, t) in &a {
            assert!(s < 50 && t < 50 && s != t);
        }
        assert_ne!(a, sample_pairs(50, 200, 10));
    }

    #[test]
    fn distribution_on_path_graph() {
        let g = generate::path(4); // distances 1,1,1,2,2,3 over distinct pairs
        let pairs: Vec<(u32, u32)> =
            (0..4).flat_map(|s| (0..4).filter(move |&t| s != t).map(move |t| (s, t))).collect();
        let d = DistanceDistribution::measure(&g, &pairs);
        assert_eq!(d.total, 12);
        assert_eq!(d.counts[1], 6);
        assert_eq!(d.counts[2], 4);
        assert_eq!(d.counts[3], 2);
        assert_eq!(d.unreachable, 0);
        assert!((d.fraction(1) - 0.5).abs() < 1e-12);
        assert!((d.mean() - (6.0 + 8.0 + 6.0) / 12.0).abs() < 1e-12);
        assert_eq!(d.max_distance(), 3);
    }

    #[test]
    fn distribution_counts_unreachable() {
        let g = hcl_graph::CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = DistanceDistribution::measure(&g, &[(0, 1), (0, 2), (1, 3)]);
        assert_eq!(d.unreachable, 2);
        assert_eq!(d.counts[1], 1);
    }

    #[test]
    fn small_world_standins_have_small_mean_distance() {
        let g = generate::barabasi_albert(2_000, 9, 42);
        let pairs = sample_pairs(g.num_vertices(), 500, 7);
        let d = DistanceDistribution::measure(&g, &pairs);
        // Figure 6: most pairs lie between distance 2 and 8.
        assert!(d.mean() > 1.5 && d.mean() < 8.0, "mean {}", d.mean());
        assert_eq!(d.unreachable, 0);
    }

    #[test]
    fn measure_with_oracle_agrees_with_bibfs() {
        let g = generate::erdos_renyi(60, 120, 3);
        let pairs = sample_pairs(60, 100, 1);
        let reference = DistanceDistribution::measure(&g, &pairs);
        let mut oracle = hcl_graph::SearchSpace::new(g.num_vertices());
        let mut via_record = DistanceDistribution::default();
        for &(s, t) in &pairs {
            via_record.record(oracle.bibfs_distance(&g, s, t));
        }
        assert_eq!(reference, via_record);
    }
}
