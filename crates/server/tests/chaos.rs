//! Fault-injected serving tests (`--features fault-injection`): the full
//! TCP server driven through scripted syscall failures — 1-byte reads,
//! EINTR storms on every hooked syscall, mid-frame connection resets —
//! plus the overload protections (`ERR busy` shedding, per-request
//! deadlines) asserted end to end over the wire.
//!
//! Faults fire on the reactor thread, so every script here is installed
//! globally; [`exclusive`] serialises the tests sharing that slot.

#![cfg(feature = "fault-injection")]

use hcl_core::fault::{exclusive, install_global, Fault, Op, Script, Trigger, ECONNRESET, EINTR};
use hcl_core::testing::truth_map;
use hcl_core::HighwayCoverLabelling;
use hcl_graph::CsrGraph;
use hcl_server::{Client, ClientError, QueryService, Server, ServerConfig, ServerHandle};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

const N: usize = 600;

fn serve_with_graph(config: ServerConfig) -> (ServerHandle, Arc<QueryService>, Arc<CsrGraph>) {
    let g = Arc::new(hcl_graph::generate::barabasi_albert(N, 4, 51));
    let landmarks = hcl_graph::order::top_degree(&g, 12);
    let (labelling, _) = HighwayCoverLabelling::build(&g, &landmarks).unwrap();
    let service = Arc::new(QueryService::from_parts(Arc::clone(&g), Arc::new(labelling), 1 << 10));
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    (handle, service, g)
}

fn serve(config: ServerConfig) -> (ServerHandle, Arc<QueryService>) {
    let (handle, service, _) = serve_with_graph(config);
    (handle, service)
}

/// The farthest non-adjacent workload pair — inserting this edge changes
/// the workload's own answers, so the assertions below can tell the two
/// generations apart.
fn absent_far_pair(
    g: &CsrGraph,
    truth: &HashMap<(u32, u32), Option<u32>>,
    pairs: &[(u32, u32)],
) -> (u32, u32) {
    pairs
        .iter()
        .copied()
        .filter(|&(s, t)| s != t && !g.has_edge(s, t))
        .max_by_key(|p| truth[p].unwrap_or(u32::MAX))
        .expect("workload contains a non-adjacent pair")
}

fn workload(count: usize) -> Vec<(u32, u32)> {
    (0..count as u64)
        .map(|i| (((i * 2_654_435_761) % N as u64) as u32, ((i * 97 + 1) % N as u64) as u32))
        .collect()
}

/// Ground truth computed with no faults installed.
fn truth(handle: &ServerHandle, pairs: &[(u32, u32)]) -> HashMap<(u32, u32), Option<u32>> {
    let mut client = Client::connect(handle.local_addr()).unwrap();
    pairs.iter().map(|&(s, t)| ((s, t), client.query(s, t).unwrap())).collect()
}

fn stat(body: &str, key: &str) -> u64 {
    body.split_ascii_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("missing {key} in {body}"))
        .parse()
        .unwrap()
}

/// The heart of the chaos suite: every server-side read arrives one byte
/// at a time with an EINTR every other call, every write is cut short
/// with an EINTR every third call — and every answer is still exact.
#[test]
fn one_byte_reads_and_eintr_storms_serve_exact_answers() {
    let _serial = exclusive();
    let (handle, _service) = serve(ServerConfig::default());
    let pairs = workload(40);
    let expected = truth(&handle, &pairs);

    let guard = install_global(
        Script::new()
            .on(Op::Read, Trigger::Every(2), Fault::Errno(EINTR))
            .on(Op::Read, Trigger::Always, Fault::Short(1))
            .on(Op::Write, Trigger::Every(3), Fault::Errno(EINTR))
            .on(Op::Write, Trigger::Always, Fault::Short(1)),
    );
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for &(s, t) in &pairs {
        assert_eq!(client.query(s, t).unwrap(), expected[&(s, t)], "d({s},{t}) under faults");
    }
    // Batches exercise the same fragmented wire with longer lines.
    let got = client.batch(&pairs).unwrap();
    for (&(s, t), d) in pairs.iter().zip(&got) {
        assert_eq!(*d, expected[&(s, t)], "batch d({s},{t}) under faults");
    }
    assert!(guard.calls(Op::Read) > pairs.len() as u64, "1-byte reads multiply read calls");
    assert!(guard.calls(Op::Write) > pairs.len() as u64, "1-byte writes multiply write calls");
    drop(guard);
}

/// A connection reset mid-stream kills that connection only: the client
/// observes a transport error (or a dead response), the server stays up,
/// and a fresh connection answers exactly.
#[test]
fn mid_frame_reset_is_contained_to_one_connection() {
    let _serial = exclusive();
    let (handle, _service) = serve(ServerConfig::default());
    let pairs = workload(8);
    let expected = truth(&handle, &pairs);

    let guard =
        install_global(Script::new().on(Op::Read, Trigger::At(3), Fault::Errno(ECONNRESET)));
    let mut victim = Client::connect(handle.local_addr()).unwrap();
    let mut died = false;
    for &(s, t) in &pairs {
        match victim.query(s, t) {
            Ok(d) => assert_eq!(d, expected[&(s, t)]),
            Err(ClientError::Io(_) | ClientError::Disconnected) => {
                died = true;
                break;
            }
            Err(e) => panic!("unexpected error kind: {e}"),
        }
    }
    assert!(died, "the injected reset must kill the victim connection");
    drop(guard);

    let mut fresh = Client::connect(handle.local_addr()).unwrap();
    for &(s, t) in &pairs {
        assert_eq!(fresh.query(s, t).unwrap(), expected[&(s, t)], "post-reset d({s},{t})");
    }
}

/// EINTR regressions for the remaining hooked syscalls: accept,
/// epoll_wait, and both eventfd halves all retry (or tolerate) the
/// interruption and the request flow never notices.
#[test]
fn accept_epoll_and_eventfd_eintr_are_retried() {
    let _serial = exclusive();
    let (handle, _service) = serve(ServerConfig::default());
    let pairs = workload(20);
    let expected = truth(&handle, &pairs);

    let guard = install_global(
        Script::new()
            .on(Op::Accept, Trigger::At(0), Fault::Errno(EINTR))
            .on(Op::EpollWait, Trigger::Every(2), Fault::Errno(EINTR))
            .on(Op::EventFdWrite, Trigger::Every(2), Fault::Errno(EINTR))
            .on(Op::EventFdRead, Trigger::Every(2), Fault::Errno(EINTR)),
    );
    // The first accept call eats the injected EINTR, retries, and still
    // lands this connection.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    client.ping().unwrap();
    for &(s, t) in &pairs {
        assert_eq!(client.query(s, t).unwrap(), expected[&(s, t)], "d({s},{t}) under EINTR");
    }
    assert!(guard.calls(Op::Accept) >= 2, "accept was interrupted and retried");
    assert!(guard.calls(Op::EventFdWrite) >= 1, "completions signalled through the storm");
    drop(guard);
}

/// An `UPDATE` riding the same faulted wire as the chaos query storm:
/// the request line arrives one byte at a time through an EINTR storm,
/// the ack goes back in 1-byte writes — and the patched index is still
/// exact: every post-ack answer matches BFS on the edited graph.
#[test]
fn update_under_eintr_and_short_io_applies_exactly() {
    let _serial = exclusive();
    let (handle, _service, g) = serve_with_graph(ServerConfig::default());
    let pairs = workload(24);
    let truth_old = truth_map(&g, pairs.iter().copied());
    let (u, v) = absent_far_pair(&g, &truth_old, &pairs);
    let truth_new = truth_map(&g.with_edge(u, v).unwrap(), pairs.iter().copied());
    assert_ne!(truth_old, truth_new, "the edit must move the workload's answers");

    let guard = install_global(
        Script::new()
            .on(Op::Read, Trigger::Every(2), Fault::Errno(EINTR))
            .on(Op::Read, Trigger::Always, Fault::Short(1))
            .on(Op::Write, Trigger::Every(3), Fault::Errno(EINTR))
            .on(Op::Write, Trigger::Always, Fault::Short(1)),
    );
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let (epoch, affected) = client.update(true, u, v).unwrap();
    assert_eq!(epoch, 1);
    assert!(affected > 0);
    for &(s, t) in &pairs {
        assert_eq!(client.query(s, t).unwrap(), truth_new[&(s, t)], "d({s},{t}) under faults");
    }
    drop(guard);
}

/// A connection reset racing an `UPDATE` — before the request line is
/// fully read, or after the edit applied but before the ack flushed —
/// must leave the index a *whole* generation: a fresh connection sees
/// either the fully-old or the fully-new answers (matching the epoch it
/// reports), never a mixture.
#[test]
fn mid_update_reset_leaves_a_whole_generation() {
    let _serial = exclusive();
    for reset_at in [0u64, 1, 2] {
        let (handle, service, g) = serve_with_graph(ServerConfig::default());
        let pairs = workload(16);
        let truth_old = truth_map(&g, pairs.iter().copied());
        let (u, v) = absent_far_pair(&g, &truth_old, &pairs);
        let truth_new = truth_map(&g.with_edge(u, v).unwrap(), pairs.iter().copied());

        let guard = install_global(Script::new().on(
            Op::Read,
            Trigger::At(reset_at),
            Fault::Errno(ECONNRESET),
        ));
        // The victim's UPDATE may be answered, die on the wire, or be
        // killed before it was even parsed — all three are legal; only a
        // torn index is not.
        let mut victim = Client::connect(handle.local_addr()).unwrap();
        let _ = victim.update(true, u, v);
        drop(guard);

        let mut fresh = Client::connect(handle.local_addr()).unwrap();
        let epoch = fresh.epoch().unwrap();
        let truth = match epoch {
            0 => &truth_old,
            1 => &truth_new,
            e => panic!("reset_at={reset_at}: impossible epoch {e}"),
        };
        for &(s, t) in &pairs {
            assert_eq!(
                fresh.query(s, t).unwrap(),
                truth[&(s, t)],
                "reset_at={reset_at}, epoch {epoch}: d({s},{t}) not from a whole generation"
            );
        }
        assert_eq!(
            service.metrics().snapshot().updates_applied,
            epoch,
            "counter agrees with the surviving generation"
        );
        handle.shutdown();
    }
}

/// Overload shedding over the wire: with a 4-query executor cap, a batch
/// of 5 is refused `ERR busy` before any work is queued; `STATS` and
/// `METRICS` both report the shed.
#[test]
fn flood_past_max_pending_is_shed_with_busy() {
    let (handle, _service) =
        serve(ServerConfig { max_pending: 4, batch_threads: 1, ..ServerConfig::default() });
    let mut client = Client::connect(handle.local_addr()).unwrap();

    assert_eq!(client.batch(&workload(4)).unwrap().len(), 4, "within the cap: served");
    let err = client.batch(&workload(5)).unwrap_err();
    assert_eq!(err.to_string(), "server error: busy", "wire form is `ERR busy`: {err}");

    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "shed_requests"), 1, "{stats}");
    let json = client.metrics().unwrap();
    assert!(json.contains("\"shed_requests\":1"), "{json}");
    // Shedding is not sticky: the next in-cap request is served.
    assert_eq!(client.batch(&workload(3)).unwrap().len(), 3);
}

/// Per-request deadlines over the wire: with a zero deadline every query
/// resolves `ERR deadline expired` (computing nothing), and the counter
/// shows up in `STATS` and `METRICS`.
#[test]
fn zero_request_deadline_expires_on_the_wire() {
    let (handle, service) =
        serve(ServerConfig { request_deadline: Some(Duration::ZERO), ..ServerConfig::default() });
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let err = client.query(1, 2).unwrap_err();
    assert_eq!(err.to_string(), "server error: deadline expired", "{err}");
    let stats = client.stats().unwrap();
    assert_eq!(stat(&stats, "deadline_expired"), 1, "{stats}");
    let json = client.metrics().unwrap();
    assert!(json.contains("\"deadline_expired\":1"), "{json}");

    // Lifting the deadline restores exact service on the same socket.
    service.set_request_deadline(None);
    let d = client.query(1, 2).unwrap();
    let mut fresh = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(fresh.query(1, 2).unwrap(), d);
}
