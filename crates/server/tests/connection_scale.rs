//! Connection-scale tests for the epoll reactor: the server must hold
//! hundreds of mostly-idle connections with a *fixed* number of threads
//! (one reactor + the worker pool — connections are fds, not threads),
//! answer correctly through all of them, and enforce `max_connections`
//! and `idle_timeout`.
//!
//! The thread-count assertions read `/proc/self/task`, so the three tests
//! serialise on a file-local mutex to keep each other's server threads
//! out of the measurement.

use hcl_core::testing::{ba_fixture, truth_map};
use hcl_server::{Client, QueryService, Server, ServerConfig};
use std::io::Read;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Mostly-idle connections held open concurrently. Scaled down in debug
/// builds so `cargo test -q` stays fast; the release-mode CI job proves
/// the full 256 (the acceptance bar).
const IDLE_CONNS: usize = if cfg!(debug_assertions) { 96 } else { 256 };
/// Connections actively issuing traffic alongside the idle ones.
const ACTIVE_CONNS: usize = 4;
const ROUNDS: usize = 20;

static SERIAL: Mutex<()> = Mutex::new(());

fn serialise() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn os_threads() -> usize {
    std::fs::read_dir("/proc/self/task").expect("procfs").count()
}

fn pair_for(round: usize, i: usize, n: usize) -> (u32, u32) {
    let s = ((round * 37 + i * 131 + 5) % n) as u32;
    let t = ((round * 7 + i * 61 + 1) % n) as u32;
    (s, t)
}

#[test]
fn hundreds_of_idle_connections_on_a_fixed_thread_count() {
    let _guard = serialise();
    const N: usize = 400;
    const BATCH_THREADS: usize = 2;

    let (g, labelling) = ba_fixture(N, 4, 11, 8);
    let pairs: Vec<(u32, u32)> =
        (0..ROUNDS).flat_map(|r| (0..ACTIVE_CONNS + 8).map(move |i| pair_for(r, i, N))).collect();
    let truth = truth_map(&g, pairs.iter().copied());

    let threads_before = os_threads();
    let service = Arc::new(QueryService::from_parts(g, labelling, 1 << 10));
    let config = ServerConfig {
        batch_threads: BATCH_THREADS,
        max_connections: IDLE_CONNS + ACTIVE_CONNS + 16,
        idle_timeout: Duration::ZERO, // idle on purpose; don't reap
        ..Default::default()
    };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // Open the idle herd. Each PING round-trip proves the server admitted
    // and registered the connection (not just the kernel backlog).
    let mut idle: Vec<Client> = Vec::with_capacity(IDLE_CONNS);
    for i in 0..IDLE_CONNS {
        let mut client = Client::connect(addr).unwrap_or_else(|e| panic!("connect {i}: {e}"));
        client.ping().unwrap_or_else(|e| panic!("ping {i}: {e}"));
        idle.push(client);
    }
    assert_eq!(service.metrics_snapshot().active_connections, IDLE_CONNS as u64);

    // Thread count is independent of connection count: exactly one
    // reactor thread plus the worker pool was added, no matter how many
    // sockets are open.
    let serving_threads = os_threads() - threads_before;
    assert!(
        serving_threads <= 1 + BATCH_THREADS,
        "{IDLE_CONNS} connections cost {serving_threads} threads — \
         the reactor must not spawn per connection"
    );

    // A few active connections interleave correct traffic (single,
    // batched, and pipelined) through the same reactor while the herd
    // sits idle.
    let mut active: Vec<Client> =
        (0..ACTIVE_CONNS).map(|_| Client::connect(addr).unwrap()).collect();
    for round in 0..ROUNDS {
        for (c, client) in active.iter_mut().enumerate() {
            let q = pair_for(round, c, N);
            assert_eq!(client.query(q.0, q.1).unwrap(), truth[&q], "round {round} conn {c}");

            let batch: Vec<(u32, u32)> =
                (0..4).map(|b| pair_for(round, ACTIVE_CONNS + b, N)).collect();
            let got = client.batch(&batch).unwrap();
            for (&p, d) in batch.iter().zip(&got) {
                assert_eq!(*d, truth[&p], "round {round} conn {c} batch {p:?}");
            }

            let piped: Vec<(u32, u32)> =
                (0..4).map(|b| pair_for(round, ACTIVE_CONNS + 4 + b, N)).collect();
            let got = client.pipelined_queries(&piped).unwrap();
            for (&p, d) in piped.iter().zip(&got) {
                assert_eq!(*d, truth[&p], "round {round} conn {c} pipelined {p:?}");
            }
        }
    }

    // The idle herd survived all of it.
    for (i, client) in idle.iter_mut().enumerate() {
        client.ping().unwrap_or_else(|e| panic!("idle conn {i} died: {e}"));
    }
    let snap = service.metrics_snapshot();
    assert_eq!(snap.active_connections, (IDLE_CONNS + ACTIVE_CONNS) as u64);
    assert_eq!(snap.rejected_connections, 0);
    assert_eq!(snap.timed_out_connections, 0);

    drop(idle);
    drop(active);
    handle.shutdown();
}

#[test]
fn max_connections_rejects_the_overflow_with_err_and_close() {
    let _guard = serialise();
    const CAP: usize = 8;

    let (g, labelling) = ba_fixture(120, 3, 5, 4);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let config = ServerConfig {
        batch_threads: 1,
        max_connections: CAP,
        idle_timeout: Duration::ZERO,
        ..Default::default()
    };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let mut admitted: Vec<Client> = Vec::new();
    for _ in 0..CAP {
        let mut client = Client::connect(addr).unwrap();
        client.ping().unwrap(); // round-trip ⇒ admitted
        admitted.push(client);
    }

    // One over the cap: the TCP connect succeeds (kernel backlog), but the
    // server answers a single ERR line and closes without admitting it.
    let mut over = std::net::TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut rejected = String::new();
    over.read_to_string(&mut rejected).unwrap();
    assert!(
        rejected.is_empty() || rejected.starts_with("ERR "),
        "overflow connection got {rejected:?}"
    );

    let snap = service.metrics_snapshot();
    assert_eq!(snap.active_connections, CAP as u64);
    assert_eq!(snap.rejected_connections, 1);

    // Freeing one slot lets the next client in.
    drop(admitted.pop());
    let mut retry = None;
    for _ in 0..100 {
        let mut client = Client::connect(addr).unwrap();
        if client.ping().is_ok() {
            retry = Some(client);
            break;
        }
        // The reactor may not have reaped the closed slot yet.
        std::thread::sleep(Duration::from_millis(20));
    }
    retry.expect("a freed slot must become usable again");

    handle.shutdown();
}

#[test]
fn idle_timeout_reaps_quiet_connections_but_spares_active_ones() {
    let _guard = serialise();
    let (g, labelling) = ba_fixture(120, 3, 9, 4);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let config = ServerConfig {
        batch_threads: 1,
        idle_timeout: Duration::from_millis(400),
        ..Default::default()
    };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let mut quiet = Client::connect(addr).unwrap();
    quiet.ping().unwrap();
    let mut busy = Client::connect(addr).unwrap();
    busy.ping().unwrap();

    // Keep `busy` under the timeout with steady traffic while `quiet`
    // says nothing for several timeout periods.
    for _ in 0..12 {
        std::thread::sleep(Duration::from_millis(100));
        busy.ping().expect("active connection must never be reaped");
    }

    // The quiet connection was closed by the server: the next read sees
    // EOF (or a reset), not a response.
    let err = quiet.ping();
    assert!(err.is_err(), "idle connection must have been reaped");
    let snap = service.metrics_snapshot();
    assert_eq!(snap.timed_out_connections, 1);
    assert_eq!(snap.active_connections, 1, "only the busy connection remains");

    handle.shutdown();
}
