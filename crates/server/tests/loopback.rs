//! End-to-end loopback test: a real TCP server on an ephemeral port,
//! hammered by concurrent client threads issuing mixed `QUERY`/`BATCH`
//! traffic, with every returned distance checked against single-threaded
//! BFS ground truth.

use hcl_core::HighwayCoverLabelling;
use hcl_graph::generate;
use hcl_server::{Client, QueryService, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 1_200;
const CLIENT_THREADS: usize = 4;
const ROUNDS_PER_THREAD: usize = 40;
const BATCH_SIZE: usize = 8;

/// Deterministic query stream per (thread, index). Every 5th pair is
/// thread-independent and the stream repeats with period 150, so the cache
/// sees hits both across threads and within one connection.
fn pair_for(thread: usize, i: usize) -> (u32, u32) {
    let i = i % 150;
    let thread = if i.is_multiple_of(5) { 0 } else { thread };
    let s = ((i as u64 * 2_654_435_761 + thread as u64 * 40_503) % N as u64) as u32;
    let t = ((i as u64 * 97 + thread as u64 * 31 + 1) % N as u64) as u32;
    (s, t)
}

#[test]
fn concurrent_clients_get_exact_distances() {
    let g = Arc::new(generate::barabasi_albert(N, 5, 77));
    let landmarks = hcl_graph::order::top_degree(&g, 16);
    let (labelling, _) = HighwayCoverLabelling::build_parallel(&g, &landmarks, 0).unwrap();

    // Offline BFS ground truth for exactly the pairs the clients will ask.
    let expected = hcl_core::testing::truth_map(
        &g,
        (0..CLIENT_THREADS).flat_map(|thread| {
            (0..ROUNDS_PER_THREAD * (BATCH_SIZE + 1)).map(move |i| pair_for(thread, i))
        }),
    );

    let service = Arc::new(QueryService::from_parts(Arc::clone(&g), Arc::new(labelling), 1 << 12));
    let config = ServerConfig { batch_threads: 4, ..Default::default() };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    // Each round issues 1 QUERY + 1 BATCH of 8 → 4 threads × 40 rounds × 9
    // = 1,440 distances, interleaved across connections.
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread in 0..CLIENT_THREADS {
            let expected = &expected;
            let served = &served;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.ping().expect("ping");
                for round in 0..ROUNDS_PER_THREAD {
                    let base = round * (BATCH_SIZE + 1);
                    let (qs, qt) = pair_for(thread, base);
                    let got = client.query(qs, qt).expect("query");
                    assert_eq!(got, expected[&(qs, qt)], "thread {thread} d({qs}, {qt})");

                    let pairs: Vec<(u32, u32)> =
                        (1..=BATCH_SIZE).map(|b| pair_for(thread, base + b)).collect();
                    let got = client.batch(&pairs).expect("batch");
                    for (&(s, t), d) in pairs.iter().zip(&got) {
                        assert_eq!(*d, expected[&(s, t)], "thread {thread} batch d({s}, {t})");
                    }
                    served.fetch_add(1 + BATCH_SIZE as u64, Ordering::Relaxed);
                }
            });
        }
    });
    let total = served.load(Ordering::Relaxed);
    assert_eq!(total, (CLIENT_THREADS * ROUNDS_PER_THREAD * (1 + BATCH_SIZE)) as u64);
    assert!(total >= 1_000, "the scenario must exercise at least 1000 distances");

    // Server-side accounting agrees with what the clients sent.
    let snap = service.metrics_snapshot();
    assert_eq!(snap.queries, (CLIENT_THREADS * ROUNDS_PER_THREAD) as u64);
    assert_eq!(snap.batch_requests, (CLIENT_THREADS * ROUNDS_PER_THREAD) as u64);
    assert_eq!(snap.batch_queries, (CLIENT_THREADS * ROUNDS_PER_THREAD * BATCH_SIZE) as u64);
    assert_eq!(snap.connections, CLIENT_THREADS as u64);
    let cache = service.cache_stats();
    assert_eq!(cache.hits + cache.misses, total, "every distance went through the cache");
    assert!(cache.hits > 0, "the deterministic stream repeats pairs across threads");

    handle.shutdown();
}

#[test]
fn stats_errors_and_graceful_shutdown_over_the_wire() {
    let (g, labelling) = hcl_core::testing::ba_fixture(300, 4, 5, 8);
    let service = Arc::new(QueryService::from_parts(g, labelling, 64));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).unwrap();

    // Malformed requests produce ERR without killing the connection.
    assert!(client.raw("NONSENSE").unwrap().starts_with("ERR "));
    assert!(client.raw("QUERY 1").unwrap().starts_with("ERR "));
    assert!(client.raw("QUERY 0 999999").unwrap().starts_with("ERR "), "out of range");
    assert!(client.query(0, 299).is_ok(), "connection still usable after errors");

    // STATS reflects the traffic so far.
    let stats = client.stats().unwrap();
    let get = |key: &str| -> u64 {
        stats
            .split_ascii_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{key} missing from {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(get("queries"), 1);
    assert_eq!(get("errors"), 3);
    assert_eq!(get("active_connections"), 1);
    assert_eq!(get("cache_misses"), 1);
    assert_eq!(get("epoch"), 0, "no reload has happened");
    assert_eq!(get("reloads"), 0);
    assert_eq!(get("cache_stale"), 0);

    // Graceful shutdown: BYE, then the port stops accepting.
    client.shutdown_server().unwrap();
    handle.join();
    assert!(handle.is_shutting_down());
    assert!(
        Client::connect(addr).map(|mut c| c.ping()).map_or(true, |r| r.is_err()),
        "server must not answer after shutdown"
    );
}

#[test]
fn shutdown_drains_inflight_connections() {
    let (g, labelling) = hcl_core::testing::ba_fixture(200, 4, 9, 6);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.local_addr();

    // A client with an open connection keeps querying while another thread
    // triggers shutdown; the in-flight request completes, later ones fail.
    let mut client = Client::connect(addr).unwrap();
    assert!(client.query(0, 199).is_ok());
    handle.shutdown(); // blocks until the connection drains
    assert!(client.query(0, 199).is_err(), "connection closed after drain");
}

/// Regression: a malformed pair in the middle of a BATCH body must not
/// desync the request/response stream — the server consumes the whole
/// declared body and answers with exactly one ERR.
#[test]
fn malformed_batch_body_does_not_desync_the_connection() {
    use std::io::{BufRead, BufReader, Write};

    let (g, labelling) = hcl_core::testing::ba_fixture(100, 3, 4, 4);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut line = String::new();
    let mut roundtrip = |writer: &mut std::net::TcpStream,
                         reader: &mut BufReader<std::net::TcpStream>,
                         request: &str| {
        writer.write_all(request.as_bytes()).unwrap();
        writer.flush().unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    };

    // Garbage in the middle of the declared body: one ERR, body consumed.
    let response = roundtrip(&mut writer, &mut reader, "BATCH 3\n1 2\nGARBAGE\n3 4\n");
    assert!(response.starts_with("ERR "), "got {response:?}");
    // The very next request must get its own, correct answer.
    assert_eq!(roundtrip(&mut writer, &mut reader, "PING\n"), "PONG");
    assert!(roundtrip(&mut writer, &mut reader, "QUERY 0 1\n").starts_with("DIST "));

    handle.shutdown();
}

/// Regression: one over-long garbage line must close the connection
/// instead of buffering without bound, and must not affect other clients.
/// The incremental decoder additionally sends one clean `ERR` line before
/// the close (the old transport closed silently).
#[test]
fn oversized_request_line_closes_only_that_connection() {
    use std::io::{Read, Write};

    let (g, labelling) = hcl_core::testing::ba_fixture(100, 3, 4, 4);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut bad = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let garbage = vec![b'x'; 64 * 1024]; // no newline anywhere
    bad.write_all(&garbage).unwrap();
    bad.flush().unwrap();
    // The server answers at most one ERR line, then closes; it must never
    // echo data or hang.
    bad.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    let mut received = Vec::new();
    // A read error (reset) also counts as closed.
    if bad.read_to_end(&mut received).is_ok() {
        let text = String::from_utf8_lossy(&received);
        assert!(
            text.is_empty() || (text.starts_with("ERR ") && text.ends_with('\n')),
            "expected nothing or one ERR line before close, got {text:?}"
        );
        assert!(received.len() < 256, "unexpected volume before close");
    }

    // A well-behaved client on another connection is unaffected.
    let mut good = Client::connect(handle.local_addr()).unwrap();
    assert!(good.query(0, 99).is_ok());
    handle.shutdown();
}

/// Regression: shutdown must complete even when bound to the wildcard
/// address (the accept-loop poke substitutes loopback).
#[test]
fn shutdown_completes_on_wildcard_bind() {
    let (g, labelling) = hcl_core::testing::ba_fixture(50, 3, 4, 3);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let handle = Server::bind(service, "0.0.0.0:0", ServerConfig::default()).unwrap();
    assert!(handle.local_addr().ip().is_unspecified());
    let mut client = Client::connect(("127.0.0.1", handle.local_addr().port())).unwrap();
    assert!(client.query(0, 49).is_ok());
    handle.shutdown(); // must not hang
    assert!(handle.is_shutting_down());
}

/// Regression: a BATCH header the server cannot honour (k beyond the
/// protocol maximum) gets one ERR and a connection close — the undelimited
/// body in flight can never desync later requests or deadlock the handler.
#[test]
fn oversized_batch_header_errors_and_closes() {
    use std::io::{BufRead, BufReader, Read, Write};

    let (g, labelling) = hcl_core::testing::ba_fixture(100, 3, 4, 4);
    let service = Arc::new(QueryService::from_parts(g, labelling, 0));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer
        .write_all(format!("BATCH {}\n0 1\n0 2\n", hcl_server::protocol::MAX_BATCH + 1).as_bytes())
        .unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("ERR "), "got {line:?}");
    // The server closes rather than trying to resync past an undelimited body.
    let mut rest = Vec::new();
    reader.get_mut().set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    // A read error (connection reset) also counts as closed.
    if reader.read_to_end(&mut rest).is_ok() {
        assert!(rest.is_empty(), "unexpected trailing data: {rest:?}");
    }

    // Fresh connections are unaffected.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert!(client.query(0, 99).is_ok());
    handle.shutdown();
}
