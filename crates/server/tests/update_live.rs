//! Incremental-update integration tests: a live server applies `UPDATE`
//! edge edits while client threads hammer it over established
//! connections.
//!
//! The correctness contract under test:
//!
//! * no connection is dropped by an update — every client keeps its one
//!   TCP connection for the whole run;
//! * every answered distance matches one of the two generations' BFS
//!   ground truths, and a batch racing the swap is answered entirely on
//!   ONE generation — never a mixture (torn read);
//! * any query issued after the `UPDATED` acknowledgement matches the
//!   *new* graph exactly — the [`PairFilter`]-certified cache retag must
//!   never carry a changed pair across the epoch boundary, even though
//!   the clients deliberately keep a hot set of repeated pairs resident
//!   in the cache across the swap;
//! * pipelined updates on one connection are queued and applied in
//!   order (never refused like concurrent `RELOAD`s), each advancing
//!   the epoch by one;
//! * packed (mmap-served) generations refuse updates and stay
//!   untouched.

use hcl_core::testing::{ba_fixture, truth_map};
use hcl_server::{Client, QueryService, Server, ServerConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 600;
const CLIENT_THREADS: usize = 4;
const BATCH_SIZE: usize = 6;
/// Rounds every thread runs *after* the update is acknowledged.
const POST_UPDATE_ROUNDS: usize = 30;

/// The deterministic query stream — same shape as the reload tests: a
/// hot set of repeated pairs that stays cache-resident across the swap,
/// exactly the entries that would leak stale answers if the retag
/// certified too much.
fn pair_for(thread: usize, i: usize) -> (u32, u32) {
    let i = i % 40;
    let s = ((i as u64 * 131 + thread as u64 * 7) % N as u64) as u32;
    let t = ((i as u64 * 37 + 11) % N as u64) as u32;
    (s, t)
}

fn all_pairs() -> Vec<(u32, u32)> {
    (0..CLIENT_THREADS).flat_map(|th| (0..40).map(move |i| pair_for(th, i))).collect()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hcl-update-{}-{name}", std::process::id()))
}

/// The farthest non-adjacent streamed pair: inserting this edge drops
/// its own distance to 1, so the stream is guaranteed to observe the
/// edit.
fn pick_absent_edge(
    g: &hcl_graph::CsrGraph,
    truth: &HashMap<(u32, u32), Option<u32>>,
) -> (u32, u32) {
    all_pairs()
        .into_iter()
        .filter(|&(s, t)| s != t && !g.has_edge(s, t))
        .max_by_key(|p| truth[p].unwrap_or(u32::MAX))
        .expect("stream contains a non-adjacent pair")
}

#[test]
fn update_under_live_traffic_never_serves_stale_or_torn_answers() {
    let (graph_a, labelling_a) = ba_fixture(N, 4, 1001, 12);
    let truth_a = truth_map(&graph_a, all_pairs());
    let (u, v) = pick_absent_edge(&graph_a, &truth_a);
    let graph_b = graph_a.with_edge(u, v).expect("edge absent");
    let truth_b = truth_map(&graph_b, all_pairs());
    assert!(
        all_pairs().iter().any(|p| truth_a[p] != truth_b[p]),
        "the edit must change at least one streamed answer, or the test proves nothing"
    );

    let service = Arc::new(QueryService::from_parts(graph_a, labelling_a, 1 << 12));
    let config = ServerConfig { batch_threads: 2, ..Default::default() };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let updated = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let check = |got: Option<u32>,
                 pair: (u32, u32),
                 sent_after_update: bool,
                 truth_a: &HashMap<(u32, u32), Option<u32>>,
                 truth_b: &HashMap<(u32, u32), Option<u32>>| {
        let (a, b) = (truth_a[&pair], truth_b[&pair]);
        if sent_after_update {
            assert_eq!(got, b, "post-update d{pair:?} must come from the new graph (old: {a:?})");
        } else {
            assert!(got == a || got == b, "d{pair:?} = {got:?} matches neither generation");
        }
    };

    std::thread::scope(|scope| {
        for thread in 0..CLIENT_THREADS {
            let (updated, served) = (&updated, &served);
            let (truth_a, truth_b) = (&truth_a, &truth_b);
            scope.spawn(move || {
                // ONE connection for the whole test: queries succeeding
                // after the swap prove the update dropped nothing.
                let mut client = Client::connect(addr).expect("connect");
                let mut i = 0usize;
                let mut post_rounds = 0usize;
                while post_rounds < POST_UPDATE_ROUNDS {
                    // Sampled before sending: if the ack was already
                    // seen, the server swapped before these requests
                    // started.
                    let after = updated.load(Ordering::SeqCst);
                    if after {
                        post_rounds += 1;
                    }
                    let q = pair_for(thread, i);
                    let got = client.query(q.0, q.1).expect("query");
                    check(got, q, after, truth_a, truth_b);

                    let pairs: Vec<(u32, u32)> =
                        (1..=BATCH_SIZE).map(|b| pair_for(thread, i + b)).collect();
                    let got = client.batch(&pairs).expect("batch");
                    if after {
                        for (&p, &d) in pairs.iter().zip(&got) {
                            check(d, p, true, truth_a, truth_b);
                        }
                    } else {
                        // A batch racing the swap is answered on either
                        // generation — but on exactly ONE of them.
                        let matches = |truth: &HashMap<(u32, u32), Option<u32>>| {
                            pairs.iter().zip(&got).all(|(&p, &d)| d == truth[&p])
                        };
                        assert!(
                            matches(truth_a) || matches(truth_b),
                            "torn batch (mixed generations): {pairs:?} -> {got:?}"
                        );
                    }
                    served.fetch_add(1 + BATCH_SIZE as u64, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Let the clients warm the cache on epoch 0, then apply the edit.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut admin = Client::connect(addr).expect("admin connect");
        assert_eq!(admin.epoch().unwrap(), 0);
        let (epoch, affected) = admin.update(true, u, v).expect("update");
        assert_eq!(epoch, 1);
        assert!(affected > 0, "inserting a distance-3+ edge must relabel someone");
        updated.store(true, Ordering::SeqCst);
        assert_eq!(admin.epoch().unwrap(), 1);
    });

    let total = served.load(Ordering::Relaxed);
    assert!(
        total >= (CLIENT_THREADS * POST_UPDATE_ROUNDS * (1 + BATCH_SIZE)) as u64,
        "only {total} distances served"
    );

    // Server-side accounting: one update applied, and the retag DID keep
    // part of the hot set resident across the swap (hits keep landing
    // after the epoch bump), making the stale-crossing assertions above
    // meaningful.
    let mut admin = Client::connect(addr).unwrap();
    let stats = admin.stats().unwrap();
    let get = |key: &str| -> u64 {
        stats
            .split_ascii_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{key} missing from {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(get("epoch"), 1);
    assert_eq!(get("updates_applied"), 1);
    assert!(get("update_affected_vertices") > 0);
    assert!(get("cache_hits") > 0, "the repeated stream must produce cache hits");

    handle.shutdown();
}

/// Pipelined `UPDATE`s on one connection are queued behind the busy
/// gate and applied in arrival order — never refused the way pipelined
/// `RELOAD` floods are — so every line gets an `UPDATED` ack and the
/// epoch advances exactly once per edit.
#[test]
fn pipelined_updates_apply_in_order_and_are_never_refused() {
    use std::io::{BufRead, BufReader, Write};

    let (graph, labelling) = ba_fixture(N, 4, 5, 12);
    let truth = truth_map(&graph, all_pairs());
    let (u, v) = pick_absent_edge(&graph, &truth);

    let service = Arc::new(QueryService::from_parts(Arc::clone(&graph), labelling, 64));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    // ADD/DEL the same edge back and forth: every line is valid when
    // applied in order, and any reordering or concurrent application
    // would reject a duplicate/missing edge.
    const ROUNDS: usize = 4;
    let mut request = String::new();
    for _ in 0..ROUNDS {
        request.push_str(&format!("UPDATE ADD {u} {v}\nUPDATE DEL {u} {v}\n"));
    }
    request.push_str("PING\n");
    writer.write_all(request.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    for i in 0..2 * ROUNDS {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        let epoch: u64 = line
            .strip_prefix("UPDATED ")
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("update {i}: {line:?}"))
            .parse()
            .unwrap();
        assert_eq!(epoch, i as u64 + 1, "epochs advance once per queued edit");
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG", "connection survives the pipelined updates");

    // Net effect of the ADD/DEL pairs is identity: answers match the
    // original graph again.
    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(client.epoch().unwrap(), 2 * ROUNDS as u64);
    for &(s, t) in all_pairs().iter().take(20) {
        assert_eq!(client.query(s, t).unwrap(), truth[&(s, t)], "d({s}, {t})");
    }

    handle.shutdown();
}

/// A packed (mmap-served) generation cannot be patched in place: the
/// update is refused with a pointed error and the serving generation is
/// untouched; reloading a plain index makes updates work again.
#[test]
fn update_is_refused_on_a_packed_generation() {
    let (graph, labelling) = ba_fixture(N, 4, 9, 12);
    let truth = truth_map(&graph, all_pairs());
    let (u, v) = pick_absent_edge(&graph, &truth);

    let packed_path = temp_path("packed.hclx");
    let sparse = hcl_core::SparseView::build(&graph, labelling.highway());
    hcl_store::save_packed(&labelling, &sparse, &packed_path).unwrap();

    let service = Arc::new(QueryService::from_parts(Arc::clone(&graph), labelling, 64));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(client.reload(packed_path.to_str().unwrap(), None).unwrap(), 1);
    let err = client.update(true, u, v).unwrap_err();
    assert!(err.to_string().contains("packed"), "{err}");
    assert_eq!(client.epoch().unwrap(), 1, "refused update must not advance the epoch");
    for &(s, t) in all_pairs().iter().take(10) {
        assert_eq!(client.query(s, t).unwrap(), truth[&(s, t)], "d({s}, {t})");
    }

    handle.shutdown();
    let _ = std::fs::remove_file(&packed_path);
}

/// Out-of-range endpoints and self-loops are rejected without touching
/// the index.
#[test]
fn invalid_updates_are_rejected_cleanly() {
    let (graph, labelling) = ba_fixture(200, 4, 3, 8);
    let present = graph.neighbors(0)[0];
    let absent = (1..200).find(|&w| !graph.has_edge(0, w)).unwrap();
    let service = Arc::new(QueryService::from_parts(graph, labelling, 0));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert!(client.update(true, 0, 10_000).is_err(), "out of range");
    assert!(client.update(true, 7, 7).is_err(), "self loop");
    assert!(client.update(true, 0, present).is_err(), "edge already present");
    assert!(client.update(false, 0, absent).is_err(), "deleting an absent edge");
    assert_eq!(client.epoch().unwrap(), 0);
    assert_eq!(service.metrics().snapshot().updates_applied, 0);

    handle.shutdown();
}
