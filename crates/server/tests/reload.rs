//! Hot-reload integration tests: a live server swaps its index between two
//! fixture graphs while client threads hammer it over established
//! connections.
//!
//! The correctness contract under test:
//!
//! * no connection is dropped by a reload — every client keeps its one
//!   TCP connection for the whole run;
//! * every answered distance matches one of the two graphs' BFS ground
//!   truths (never a mixture within one batch);
//! * any query issued after the `RELOADED` acknowledgement matches the
//!   *new* graph exactly — i.e. no stale cache hit ever crosses the epoch
//!   boundary, even though the clients deliberately keep a hot set of
//!   repeated pairs resident in the cache across the swap.

use hcl_core::testing::{ba_fixture, truth_map};
use hcl_core::HighwayCoverLabelling;
use hcl_server::{Client, QueryService, Server, ServerConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const N: usize = 600;
const CLIENT_THREADS: usize = 4;
const BATCH_SIZE: usize = 6;
/// Rounds every thread runs *after* the reload is acknowledged.
const POST_RELOAD_ROUNDS: usize = 30;

/// The deterministic query stream. Every thread cycles through the same
/// 40 pairs (plus a per-thread offset pair), so the cache holds a hot set
/// of repeated pairs across the swap — exactly the entries that would leak
/// stale answers if epoch invalidation were broken.
fn pair_for(thread: usize, i: usize) -> (u32, u32) {
    let i = i % 40;
    let s = ((i as u64 * 131 + thread as u64 * 7) % N as u64) as u32;
    let t = ((i as u64 * 37 + 11) % N as u64) as u32;
    (s, t)
}

fn all_pairs() -> Vec<(u32, u32)> {
    (0..CLIENT_THREADS).flat_map(|th| (0..40).map(move |i| pair_for(th, i))).collect()
}

fn build(seed: u64) -> (Arc<hcl_graph::CsrGraph>, Arc<HighwayCoverLabelling>) {
    ba_fixture(N, 4, seed, 12)
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hcl-reload-{}-{name}", std::process::id()))
}

#[test]
fn reload_under_live_traffic_never_serves_stale_or_torn_answers() {
    let (graph_a, labelling_a) = build(1001);
    let (graph_b, labelling_b) = build(2002);

    // Ground truth for the full stream on both generations.
    let truth_a = truth_map(&graph_a, all_pairs());
    let truth_b = truth_map(&graph_b, all_pairs());
    assert!(
        all_pairs().iter().any(|p| truth_a[p] != truth_b[p]),
        "fixture graphs must disagree on the query stream, or the test proves nothing"
    );

    // Generation B goes to disk; the server starts on generation A.
    let graph_path = temp_path("b.hclg");
    let index_path = temp_path("b.hcl");
    hcl_graph::io::save_binary(&graph_b, &graph_path).unwrap();
    hcl_core::io::save_labelling(&labelling_b, &index_path).unwrap();

    let service = Arc::new(QueryService::from_parts(graph_a, labelling_a, 1 << 12));
    let config = ServerConfig { batch_threads: 2, ..Default::default() };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();
    let addr = handle.local_addr();

    let reloaded = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let check = |got: Option<u32>,
                 pair: (u32, u32),
                 sent_after_reload: bool,
                 truth_a: &HashMap<(u32, u32), Option<u32>>,
                 truth_b: &HashMap<(u32, u32), Option<u32>>| {
        let (a, b) = (truth_a[&pair], truth_b[&pair]);
        if sent_after_reload {
            assert_eq!(got, b, "post-reload d{pair:?} must come from the new graph (old: {a:?})");
        } else {
            assert!(got == a || got == b, "d{pair:?} = {got:?} matches neither epoch");
        }
    };

    std::thread::scope(|scope| {
        for thread in 0..CLIENT_THREADS {
            let (reloaded, served) = (&reloaded, &served);
            let (truth_a, truth_b) = (&truth_a, &truth_b);
            scope.spawn(move || {
                // ONE connection for the whole test: queries succeeding
                // after the swap prove the reload dropped nothing.
                let mut client = Client::connect(addr).expect("connect");
                let mut i = 0usize;
                let mut post_rounds = 0usize;
                while post_rounds < POST_RELOAD_ROUNDS {
                    // Sampled before sending: if the ack was already seen,
                    // the server swapped before these requests started.
                    let after = reloaded.load(Ordering::SeqCst);
                    if after {
                        post_rounds += 1;
                    }
                    let q = pair_for(thread, i);
                    let got = client.query(q.0, q.1).expect("query");
                    check(got, q, after, truth_a, truth_b);

                    let pairs: Vec<(u32, u32)> =
                        (1..=BATCH_SIZE).map(|b| pair_for(thread, i + b)).collect();
                    let got = client.batch(&pairs).expect("batch");
                    if after {
                        for (&p, &d) in pairs.iter().zip(&got) {
                            check(d, p, true, truth_a, truth_b);
                        }
                    } else {
                        // A batch racing the swap may be answered on either
                        // generation — but on exactly ONE of them: the
                        // whole response must be consistent with a single
                        // epoch's truth, never a mixture.
                        let matches = |truth: &HashMap<(u32, u32), Option<u32>>| {
                            pairs.iter().zip(&got).all(|(&p, &d)| d == truth[&p])
                        };
                        assert!(
                            matches(truth_a) || matches(truth_b),
                            "torn batch (mixed epochs): {pairs:?} -> {got:?}"
                        );
                    }
                    served.fetch_add(1 + BATCH_SIZE as u64, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Let the clients warm the cache on epoch 0, then swap.
        std::thread::sleep(std::time::Duration::from_millis(100));
        let mut admin = Client::connect(addr).expect("admin connect");
        assert_eq!(admin.epoch().unwrap(), 0);
        let epoch = admin
            .reload(graph_path.to_str().unwrap(), Some(index_path.to_str().unwrap()))
            .expect("reload");
        assert_eq!(epoch, 1);
        reloaded.store(true, Ordering::SeqCst);
        assert_eq!(admin.epoch().unwrap(), 1);
    });

    // Traffic volume sanity: warm-up plus the mandated post-reload rounds.
    let total = served.load(Ordering::Relaxed);
    assert!(
        total >= (CLIENT_THREADS * POST_RELOAD_ROUNDS * (1 + BATCH_SIZE)) as u64,
        "only {total} distances served"
    );

    // Server-side accounting: one reload, epoch 1, and the hot set DID
    // stay resident across the swap (hits before and after), making the
    // stale-crossing assertions above meaningful.
    let mut admin = Client::connect(addr).unwrap();
    let stats = admin.stats().unwrap();
    let get = |key: &str| -> u64 {
        stats
            .split_ascii_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{key} missing from {stats}"))
            .parse()
            .unwrap()
    };
    assert_eq!(get("epoch"), 1);
    assert_eq!(get("reloads"), 1);
    assert!(get("cache_hits") > 0, "the repeated stream must produce cache hits");

    handle.shutdown();
    let _ = std::fs::remove_file(&graph_path);
    let _ = std::fs::remove_file(&index_path);
}

/// The sparsified view must swap atomically with the labelling: under a
/// storm of concurrent queries and reloads between *different-sized*
/// graphs, every pinned snapshot's view matches its own generation (same
/// vertex count, every landmark of that generation isolated in it), and
/// every answer — all computed by searching the view — matches one of the
/// two graphs' ground truths.
#[test]
fn sparse_view_swaps_atomically_with_the_labelling_under_live_traffic() {
    let (g_a, l_a) = ba_fixture(N, 4, 1001, 12);
    let (g_b, l_b) = ba_fixture(N / 2, 4, 1002, 8);
    let truth_a = truth_map(&g_a, (0..N as u32 / 2).map(|i| (i, (i * 7 + 1) % (N as u32 / 2))));
    let truth_b = truth_map(&g_b, (0..N as u32 / 2).map(|i| (i, (i * 7 + 1) % (N as u32 / 2))));

    let service = Arc::new(QueryService::from_parts(Arc::clone(&g_a), Arc::clone(&l_a), 1 << 10));
    let stop = AtomicBool::new(false);
    let checked = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for th in 0..CLIENT_THREADS {
            let service = Arc::clone(&service);
            let (stop, checked) = (&stop, &checked);
            let (truth_a, truth_b) = (&truth_a, &truth_b);
            scope.spawn(move || {
                let mut i = th as u32;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    let oracle = snap.index().as_memory().expect("memory-backed test service");
                    let view = oracle.sparse_view();
                    // The view belongs to exactly this generation…
                    assert_eq!(
                        view.num_vertices(),
                        snap.index().num_vertices(),
                        "torn view/graph pair"
                    );
                    for &r in oracle.labelling().highway().landmarks() {
                        assert_eq!(
                            view.graph().degree(view.view_of(r)),
                            0,
                            "landmark {r} not isolated"
                        );
                    }
                    // …and answers computed through it are exact for
                    // whichever graph this generation serves.
                    let half = N as u32 / 2;
                    let (s, t) = (i % half, ((i % half) * 7 + 1) % half);
                    let got = oracle.distance(s, t);
                    let want = if snap.index().num_vertices() == N { truth_a } else { truth_b };
                    assert_eq!(got, want[&(s, t)], "epoch {} {s}->{t}", snap.epoch());
                    checked.fetch_add(1, Ordering::Relaxed);
                    i = i.wrapping_add(1);
                }
            });
        }
        for round in 0..12 {
            let (g, l) = if round % 2 == 0 {
                (Arc::clone(&g_b), Arc::clone(&l_b))
            } else {
                (Arc::clone(&g_a), Arc::clone(&l_a))
            };
            service.reload(hcl_core::SharedOracle::new(g, l));
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert_eq!(service.epoch(), 12);
    assert!(checked.load(Ordering::Relaxed) > 0, "query threads must have run");
}

#[test]
fn reload_from_graph_only_rebuilds_the_labelling_in_process() {
    let (graph_a, labelling_a) = build(7);
    let (graph_b, _) = build(8);
    let truth_b = truth_map(&graph_b, all_pairs());

    let graph_path = temp_path("rebuild.hclg");
    hcl_graph::io::save_binary(&graph_b, &graph_path).unwrap();

    let service = Arc::new(QueryService::from_parts(graph_a, labelling_a, 64));
    let config = ServerConfig { reload_landmarks: 12, ..Default::default() };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    // No index file: the server builds the labelling itself.
    assert_eq!(client.reload(graph_path.to_str().unwrap(), None).unwrap(), 1);
    for &(s, t) in all_pairs().iter().take(40) {
        assert_eq!(client.query(s, t).unwrap(), truth_b[&(s, t)], "d({s}, {t})");
    }

    handle.shutdown();
    let _ = std::fs::remove_file(&graph_path);
}

/// Reloads are serialised: a pipelined flood of RELOAD lines must not fan
/// out into concurrent full-index builds. The first wins; each of the
/// rest is either refused with `ERR reload already in progress` (the
/// previous one was still running) or succeeds (it had finished) — and
/// the connection keeps answering afterwards either way.
#[test]
fn pipelined_reloads_are_serialised_not_fanned_out() {
    use std::io::{BufRead, BufReader, Write};

    let (graph_a, labelling_a) = build(5);
    let (graph_b, _) = build(6);
    let graph_path = temp_path("serialise.hclg");
    hcl_graph::io::save_binary(&graph_b, &graph_path).unwrap();

    let service = Arc::new(QueryService::from_parts(graph_a, labelling_a, 0));
    let config = ServerConfig { reload_landmarks: 8, ..Default::default() };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let stream = std::net::TcpStream::connect(handle.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    const RELOADS: usize = 8;
    let mut request = String::new();
    for _ in 0..RELOADS {
        request.push_str(&format!("RELOAD {}\n", graph_path.to_str().unwrap()));
    }
    request.push_str("PING\n");
    writer.write_all(request.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut line = String::new();
    let mut succeeded = 0u64;
    for i in 0..RELOADS {
        line.clear();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.starts_with("RELOADED ") {
            succeeded += 1;
        } else {
            assert!(line.contains("already in progress"), "reload {i}: {line:?}");
        }
    }
    assert!(succeeded >= 1, "the first reload must run");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "PONG", "connection survives the refused reloads");

    // Server-side accounting agrees: epoch advanced once per success.
    let mut admin = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(admin.epoch().unwrap(), succeeded);

    handle.shutdown();
    let _ = std::fs::remove_file(&graph_path);
}

/// `RELOAD index.hclx` swaps the serving backend *kind*: a memory-backed
/// generation is replaced by a packed generation served straight off the
/// mapping, answers match BFS ground truth, STATS reports the store, and
/// a later plain reload swaps back. Both directions ride the same epoch
/// machinery.
#[test]
fn reload_to_packed_index_swaps_by_remapping() {
    let (graph_a, labelling_a) = build(9);
    let (graph_b, labelling_b) = build(10);
    let truth_b = truth_map(&graph_b, all_pairs());

    let packed_path = temp_path("packed.hclx");
    let sparse_b = hcl_core::SparseView::build(&graph_b, labelling_b.highway());
    hcl_store::save_packed(&labelling_b, &sparse_b, &packed_path).unwrap();
    let graph_a_path = temp_path("packed-back.hclg");
    hcl_graph::io::save_binary(&graph_a, &graph_a_path).unwrap();

    let service = Arc::new(QueryService::from_parts(graph_a, labelling_a, 64));
    let config = ServerConfig { reload_landmarks: 12, ..Default::default() };
    let handle = Server::bind(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    assert_eq!(client.reload(packed_path.to_str().unwrap(), None).unwrap(), 1);
    assert!(service.snapshot().index().as_packed().is_some(), "generation must be packed");
    for &(s, t) in all_pairs().iter().take(40) {
        assert_eq!(client.query(s, t).unwrap(), truth_b[&(s, t)], "d({s}, {t})");
    }
    let stats = client.stats().unwrap();
    let field = |key: &str| -> u64 {
        stats
            .split_ascii_whitespace()
            .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing {key} in {stats:?}"))
            .parse()
            .unwrap()
    };
    let expected_store = std::fs::metadata(&packed_path).unwrap().len();
    assert_eq!(field("store_bytes"), expected_store);
    assert!(field("plain_index_bytes") > 0);
    assert!(field("load_us") > 0, "packed reload must record its load time");

    // A packed index is self-contained; a second path is a usage error
    // that must not disturb the serving generation.
    let err = client
        .reload(packed_path.to_str().unwrap(), Some(graph_a_path.to_str().unwrap()))
        .unwrap_err();
    assert!(err.to_string().contains("self-contained"), "{err}");
    assert_eq!(client.epoch().unwrap(), 1);

    // And back to a memory-backed generation from a plain graph file.
    assert_eq!(client.reload(graph_a_path.to_str().unwrap(), None).unwrap(), 2);
    assert!(service.snapshot().index().as_memory().is_some(), "generation must be in-memory");

    handle.shutdown();
    let _ = std::fs::remove_file(&packed_path);
    let _ = std::fs::remove_file(&graph_a_path);
}

#[test]
fn failed_reload_keeps_the_connection_and_the_old_index() {
    let (graph_a, labelling_a) = build(3);
    let truth_a = truth_map(&graph_a, all_pairs());

    let service = Arc::new(QueryService::from_parts(graph_a, labelling_a, 64));
    let handle =
        Server::bind(Arc::clone(&service), "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut client = Client::connect(handle.local_addr()).unwrap();
    let err = client.reload("/definitely/not/a/file.hclg", None).unwrap_err();
    assert!(err.to_string().contains("reload failed"), "{err}");
    // Same connection still answers, on the unchanged epoch-0 index.
    assert_eq!(client.epoch().unwrap(), 0);
    let (s, t) = pair_for(0, 0);
    assert_eq!(client.query(s, t).unwrap(), truth_a[&(s, t)]);

    handle.shutdown();
}
